"""Baseline checkers the paper compares against (KLayout modes, X-Check)."""

from .klayout_like import KLayoutLikeChecker
from .xcheck import UnsupportedRuleError, XCheckChecker

__all__ = ["KLayoutLikeChecker", "UnsupportedRuleError", "XCheckChecker"]
