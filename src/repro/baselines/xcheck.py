"""X-Check reimplementation (paper §VI; X-Check = DAC'22 GPU-accelerated DRC).

The paper reimplements X-Check's vertical sweeping algorithm (X-Check §4.1)
as its GPU baseline; we do the same on the shared simulated device:

1. flatten the layout (no hierarchy — instance polygons are materialized
   one by one on the host, which is the honest cost of a non-hierarchical
   GPU checker and exactly where OpenDRC's hierarchical buffer construction
   wins);
2. pack every edge into one global array and copy it to the device;
3. run the two-phase parallel sweep: a scan computes each edge's check
   range, then each edge checks all edges in its range.

X-Check supports width, spacing, and enclosure; it *cannot* perform area
checks (its Table I column is empty in the paper), which
:meth:`XCheckChecker.run` reproduces by raising :class:`UnsupportedRuleError`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..checks.base import Violation, ViolationKind
from ..core.results import CheckReport, CheckResult
from ..core.rules import Rule, RuleKind
from ..errors import ReproError
from ..geometry import Polygon, Rect
from ..gpu.device import Device
from ..gpu.kernels import (
    kernel_enclosure_margins,
    kernel_pairs_sweep,
    pack_edges,
    reduce_enclosure_best,
)
from ..layout.flatten import flatten_layer
from ..layout.library import Layout
from ..spatial.sweepline import iter_bipartite_overlaps


class UnsupportedRuleError(ReproError):
    """X-Check cannot execute this rule kind (area checks, predicates)."""


class XCheckChecker:
    """Flat GPU checker following X-Check's vertical sweeping design."""

    def __init__(self, layout: Layout, *, device: Optional[Device] = None) -> None:
        self.layout = layout
        self.device = device if device is not None else Device()
        self.stream = self.device.create_stream()
        self._flat_cache: Dict[int, List[Polygon]] = {}

    def supports(self, rule: Rule) -> bool:
        return rule.kind in (RuleKind.WIDTH, RuleKind.SPACING, RuleKind.ENCLOSURE)

    def run(self, rule: Rule) -> Tuple[List[Violation], float]:
        """Execute one rule; returns (violations, seconds)."""
        if not self.supports(rule):
            raise UnsupportedRuleError(
                f"X-Check cannot execute {rule.kind.value} rules (paper Table I)"
            )
        start = time.perf_counter()
        if rule.kind is RuleKind.ENCLOSURE:
            violations = self._enclosure(rule.layer, rule.other_layer, rule.value)
        else:
            violations = self._pairs(
                rule.layer, rule.value, want_width=rule.kind is RuleKind.WIDTH
            )
        return violations, time.perf_counter() - start

    def check(self, rules: Sequence[Rule]) -> CheckReport:
        results = []
        for rule in rules:
            violations, seconds = self.run(rule)
            results.append(CheckResult(rule=rule, violations=violations, seconds=seconds))
        return CheckReport(self.layout.name, "xcheck", results)

    # -- internals ------------------------------------------------------------

    def _flat(self, layer: int) -> List[Polygon]:
        if layer not in self._flat_cache:
            host_start = time.perf_counter()
            self._flat_cache[layer] = flatten_layer(self.layout, layer)
            self.device.record_host(
                f"flatten-L{layer}", time.perf_counter() - host_start
            )
        return self._flat_cache[layer]

    def clear_cache(self) -> None:
        """Drop flattening caches (benchmarks charge flattening per run)."""
        self._flat_cache.clear()

    def _pairs(self, layer: int, value: int, *, want_width: bool) -> List[Violation]:
        polygons = self._flat(layer)
        host_start = time.perf_counter()
        buffers = pack_edges(polygons)
        self.device.record_host("pack-edges", time.perf_counter() - host_start)
        out: List[Violation] = []
        kind = ViolationKind.WIDTH if want_width else ViolationKind.SPACING
        for buf in (buffers["v"], buffers["h"]):
            if len(buf) < 2:
                continue
            device_buf = type(buf)(
                buf.vertical,
                self.stream.memcpy_h2d(buf.fixed, name="edges.fixed"),
                self.stream.memcpy_h2d(buf.lo, name="edges.lo"),
                self.stream.memcpy_h2d(buf.hi, name="edges.hi"),
                self.stream.memcpy_h2d(buf.interior, name="edges.interior"),
                self.stream.memcpy_h2d(buf.poly, name="edges.poly"),
            )
            hits = self.stream.launch(
                "xcheck-sweep",
                kernel_pairs_sweep,
                device_buf,
                value,
                want_width=want_width,
                items=len(buf),
            )
            for k in range(len(hits)):
                out.append(
                    Violation(
                        kind=kind,
                        layer=layer,
                        region=Rect(
                            int(hits.xlo[k]), int(hits.ylo[k]),
                            int(hits.xhi[k]), int(hits.yhi[k]),
                        ),
                        measured=int(hits.measured[k]),
                        required=value,
                    )
                )
        return out

    def _enclosure(self, via_layer: int, metal_layer: int, value: int) -> List[Violation]:
        vias = self._flat(via_layer)
        metals = self._flat(metal_layer)
        if not vias:
            return []
        all_rect = all(p.is_rectangle for p in vias) and all(
            p.is_rectangle for p in metals
        )
        if not all_rect:
            from ..checks.enclosure import check_enclosure

            return check_enclosure(vias, metals, via_layer, metal_layer, value)
        windows = [v.mbr.inflated(value) for v in vias]
        metal_rects = [m.mbr for m in metals]
        pairs = list(iter_bipartite_overlaps(windows, metal_rects))
        via_arr = np.asarray([tuple(v.mbr) for v in vias], dtype=np.int64)
        if metal_rects:
            metal_arr = np.asarray([tuple(m) for m in metal_rects], dtype=np.int64)
        else:
            metal_arr = np.zeros((0, 4), dtype=np.int64)
        pair_via = np.asarray([i for i, _ in pairs], dtype=np.int64)
        pair_metal = np.asarray([j for _, j in pairs], dtype=np.int64)
        margins = self.stream.launch(
            "xcheck-enclosure",
            kernel_enclosure_margins,
            self.stream.memcpy_h2d(via_arr, name="via.rects"),
            self.stream.memcpy_h2d(metal_arr, name="metal.rects") if len(metal_arr) else metal_arr,
            pair_via,
            pair_metal,
            items=len(pair_via),
        )
        best = reduce_enclosure_best(len(vias), pair_via, margins)
        out: List[Violation] = []
        for index, margin in enumerate(best):
            if int(margin) >= value:
                continue
            out.append(
                Violation(
                    kind=ViolationKind.ENCLOSURE,
                    layer=via_layer,
                    other_layer=metal_layer,
                    region=vias[index].mbr.inflated(value),
                    measured=max(int(margin), 0),
                    required=value,
                )
            )
        return out
