"""KLayout-like baseline checkers: flat, deep, and tiling modes (paper §VI).

KLayout exposes three exclusive operation modes, which the paper benchmarks
in separate columns. These stand-ins model the *algorithmic* content of each
mode (see DESIGN.md §1 for the substitution argument):

* **flat** — flatten the whole layout, then run the checks over all flat
  polygons: full sweepline candidate search for spacing, a per-polygon scan
  for intra rules. No hierarchy reuse, no partition.
* **deep** — hierarchical: intra checks are memoised per cell definition
  (KLayout's deep mode is good at this, matching its fast Table-I column),
  but the inter-polygon candidate search at each hierarchy level is a
  quadratic MBR pair loop with full-overlap-window flattening — the
  heavyweight hierarchical analysis that makes deep mode *slower* than flat
  on hierarchy-poor dense layers (the paper's jpeg/M3 row: 3588 s deep vs
  317 s flat).
* **tile** — flatten, split into a fixed tile grid, check tiles
  independently; multi-CPU support is modelled by critical-path timing over
  a worker pool (Python threads cannot show real multicore speedups), with
  the honest serial time also reported in the result stats.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..checks.area import check_area
from ..checks.base import Violation
from ..checks.enclosure import check_enclosure
from ..checks.ensure import check_ensures
from ..checks.rectilinear import check_rectilinear
from ..checks.spacing import (
    check_spacing,
    spacing_notch_violations,
    spacing_pair_violations,
)
from ..checks.width import check_width
from ..core.results import CheckReport, CheckResult
from ..core.rules import Rule, RuleKind
from ..geometry import Polygon
from ..geometry.booleans import union_polygons
from ..hierarchy.pruning import LevelItem, SubtreeWindow, level_items
from ..hierarchy.tree import HierarchyTree
from ..layout.flatten import flatten_layer
from ..layout.library import Layout
from ..partition.rows import margin_for_rule


class KLayoutLikeChecker:
    """One KLayout-like checker instance bound to a layout and a mode."""

    MODES = ("flat", "deep", "tile")

    def __init__(
        self,
        layout: Layout,
        mode: str = "flat",
        *,
        tile_size: int = 2048,
        workers: int = 8,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown KLayout-like mode {mode!r}")
        self.layout = layout
        self.mode = mode
        self.tile_size = tile_size
        self.workers = max(1, workers)
        self._flat_cache: Dict[int, List[Polygon]] = {}
        #: Stats of the last run (tile mode: serial vs modelled wall time).
        self.last_stats: Dict[str, float] = {}

    # -- public API -------------------------------------------------------------

    def run(self, rule: Rule) -> Tuple[List[Violation], float]:
        """Execute one rule; returns (violations, seconds).

        For tile mode, ``seconds`` is the modelled multi-worker wall time;
        ``last_stats["serial_seconds"]`` holds the measured single-core time.
        """
        self.last_stats = {}
        start = time.perf_counter()
        if self.mode == "flat":
            violations = self._run_flat(rule)
        elif self.mode == "deep":
            violations = self._run_deep(rule)
        else:
            violations, wall = self._run_tiled(rule)
            serial = time.perf_counter() - start
            self.last_stats["serial_seconds"] = serial
            self.last_stats["modelled_wall_seconds"] = wall
            return violations, wall
        return violations, time.perf_counter() - start

    def check(self, rules: Sequence[Rule]) -> CheckReport:
        results = []
        for rule in rules:
            violations, seconds = self.run(rule)
            results.append(
                CheckResult(rule=rule, violations=violations, seconds=seconds,
                            stats=dict(self.last_stats))
            )
        return CheckReport(self.layout.name, f"klayout-{self.mode}", results)

    # -- shared helpers -----------------------------------------------------------

    def _flat(self, layer: int) -> List[Polygon]:
        if layer not in self._flat_cache:
            self._flat_cache[layer] = flatten_layer(self.layout, layer)
        return self._flat_cache[layer]

    def clear_cache(self) -> None:
        """Drop flattening caches (so benchmarks charge flattening per run)."""
        self._flat_cache.clear()

    # -- flat mode ------------------------------------------------------------------

    def _normalize(self, polygons: Sequence[Polygon], label: str) -> None:
        """KLayout-style region normalization (merge) pre-pass.

        KLayout's DRC pipeline always merges input shapes into disjoint
        regions before measuring. The merge is executed for real (it is the
        dominant honest cost of the generic pipeline); the checks then run
        on the original shapes so that violation semantics stay identical
        across all checkers (see DESIGN.md §1). Region statistics land in
        ``last_stats``.
        """
        region = union_polygons(polygons)
        self.last_stats[f"regions[{label}]"] = region.region_count

    def _run_flat(self, rule: Rule) -> List[Violation]:
        if rule.kind is RuleKind.SPACING:
            polygons = self._flat(rule.layer)
            self._normalize(polygons, f"L{rule.layer}")
            return check_spacing(polygons, rule.layer, rule.value)
        if rule.kind is RuleKind.ENCLOSURE:
            vias = self._flat(rule.layer)
            metals = self._flat(rule.other_layer)
            self._normalize(vias, f"L{rule.layer}")
            self._normalize(metals, f"L{rule.other_layer}")
            return check_enclosure(
                vias, metals, rule.layer, rule.other_layer, rule.value
            )
        layers = [rule.layer] if rule.layer is not None else self.layout.layers()
        out: List[Violation] = []
        for layer in layers:
            polygons = self._flat(layer)
            self._normalize(polygons, f"L{layer}")
            out.extend(_intra_flat(rule, polygons, layer))
        return out

    # -- deep mode ---------------------------------------------------------------------

    def _run_deep(self, rule: Rule) -> List[Violation]:
        tree = HierarchyTree(self.layout)
        if rule.layer is not None:
            self._deep_normalize(rule.layer)
        if rule.is_intra:
            return self._deep_intra(rule, tree)
        if rule.kind is RuleKind.SPACING:
            return self._deep_spacing(rule.layer, rule.value, tree)
        return self._deep_enclosure(rule.layer, rule.other_layer, rule.value, tree)

    def _deep_normalize(self, layer: int) -> None:
        """Deep-mode normalization: merge per cell *definition* (cheap)."""
        regions = 0
        for cell in self.layout.cells.values():
            polygons = cell.polygons(layer)
            if polygons:
                regions += union_polygons(polygons).region_count
        self.last_stats[f"regions[L{layer}]"] = regions

    def _deep_intra(self, rule: Rule, tree: HierarchyTree) -> List[Violation]:
        from ..core.sequential import SequentialChecker

        # Deep mode's hierarchical intra checking is the same memoisation
        # OpenDRC uses — this is why KLayout-deep is fast in Table I.
        return SequentialChecker(self.layout, tree=tree, use_rows=False).run(rule)

    def _deep_spacing(self, layer: int, value: int, tree: HierarchyTree) -> List[Violation]:
        subtree = SubtreeWindow(tree)
        memo: Dict[str, List[Violation]] = {}

        def internal(cell_name: str) -> List[Violation]:
            if cell_name in memo:
                return memo[cell_name]
            cell = self.layout.cell(cell_name)
            vios: List[Violation] = []
            for polygon in cell.polygons(layer):
                vios.extend(spacing_notch_violations(polygon, layer, value))
            items = level_items(tree, cell, layer)
            margin = margin_for_rule(value)
            # Quadratic candidate loop — deep mode's hierarchical analysis
            # cost, with per-pair full-window flattening.
            for i in range(len(items)):
                mbr_i = items[i].mbr.inflated(margin)
                for j in range(i + 1, len(items)):
                    if not mbr_i.overlaps(items[j].mbr.inflated(margin)):
                        continue
                    side_a, side_b = _gather(items[i], items[j], subtree, layer, value)
                    for pa in side_a:
                        window = pa.mbr.inflated(value)
                        for pb in side_b:
                            if window.overlaps(pb.mbr):
                                vios.extend(
                                    spacing_pair_violations(pa, pb, layer, value)
                                )
            for ref in cell.references:
                if not tree.has_layer(ref.cell_name, layer):
                    continue
                child = internal(ref.cell_name)
                for placement in ref.placements():
                    if placement.preserves_distances:
                        vios.extend(v.transformed(placement) for v in child)
                    else:
                        window = placement.apply_rect(tree.layer_mbr(ref.cell_name, layer))
                        flat = subtree.polygons_in_window(
                            ref.cell_name, placement, layer, window
                        )
                        vios.extend(check_spacing(flat, layer, value))
            memo[cell_name] = vios
            return vios

        return internal(tree.top.name)

    def _deep_enclosure(
        self, via_layer: int, metal_layer: int, value: int, tree: HierarchyTree
    ) -> List[Violation]:
        # Hierarchy brings little for cross-layer rules in KLayout's model;
        # evaluate on the flattened layers (its deep engine falls back to
        # region operations for such interactions).
        return check_enclosure(
            self._flat(via_layer),
            self._flat(metal_layer),
            via_layer,
            metal_layer,
            value,
        )

    # -- tiling mode -------------------------------------------------------------------

    def _run_tiled(self, rule: Rule) -> Tuple[List[Violation], float]:
        """Tiled execution: modelled wall = serial setup (flatten + tile
        assignment, single-threaded in KLayout too) + the LPT critical path
        of the per-tile checks over the worker pool."""
        setup_start = time.perf_counter()
        if rule.is_intra:
            # Intra rules tile trivially (each polygon in one tile by MBR).
            layers = [rule.layer] if rule.layer is not None else self.layout.layers()
            per_layer_tiles = [
                (layer, self._assign_tiles(self._flat(layer), margin=0))
                for layer in layers
            ]
            setup = time.perf_counter() - setup_start
            tile_times: List[float] = []
            out: List[Violation] = []
            for layer, tiles in per_layer_tiles:
                for polygons in tiles.values():
                    t0 = time.perf_counter()
                    union_polygons(polygons)  # per-tile normalization
                    out.extend(_intra_flat(rule, polygons, layer))
                    tile_times.append(time.perf_counter() - t0)
            # Dedup: a polygon whose MBR spans tiles is checked repeatedly.
            return sorted(set(out), key=_violation_key), setup + _critical_path(
                tile_times, self.workers
            )
        if rule.kind is RuleKind.SPACING:
            margin = margin_for_rule(rule.value)
            tiles = self._assign_tiles(self._flat(rule.layer), margin=margin)
            setup = time.perf_counter() - setup_start
            out = []
            tile_times = []
            for polygons in tiles.values():
                t0 = time.perf_counter()
                union_polygons(polygons)  # per-tile normalization
                out.extend(check_spacing(polygons, rule.layer, rule.value))
                tile_times.append(time.perf_counter() - t0)
            return sorted(set(out), key=_violation_key), setup + _critical_path(
                tile_times, self.workers
            )
        # Enclosure: tile both layers with the rule margin.
        vias = self._flat(rule.layer)
        metals = self._flat(rule.other_layer)
        via_tiles = self._assign_tiles(vias, margin=rule.value)
        metal_tiles = self._assign_tiles(metals, margin=rule.value)
        setup = time.perf_counter() - setup_start
        out = []
        tile_times = []
        for key, tile_vias in via_tiles.items():
            t0 = time.perf_counter()
            union_polygons(tile_vias)  # per-tile normalization
            union_polygons(metal_tiles.get(key, []))
            out.extend(
                check_enclosure(
                    tile_vias,
                    metal_tiles.get(key, []),
                    rule.layer,
                    rule.other_layer,
                    rule.value,
                )
            )
            tile_times.append(time.perf_counter() - t0)
        return sorted(set(out), key=_violation_key), setup + _critical_path(
            tile_times, self.workers
        )

    def _assign_tiles(
        self, polygons: Sequence[Polygon], *, margin: int
    ) -> Dict[Tuple[int, int], List[Polygon]]:
        """Assign each polygon to every tile its margin-inflated MBR overlaps."""
        tiles: Dict[Tuple[int, int], List[Polygon]] = {}
        size = self.tile_size
        for polygon in polygons:
            mbr = polygon.mbr.inflated(margin)
            for tx in range(mbr.xlo // size, mbr.xhi // size + 1):
                for ty in range(mbr.ylo // size, mbr.yhi // size + 1):
                    tiles.setdefault((tx, ty), []).append(polygon)
        return tiles


def _intra_flat(rule: Rule, polygons: Sequence[Polygon], layer: int) -> List[Violation]:
    if rule.kind is RuleKind.WIDTH:
        return check_width(polygons, layer, rule.value)
    if rule.kind is RuleKind.AREA:
        return check_area(polygons, layer, rule.value)
    if rule.kind is RuleKind.RECTILINEAR:
        return check_rectilinear(polygons, layer)
    if rule.kind is RuleKind.ENSURES:
        return check_ensures(polygons, layer, rule.predicate)
    raise NotImplementedError(rule.kind)


def _gather(item_a: LevelItem, item_b: LevelItem, subtree, layer: int, value: int):
    from ..hierarchy.pruning import gather_pair_polygons

    return gather_pair_polygons(item_a, item_b, subtree, layer, value)


def _critical_path(tile_times: List[float], workers: int) -> float:
    """LPT-schedule tile times onto ``workers``; return the makespan.

    Models KLayout's multi-CPU tiling without pretending Python threads ran
    in parallel; the honest serial sum is reported alongside in last_stats.
    """
    if not tile_times:
        return 0.0
    loads = [0.0] * workers
    for t in sorted(tile_times, reverse=True):
        loads[loads.index(min(loads))] += t
    return max(loads)


def _violation_key(v: Violation):
    return (v.layer, v.kind.value, tuple(v.region), v.measured)
