"""Synthesis of the six paper benchmark designs (aes, ethmac, ibex, jpeg, sha3, uart).

The paper benchmarks OpenROAD-synthesized ASAP7 layouts. This module builds
behaviourally equivalent synthetic designs: a deterministic placer fills
standard-cell rows (one unique row cell per row, heavy standard-cell
definition reuse, AREF filler runs), and a deterministic router adds M2
vertical wires on the site grid, M3 horizontal wires on their own track
grid, V1 vias where M2 wires land on cell fingers, and V2 vias at M2 x M3
crossings — all DRC-clean by construction against the deck in
:mod:`repro.workloads.asap7`.

Relative design sizes follow the paper (uart smallest, jpeg largest with a
pathologically dense M3, reproducing the Table II blow-up row). ``scale``
selects "ci" (seconds-scale benchmarks) or "paper" (approaching the paper's
polygon counts).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Set, Tuple

from ..geometry import Polygon
from ..layout.cell import Cell, CellReference, Repetition
from ..layout.library import Layout
from ..geometry.transform import Transform
from . import asap7
from .stdcells import LIBRARY, PLACEABLE, build_library

DESIGN_NAMES = ("aes", "ethmac", "ibex", "jpeg", "sha3", "uart")


@dataclasses.dataclass(frozen=True)
class DesignSpec:
    """Size parameters of one synthetic design."""

    name: str
    rows: int
    sites_per_row: int
    m2_wires: int
    m3_tracks: int
    m3_segments_per_track: int

    @property
    def width(self) -> int:
        return self.sites_per_row * asap7.SITE

    @property
    def height(self) -> int:
        return self.rows * asap7.CELL_HEIGHT

    def scaled(self, factor: int) -> "DesignSpec":
        return DesignSpec(
            self.name,
            self.rows * factor,
            self.sites_per_row * factor,
            self.m2_wires * factor * factor,
            self.m3_tracks * factor,
            self.m3_segments_per_track * factor,
        )


_CI_SPECS: Dict[str, DesignSpec] = {
    spec.name: spec
    for spec in (
        DesignSpec("uart", rows=4, sites_per_row=30, m2_wires=16,
                   m3_tracks=6, m3_segments_per_track=3),
        DesignSpec("ibex", rows=6, sites_per_row=45, m2_wires=40,
                   m3_tracks=10, m3_segments_per_track=4),
        DesignSpec("sha3", rows=10, sites_per_row=64, m2_wires=80,
                   m3_tracks=14, m3_segments_per_track=6),
        DesignSpec("aes", rows=10, sites_per_row=70, m2_wires=90,
                   m3_tracks=16, m3_segments_per_track=6),
        DesignSpec("ethmac", rows=14, sites_per_row=100, m2_wires=180,
                   m3_tracks=24, m3_segments_per_track=7),
        # jpeg's M3 is pathologically dense: the Table II blow-up row.
        DesignSpec("jpeg", rows=16, sites_per_row=120, m2_wires=220,
                   m3_tracks=40, m3_segments_per_track=14),
    )
}

SCALES = {"ci": 1, "paper": 3}


def design_spec(name: str, scale: str = "ci") -> DesignSpec:
    """Size spec of one design at one scale."""
    try:
        base = _CI_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown design {name!r}; choose from {DESIGN_NAMES}") from None
    factor = SCALES[scale] if isinstance(scale, str) else int(scale)
    return base if factor == 1 else base.scaled(factor)


def build_design(name: str, scale: str = "ci") -> Layout:
    """Synthesize one benchmark design as a hierarchical layout."""
    return _Builder(design_spec(name, scale)).build()


def build_all(scale: str = "ci") -> Dict[str, Layout]:
    """All six designs at one scale."""
    return {name: build_design(name, scale) for name in DESIGN_NAMES}


class _Builder:
    """Deterministic placer + router for one design spec."""

    def __init__(self, spec: DesignSpec) -> None:
        self.spec = spec
        self.rng = random.Random(f"opendrc-{spec.name}")
        self.layout = Layout(spec.name)
        #: finger-bearing global columns per row (left edge of the finger).
        self.finger_columns: List[List[int]] = []
        #: occupied y spans per M2 track column (for same-track separation).
        self.m2_track_usage: Dict[int, List[Tuple[int, int]]] = {}
        self.top = Cell("top")

    # -- entry point -----------------------------------------------------------

    def build(self) -> Layout:
        for cell in build_library().values():
            self.layout.add_cell(cell)
        self._place_rows()
        self._route_m2_and_v1()
        self._route_m3_and_v2()
        self.layout.add_cell(self.top)
        self.layout.set_top("top")
        self.layout.validate()
        return self.layout

    # -- placement ----------------------------------------------------------------

    def _place_rows(self) -> None:
        """Rows reuse a small set of patterns, as in datapath/array-heavy
        designs — this instance reuse is what hierarchical inter-polygon
        memoisation (paper §IV-C) exploits."""
        num_patterns = max(2, self.spec.rows // 3)
        patterns: List[Tuple[Cell, List[int]]] = []
        for pattern_index in range(num_patterns):
            row_cell, columns = self._build_row(pattern_index)
            self.layout.add_cell(row_cell)
            patterns.append((row_cell, columns))
        for row_index in range(self.spec.rows):
            row_cell, columns = patterns[row_index % num_patterns]
            self.top.add_reference(
                CellReference(
                    row_cell.name,
                    Transform(dx=0, dy=row_index * asap7.CELL_HEIGHT),
                )
            )
            self.finger_columns.append(columns)

    def _build_row(self, row_index: int) -> Tuple[Cell, List[int]]:
        """One unique row cell: abutting standard cells plus AREF filler runs."""
        row = Cell(f"row_{row_index}")
        columns: List[int] = []
        site = 0
        while site < self.spec.sites_per_row:
            remaining = self.spec.sites_per_row - site
            # Occasionally insert a filler run (exercises AREF handling).
            if remaining >= 2 and self.rng.random() < 0.15:
                run = self.rng.randint(1, min(4, remaining))
                row.add_reference(
                    CellReference(
                        "FILLERx1",
                        Transform(dx=site * asap7.SITE, dy=0),
                        Repetition(
                            columns=run, rows=1, column_step=(asap7.SITE, 0), row_step=(0, 0)
                        ),
                    )
                )
                site += run
                continue
            candidates = [n for n in PLACEABLE if LIBRARY[n].sites <= remaining]
            if not candidates:
                row.add_reference(
                    CellReference("FILLERx1", Transform(dx=site * asap7.SITE, dy=0))
                )
                site += 1
                continue
            name = self.rng.choice(candidates)
            x = site * asap7.SITE
            # Mirror about x occasionally, as placers flip rows/cells; the
            # cell geometry is y-symmetric so the result stays clean.
            mirror = self.rng.random() < 0.3
            transform = (
                Transform(dx=x, dy=asap7.CELL_HEIGHT, mirror_x=True)
                if mirror
                else Transform(dx=x, dy=0)
            )
            row.add_reference(CellReference(name, transform))
            for local in LIBRARY[name].finger_columns:
                columns.append(x + local)
            site += LIBRARY[name].sites
        return row, sorted(columns)

    # -- M2 routing + V1 vias ----------------------------------------------------------

    def _route_m2_and_v1(self) -> None:
        """Vertical M2 wires on finger columns, with V1 vias at both ends."""
        placed = 0
        attempts = 0
        max_attempts = self.spec.m2_wires * 20
        while placed < self.spec.m2_wires and attempts < max_attempts:
            attempts += 1
            r0 = self.rng.randrange(self.spec.rows)
            span = self.rng.randint(1, min(4, self.spec.rows - r0))
            r1 = r0 + span - 1
            start_columns = self.finger_columns[r0]
            if not start_columns:
                continue
            column = self.rng.choice(start_columns)
            ylo = r0 * asap7.CELL_HEIGHT + 40
            yhi = (r1 + 1) * asap7.CELL_HEIGHT - 40
            if not self._claim_m2(column, ylo, yhi):
                continue
            self.top.add_polygon(
                asap7.M2,
                Polygon.from_rect_coords(column, ylo, column + asap7.M2_WIDTH, yhi),
            )
            self._drop_v1(column, r0)
            if r1 != r0 and column in self.finger_columns[r1]:
                self._drop_v1(column, r1, at_top=True)
            placed += 1

    def _claim_m2(self, column: int, ylo: int, yhi: int) -> bool:
        """Reserve a same-track span, keeping >= 30 nm to existing segments."""
        spans = self.m2_track_usage.setdefault(column, [])
        for other_lo, other_hi in spans:
            if ylo - 30 < other_hi and other_lo < yhi + 30:
                return False
        spans.append((ylo, yhi))
        return True

    def _drop_v1(self, column: int, row_index: int, *, at_top: bool = False) -> None:
        """A V1 via on the finger at ``column`` in ``row_index``.

        Via x: finger + 4 (margin 4 >= V1.M1.EN); via y: 20 nm inside the
        wire end, which lands inside the finger's [40, 210] band.
        """
        base = row_index * asap7.CELL_HEIGHT
        if at_top:
            y0 = base + asap7.CELL_HEIGHT - 40 - 20 - asap7.V1_SIZE
        else:
            y0 = base + 40 + 20
        self.top.add_polygon(
            asap7.V1,
            Polygon.from_rect_coords(
                column + 4, y0, column + 4 + asap7.V1_SIZE, y0 + asap7.V1_SIZE
            ),
        )

    # -- M3 routing + V2 vias ------------------------------------------------------------

    def _route_m3_and_v2(self) -> None:
        """Horizontal M3 wires on their own track grid, V2 vias at crossings."""
        min_gap = asap7.SPACING_RULES[asap7.M3] + 2  # clean and row-separable
        v2_spots: Set[Tuple[int, int]] = set()
        for track in range(self.spec.m3_tracks):
            y0 = 60 + track * asap7.M3_PITCH
            if y0 + asap7.M3_WIDTH > self.spec.height - 20:
                break
            x = 20
            for _ in range(self.spec.m3_segments_per_track):
                length = self.rng.randint(4, 12) * asap7.SITE
                if x + length > self.spec.width - 20:
                    break
                self.top.add_polygon(
                    asap7.M3,
                    Polygon.from_rect_coords(x, y0, x + length, y0 + asap7.M3_WIDTH),
                )
                self._drop_v2(x, x + length, y0, v2_spots)
                x += length + min_gap + self.rng.randint(0, 3) * asap7.SITE
        # V2 vias also require M2 enclosure; _drop_v2 only places a via when
        # an M2 wire crosses with sufficient margin, so the layout is clean.

    def _drop_v2(
        self, xlo: int, xhi: int, track_y: int, used: Set[Tuple[int, int]]
    ) -> None:
        """V2 at the first M2 crossing covered with enough margin, if any."""
        m2_required = asap7.ENCLOSURE_RULES[(asap7.V2, asap7.M2)]
        m3_required = asap7.ENCLOSURE_RULES[(asap7.V2, asap7.M3)]
        via = asap7.V2_SIZE
        via_y = track_y + (asap7.M3_WIDTH - via) // 2
        for column, spans in sorted(self.m2_track_usage.items()):
            via_x = column + (asap7.M2_WIDTH - via) // 2
            if via_x - xlo < m3_required or xhi - (via_x + via) < m3_required:
                continue
            for span_lo, span_hi in spans:
                if span_lo + m2_required <= via_y and via_y + via + m2_required <= span_hi:
                    spot = (via_x, via_y)
                    if spot in used:
                        return
                    used.add(spot)
                    self.top.add_polygon(
                        asap7.V2,
                        Polygon.from_rect_coords(via_x, via_y, via_x + via, via_y + via),
                    )
                    return
