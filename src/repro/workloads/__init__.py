"""Benchmark workloads: ASAP7-like PDK, standard cells, the six paper designs."""

from . import asap7
from .designs import DESIGN_NAMES, DesignSpec, build_all, build_design, design_spec
from .generator import (
    InjectionPlan,
    inject_violations,
    random_hierarchical_layout,
    random_rect_layout,
)
from .stdcells import LIBRARY, PLACEABLE, build_cell, build_library

__all__ = [
    "DESIGN_NAMES",
    "DesignSpec",
    "InjectionPlan",
    "LIBRARY",
    "PLACEABLE",
    "asap7",
    "build_all",
    "build_cell",
    "build_design",
    "build_library",
    "design_spec",
    "inject_violations",
    "random_hierarchical_layout",
    "random_rect_layout",
]
