"""ASAP7-like process constants and the benchmark rule deck.

The paper evaluates BEOL rules (width, spacing, area, enclosure) on layers
M1, M2, M3, V1, V2 of the ASAP7 PDK. The real PDK is not redistributable, so
this module defines a *synthetic but dimensionally faithful* stand-in: layer
numbers, wire widths/pitches, via sizes, and rule values in the same regime
(nanometre units, 1 dbu = 1 nm), chosen so that the generated layouts are
violation-free by construction (violations are injected explicitly by
:mod:`repro.workloads.generator`).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.rules import Rule, layer

# -- layer map (GDS layer numbers) -------------------------------------------

M1 = 19
M2 = 20
M3 = 30
V1 = 21
V2 = 22

LAYER_NAMES: Dict[int, str] = {M1: "M1", M2: "M2", M3: "M3", V1: "V1", V2: "V2"}
METAL_LAYERS = (M1, M2, M3)
VIA_LAYERS = (V1, V2)

# -- geometry constants (nm) ---------------------------------------------------

#: Standard cell row height.
CELL_HEIGHT = 250
#: Placement grid: cell widths are multiples of this, and M1 fingers /
#: M2 routing tracks sit on this pitch.
SITE = 54
#: M1 finger width inside standard cells.
M1_FINGER_WIDTH = 18
#: M1 power rail height (top and bottom of every cell).
M1_RAIL_HEIGHT = 20
#: Vertical extent of M1 fingers inside a cell.
M1_FINGER_Y = (40, 210)

#: M2 vertical routing wires.
M2_WIDTH = 18
#: M3 horizontal routing wires.
M3_WIDTH = 24
#: M3 track pitch; the 26 nm gap clears both the 24 nm spacing rule and the
#: 2*margin+1 = 25 nm row-independence bound, so M3 tracks partition cleanly.
M3_PITCH = M3_WIDTH + 26

#: Via sizes (square).
V1_SIZE = 10
V2_SIZE = 12

# -- rule values ---------------------------------------------------------------

WIDTH_RULES: Dict[int, int] = {M1: 18, M2: 18, M3: 24}
SPACING_RULES: Dict[int, int] = {M1: 18, M2: 20, M3: 24}
AREA_RULES: Dict[int, int] = {M1: 1000, M2: 1000, M3: 1000}
#: (via layer, metal layer) -> minimum enclosure.
ENCLOSURE_RULES: Dict[tuple, int] = {
    (V1, M1): 3,
    (V1, M2): 3,
    (V2, M2): 3,
    (V2, M3): 4,
}


def rule_name(kind: str, layer_num: int, other: int = None) -> str:
    """Deck-style rule names: ``M1.W.1``, ``M2.S.1``, ``V1.M1.EN.1``."""
    if kind == "EN":
        return f"{LAYER_NAMES[layer_num]}.{LAYER_NAMES[other]}.EN.1"
    return f"{LAYER_NAMES[layer_num]}.{kind}.1"


def width_rule(metal: int) -> Rule:
    return layer(metal).width().greater_than(WIDTH_RULES[metal]).named(
        rule_name("W", metal)
    )


def spacing_rule(metal: int) -> Rule:
    return layer(metal).spacing().greater_than(SPACING_RULES[metal]).named(
        rule_name("S", metal)
    )


def area_rule(metal: int) -> Rule:
    return layer(metal).area().greater_than(AREA_RULES[metal]).named(
        rule_name("A", metal)
    )


def enclosure_rule(via: int, metal: int) -> Rule:
    value = ENCLOSURE_RULES[(via, metal)]
    return layer(via).enclosure(layer(metal)).greater_than(value).named(
        rule_name("EN", via, metal)
    )


def full_deck() -> List[Rule]:
    """Every rule the benchmarks exercise (the Tables I + II deck)."""
    deck: List[Rule] = []
    for metal in METAL_LAYERS:
        deck.append(width_rule(metal))
        deck.append(area_rule(metal))
    for metal in METAL_LAYERS:
        deck.append(spacing_rule(metal))
    for via, metal in ((V1, M1), (V2, M2), (V2, M3)):
        deck.append(enclosure_rule(via, metal))
    return deck


def intra_deck() -> List[Rule]:
    """Table I rules: width + area on M1/M2/M3."""
    deck: List[Rule] = []
    for metal in METAL_LAYERS:
        deck.append(width_rule(metal))
        deck.append(area_rule(metal))
    return deck


def spacing_deck() -> List[Rule]:
    """Table II (left half) rules: spacing on M1/M2/M3."""
    return [spacing_rule(metal) for metal in METAL_LAYERS]


def enclosure_deck() -> List[Rule]:
    """Table II (right half) rules: the three via enclosures."""
    return [enclosure_rule(V1, M1), enclosure_rule(V2, M2), enclosure_rule(V2, M3)]
