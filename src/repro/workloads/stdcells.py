"""Synthetic standard-cell library.

Eight cell archetypes with deterministic, DRC-clean M1 geometry in the
ASAP7-like regime of :mod:`repro.workloads.asap7`:

* two power rails (full cell width, 20 nm tall) at the bottom and top;
* vertical M1 fingers, 18 nm wide on the 54 nm site grid, y in [40, 210].

Every finger column global position lands on the site grid, which is what
lets the router (in :mod:`repro.workloads.designs`) drop V1 vias on fingers
under M2 tracks.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..geometry import Polygon
from ..layout.cell import Cell
from . import asap7


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One standard-cell archetype."""

    name: str
    sites: int  # width in SITE units

    @property
    def width(self) -> int:
        return self.sites * asap7.SITE

    @property
    def finger_columns(self) -> List[int]:
        """Local x of each finger's left edge (one per interior site line)."""
        return [18 + k * asap7.SITE for k in range(self.sites - 1)]


#: The library: name -> spec. Widths chosen to mix small and large cells.
LIBRARY: Dict[str, CellSpec] = {
    spec.name: spec
    for spec in (
        CellSpec("INVx1", 2),
        CellSpec("BUFx2", 2),
        CellSpec("NAND2x1", 3),
        CellSpec("NOR2x1", 3),
        CellSpec("AND2x2", 4),
        CellSpec("AOI21x1", 5),
        CellSpec("MUX2x1", 6),
        CellSpec("DFFx1", 8),
        CellSpec("FILLERx1", 1),
    )
}

#: Cells drawn by the placer (filler is handled separately via AREF runs).
PLACEABLE = [name for name in LIBRARY if name != "FILLERx1"]


def build_cell(spec: CellSpec) -> Cell:
    """Materialize one library cell's geometry."""
    cell = Cell(spec.name)
    width = spec.width
    # Power rails: VSS at the bottom, VDD at the top.
    cell.add_polygon(
        asap7.M1,
        Polygon.from_rect_coords(0, 0, width, asap7.M1_RAIL_HEIGHT, name="VSS"),
    )
    cell.add_polygon(
        asap7.M1,
        Polygon.from_rect_coords(
            0, asap7.CELL_HEIGHT - asap7.M1_RAIL_HEIGHT, width, asap7.CELL_HEIGHT, name="VDD"
        ),
    )
    y_lo, y_hi = asap7.M1_FINGER_Y
    for x in spec.finger_columns:
        cell.add_polygon(
            asap7.M1,
            Polygon.from_rect_coords(x, y_lo, x + asap7.M1_FINGER_WIDTH, y_hi),
        )
    return cell


def build_library() -> Dict[str, Cell]:
    """All library cells, keyed by name."""
    return {name: build_cell(spec) for name, spec in LIBRARY.items()}
