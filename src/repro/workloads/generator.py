"""Workload helpers: violation injection and random layouts for tests.

The benchmark designs are DRC-clean by construction; recall testing needs
layouts with *known* violations. :func:`inject_violations` plants dirty
geometry in a scratch strip above a design and returns the exact violations
every checker must recover. :func:`random_rect_layout` provides quick random
populations for property-based and stress tests.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from ..checks.base import Violation, ViolationKind
from ..geometry import Polygon, Rect
from ..layout.cell import CellReference
from ..layout.library import Layout
from ..geometry.transform import Transform
from . import asap7


@dataclasses.dataclass
class InjectionPlan:
    """How many violations of each kind to plant."""

    spacing: int = 0
    width: int = 0
    area: int = 0
    enclosure: int = 0


def inject_violations(
    layout: Layout,
    plan: InjectionPlan,
    *,
    layer: int = asap7.M2,
    via_layer: int = asap7.V2,
    metal_layer: int = asap7.M2,
    seed: int = 0,
) -> List[Violation]:
    """Plant violations in a scratch strip above the layout's geometry.

    Geometry goes into the top cell; the returned list holds the exact
    violations (kind, region, measured, required) a correct checker reports
    for them. Each planted pattern is isolated (>= 2x the largest rule value
    from anything else), so expected violations are independent.
    """
    rng = random.Random(seed)
    top = layout.top_cell()
    from ..hierarchy.tree import HierarchyTree

    tree = HierarchyTree(layout)
    base_y = 0
    for check_layer in layout.layers():
        mbr = tree.top_mbr(check_layer)
        if not mbr.is_empty:
            base_y = max(base_y, mbr.yhi)
    y = base_y + 500  # scratch strip, clear of everything
    pitch = 400
    expected: List[Violation] = []

    space_rule = asap7.SPACING_RULES[layer]
    width_rule = asap7.WIDTH_RULES[layer]
    area_rule = asap7.AREA_RULES[layer]
    enc_rule = asap7.ENCLOSURE_RULES[(via_layer, metal_layer)]

    x = 100
    for _ in range(plan.spacing):
        gap = rng.randint(1, space_rule - 1)
        a = Polygon.from_rect_coords(x, y, x + 60, y + 60)
        b = Polygon.from_rect_coords(x + 60 + gap, y, x + 120 + gap, y + 60)
        top.add_polygon(layer, a)
        top.add_polygon(layer, b)
        expected.append(
            Violation(
                kind=ViolationKind.SPACING,
                layer=layer,
                region=Rect(x + 60, y, x + 60 + gap, y + 60),
                measured=gap,
                required=space_rule,
            )
        )
        x += pitch

    for _ in range(plan.width):
        w = rng.randint(1, width_rule - 1)
        # Long enough that the sliver trips only the width rule, not area.
        length = max(400, area_rule)
        sliver = Polygon.from_rect_coords(x, y, x + w, y + length)
        top.add_polygon(layer, sliver)
        expected.append(
            Violation(
                kind=ViolationKind.WIDTH,
                layer=layer,
                region=Rect(x, y, x + w, y + length),
                measured=w,
                required=width_rule,
            )
        )
        x += pitch

    for _ in range(plan.area):
        # Width-rule wide, but short of the area rule: trips exactly one rule.
        w = width_rule
        max_h = (area_rule - 1) // w
        if max_h < w:
            raise ValueError(
                f"area rule {area_rule} on layer {layer} admits no area-only "
                f"violation at width {w}"
            )
        h = rng.randint(w, max_h)
        patch = Polygon.from_rect_coords(x, y, x + w, y + h)
        top.add_polygon(layer, patch)
        expected.append(
            Violation(
                kind=ViolationKind.AREA,
                layer=layer,
                region=patch.mbr,
                measured=w * h,
                required=area_rule,
            )
        )
        x += pitch

    for _ in range(plan.enclosure):
        margin = rng.randint(0, enc_rule - 1)
        via_size = 2 * asap7.V2_SIZE
        # A generous pad (no width/area side effects) with the via pushed to
        # its lower-left so the minimum side margin is exactly ``margin``.
        pad_side = 60
        pad = Polygon.from_rect_coords(x, y, x + pad_side, y + pad_side)
        via = Polygon.from_rect_coords(
            x + margin, y + margin, x + margin + via_size, y + margin + via_size
        )
        top.add_polygon(metal_layer, pad)
        top.add_polygon(via_layer, via)
        expected.append(
            Violation(
                kind=ViolationKind.ENCLOSURE,
                layer=via_layer,
                other_layer=metal_layer,
                region=via.mbr.inflated(enc_rule),
                measured=margin,
                required=enc_rule,
            )
        )
        x += pitch

    return expected


def random_rect_layout(
    num_rects: int,
    *,
    layer: int = 1,
    extent: int = 2000,
    max_size: int = 60,
    seed: int = 0,
    name: str = "random",
) -> Layout:
    """A flat layout of random rectangles on one layer (tests/benches)."""
    rng = random.Random(seed)
    layout = Layout(name)
    top = layout.new_cell("top")
    for _ in range(num_rects):
        x = rng.randint(0, extent)
        yv = rng.randint(0, extent)
        w = rng.randint(2, max_size)
        h = rng.randint(2, max_size)
        top.add_polygon(layer, Polygon.from_rect_coords(x, yv, x + w, yv + h))
    layout.set_top("top")
    return layout


def random_hierarchical_layout(
    *,
    num_leaf_kinds: int = 4,
    instances: int = 50,
    layer: int = 1,
    extent: int = 5000,
    seed: int = 0,
    name: str = "random-hier",
) -> Layout:
    """Random leaf cells instantiated many times (hierarchy stress tests)."""
    rng = random.Random(seed)
    layout = Layout(name)
    for kind in range(num_leaf_kinds):
        leaf = layout.new_cell(f"leaf_{kind}")
        for _ in range(rng.randint(1, 5)):
            x = rng.randint(0, 150)
            yv = rng.randint(0, 150)
            leaf.add_polygon(
                layer,
                Polygon.from_rect_coords(
                    x, yv, x + rng.randint(4, 40), yv + rng.randint(4, 40)
                ),
            )
    top = layout.new_cell("top")
    rotations = (0, 90, 180, 270)
    for _ in range(instances):
        kind = rng.randrange(num_leaf_kinds)
        top.add_reference(
            CellReference(
                f"leaf_{kind}",
                Transform(
                    dx=rng.randint(0, extent),
                    dy=rng.randint(0, extent),
                    rotation=rng.choice(rotations),
                    mirror_x=rng.random() < 0.5,
                ),
            )
        )
    layout.set_top("top")
    return layout
