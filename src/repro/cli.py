"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check <file.gds>``
    Run a rule deck on a GDSII file and print the report (optionally CSV
    markers). The default deck is the ASAP7-like benchmark deck; a custom
    deck is any Python file defining ``RULES = [...]`` with DSL rules.
    ``--fuse-rows/--no-fuse-rows``, ``--num-streams``, and
    ``--brute-force-threshold`` expose the parallel backend's knobs.
``check-window <file.gds> <x1> <y1> <x2> <y2>``
    Incremental check: run the deck only on the given window (dbu
    coordinates) through the windowed backend. Repeatable
    ``--window X1 Y1 X2 Y2`` options add further windows; overlapping
    windows coalesce and each violation reports once.
``recheck <old.gds> <new.gds>``
    True incremental re-check: diff the two versions by per-layer
    geometry digests, re-check each rule only in its dirty regions, and
    splice into the previous report (cached beside the pack store —
    ``--cache-dir`` / ``$REPRO_CACHE_DIR`` — or recomputed cold).
    ``--verify`` additionally runs the cold full check and asserts the
    spliced report matches byte-for-byte.
``diff <old.json> <new.json>``
    Regression-diff two marker databases: per-rule fixed / new / unchanged
    counts, exit code 1 iff new *unwaived* violations appeared — the
    CI-gateable "did my edit make DRC worse" predicate.
``waive <markers.json> -o <waivers.json>``
    Generate geometry-anchored waiver records (rule name + content digest
    of the violating marker) from a marker database, optionally filtered
    by ``--rule`` / ``--region`` and stamped with a ``--reason``.
``violations <markers.json>``
    Filter a marker database by severity / rule / bbox — the same code
    path ``GET /sessions/<id>/violations`` serves, so local and served
    listings are byte-identical.
``stats <file.gds>``
    Print layout statistics (cells, instances, flat polygons, hierarchy).
``synth <design> <out.gds>``
    Synthesize one of the six benchmark designs to a GDSII file.
``cache stats|clear``
    Inspect or empty the persistent caches (``--cache-dir`` or
    ``$REPRO_CACHE_DIR``): the pack store plus the report cache under its
    ``reports/`` directory. ``check``/``check-window`` warm-start from the
    same store via ``--cache-dir`` / ``REPRO_CACHE_DIR``; ``--no-cache``
    disables it.
``serve``
    Run the resident DRC daemon: one warm engine (pack store, worker
    pools, cost model, report cache all stay hot) serving JSON over HTTP.
    ``check <file.gds> --server URL`` routes a check through a running
    daemon instead of paying a cold start.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import runpy
import signal
import sys
import threading
from typing import List, Optional

from .core import DEFAULT_BRUTE_FORCE_THRESHOLD, Engine, EngineOptions
from .core.plan import DEFAULT_MAX_RETRIES, DEFAULT_TASK_TIMEOUT
from .core.rules import Rule
from .gdsii import read_layout, write
from .layout import compute_stats, gdsii_from_layout
from .workloads import DESIGN_NAMES, asap7, build_design


def _load_deck(path: Optional[str]) -> List[Rule]:
    if path is None:
        return asap7.full_deck()
    namespace = runpy.run_path(path)
    rules = namespace.get("RULES")
    if not isinstance(rules, list) or not all(isinstance(r, Rule) for r in rules):
        raise SystemExit(f"{path} must define RULES = [<Rule>, ...]")
    return rules


def _read(path: str, top: Optional[str]):
    layout = read_layout(path)
    if top:
        layout.set_top(top)
    return layout


def _resolve_jobs(args: argparse.Namespace) -> int:
    """--jobs wins; otherwise the REPRO_JOBS env var; otherwise 1."""
    if getattr(args, "jobs", None) is not None:
        jobs, source = args.jobs, "--jobs"
    else:
        env = os.environ.get("REPRO_JOBS")
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise SystemExit(f"REPRO_JOBS must be an integer, got {env!r}") from None
        source = "REPRO_JOBS"
    if jobs < 1:
        raise SystemExit(
            f"{source} must be a positive integer, got {jobs}; "
            "use 1 for in-process execution"
        )
    return jobs


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    jobs = _resolve_jobs(args)
    # No explicit --mode: multiple jobs select the multiprocess backend.
    mode = args.mode or ("multiproc" if jobs > 1 else "sequential")
    try:
        return EngineOptions(
            mode=mode,
            use_rows=not args.no_rows,
            num_streams=args.num_streams,
            brute_force_threshold=args.brute_force_threshold,
            fuse_rows=args.fuse_rows,
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            warm_pool=args.warm_pool,
            cost_model=args.cost_model,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _report_format(args: argparse.Namespace) -> str:
    """The output format: --format wins; legacy --csv still works."""
    fmt = getattr(args, "format", None)
    if fmt:
        return fmt
    return "csv" if getattr(args, "csv", False) else "summary"


def _print_report(report, args: argparse.Namespace) -> None:
    fmt = _report_format(args)
    if fmt == "csv":
        print(
            report.to_csv(
                expand_instances=getattr(args, "expand_instances", False)
            )
        )
    elif fmt == "json":
        print(report.to_json())
    else:
        print(report.summary())


def _apply_waiver_file(report, path: str):
    """A copy of ``report`` with the waiver file's matches marked waived.

    Waivers are presentation-time: engines, caches, and splice baselines
    always hold the raw report; this is the single choke point every CLI
    command funnels through just before printing / persisting markers, so
    waived flags land in the output (and in ``--output`` databases) without
    ever entering the cached state.
    """
    from .core.markers import MarkerError, apply_waivers, load_waivers

    try:
        return apply_waivers(report, load_waivers(path))
    except OSError as error:
        raise SystemExit(f"cannot read waiver file {path}: {error}") from None
    except (MarkerError, ValueError) as error:
        raise SystemExit(f"bad waiver file {path}: {error}") from None


@contextlib.contextmanager
def _graceful_sigterm():
    """Turn SIGTERM into a normal stack unwind for the scope's duration.

    Long CLI runs (and the serve daemon) own warm worker pools and a cost
    model that persists on ``Engine.close()``; the default SIGTERM action
    would kill the process before any ``with Engine(...)`` block releases
    them. Only effective on the main thread (signal API restriction).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise SystemExit(128 + signum)

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _served_check(args: argparse.Namespace) -> int:
    """Route ``repro check`` through a running ``repro serve`` daemon.

    ``--waivers`` applies *client-side*, on the fetched report payload,
    through the same :mod:`repro.reporting` functions the local path uses —
    the daemon stays waiver-oblivious (its caches and coalescing keys only
    ever see raw reports) and the output is byte-identical to a local
    waived run of the same deck.
    """
    from .client import (
        ClientError,
        ServeClient,
        apply_waivers_payload,
        report_json_summary,
        report_json_to_csv,
    )

    if args.output:
        raise SystemExit(
            "--output is not supported with --server; fetch the JSON report "
            "and post-process it locally"
        )
    waivers = None
    if args.waivers:
        from .core.markers import MarkerError, load_waivers

        try:
            waivers = load_waivers(args.waivers)
        except OSError as error:
            raise SystemExit(
                f"cannot read waiver file {args.waivers}: {error}"
            ) from None
        except (MarkerError, ValueError) as error:
            raise SystemExit(
                f"bad waiver file {args.waivers}: {error}"
            ) from None
    client = ServeClient(args.server)
    try:
        with open(args.file, "rb") as fh:
            data = fh.read()
    except OSError as error:
        raise SystemExit(f"cannot read {args.file}: {error}") from None
    try:
        info = client.create_session(data=data, top=args.top, deck=args.deck)
        response = client.check(info["session"])
    except ClientError as error:
        raise SystemExit(str(error)) from None
    payload = response["report"]
    if waivers is not None:
        from .reporting import WaiverFormatError

        try:
            payload = apply_waivers_payload(payload, waivers)
        except WaiverFormatError as error:
            raise SystemExit(
                f"bad waiver file {args.waivers}: {error}"
            ) from None
    fmt = _report_format(args)
    if fmt == "csv":
        print(
            report_json_to_csv(
                payload, expand_instances=args.expand_instances
            )
        )
    elif fmt == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report_json_summary(payload))
        meta = response["meta"]
        print(
            f"served by {args.server}: {meta['source']}, "
            f"{meta['seconds'] * 1e3:.2f} ms round trip"
        )
    return 0 if payload["blocking_violations"] == 0 else 1


def cmd_check(args: argparse.Namespace) -> int:
    if args.server:
        return _served_check(args)
    layout = _read(args.file, args.top)
    with _graceful_sigterm(), Engine(options=_engine_options(args)) as engine:
        report = engine.check(layout, rules=_load_deck(args.deck))
    if args.waivers:
        report = _apply_waiver_file(report, args.waivers)
    if args.output:
        from .core.markers import save_markers

        save_markers(report, args.output)
        print(f"wrote marker database: {args.output}")
    _print_report(report, args)
    if _report_format(args) == "summary" and args.breakdown:
        for name, profile in engine.last_profiles.items():
            print(f"\n[{name}]")
            print(profile.breakdown_table())
    return 0 if report.ok else 1


def cmd_check_window(args: argparse.Namespace) -> int:
    from .core import check_window
    from .geometry import Rect

    layout = _read(args.file, args.top)
    windows = [Rect(args.x1, args.y1, args.x2, args.y2)]
    for coords in args.window or []:
        windows.append(Rect(*coords))
    for window in windows:
        if window.is_empty:
            raise SystemExit(
                f"window {window} must be non-empty (x1 <= x2 and y1 <= y2)"
            )
    jobs = _resolve_jobs(args)
    try:
        options = EngineOptions(
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            warm_pool=args.warm_pool,
            cost_model=args.cost_model,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    report = check_window(
        layout, windows, rules=_load_deck(args.deck), options=options
    )
    if args.waivers:
        report = _apply_waiver_file(report, args.waivers)
    _print_report(report, args)
    return 0 if report.ok else 1


def cmd_recheck(args: argparse.Namespace) -> int:
    from .core import recheck

    old = _read(args.old, args.top)
    new = _read(args.new, args.top)
    jobs = _resolve_jobs(args)
    try:
        options = EngineOptions(
            mode="multiproc" if jobs > 1 else "sequential",
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            warm_pool=args.warm_pool,
            cost_model=args.cost_model,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        outcome = recheck(
            old, new, rules=_load_deck(args.deck), options=options,
            verify=args.verify,
        )
    except AssertionError as error:
        raise SystemExit(f"recheck verification failed: {error}") from None
    report = outcome.report
    if args.waivers:
        # Applied *after* the splice: the spliced/cached baselines stay raw
        # (so chained rechecks and --verify compare raw against raw), and
        # because waived flags are excluded from violation identity the
        # waived spliced report is byte-identical to a waived cold check.
        report = _apply_waiver_file(report, args.waivers)
    diff = outcome.diff
    if _report_format(args) == "summary":
        if diff.is_clean:
            print("diff: clean (all per-layer geometry digests match)")
        elif diff.full:
            print("diff: not localisable (full re-check)")
        else:
            for layer in diff.dirty_layers():
                regions = diff.dirty[layer]
                print(
                    f"diff: layer {layer} dirty in {len(regions)} region(s), "
                    f"bounds {regions.bounds}"
                )
        counts = {}
        for kind in outcome.disposition.values():
            counts[kind] = counts.get(kind, 0) + 1
        source = "report cache" if outcome.cache_hit else (
            "cold full check" if "cold" in counts else "in-memory baseline"
        )
        print(
            "recheck: "
            + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
            + f" (baseline: {source})"
        )
        if args.verify:
            print("verify: spliced report matches the cold full check")
    _print_report(report, args)
    return 0 if report.ok else 1


def _load_marker_db(path: str):
    """Load a marker database for the lifecycle commands (SystemExit on error)."""
    from .core.markers import MarkerError, load_markers

    try:
        return load_markers(path)
    except OSError as error:
        raise SystemExit(f"cannot read marker database {path}: {error}") from None
    except (MarkerError, ValueError) as error:
        raise SystemExit(f"bad marker database {path}: {error}") from None


def cmd_diff(args: argparse.Namespace) -> int:
    """Regression diff of two marker databases (``repro diff old new``).

    Exit code 1 iff the new report introduces violations that no waiver
    covers — "did my edit make DRC worse" as a CI-gateable predicate.
    Fixed violations and pre-existing (unchanged) ones never fail the
    diff; neither do new violations that arrive already waived.
    """
    from .core.markers import diff_markers

    before = _load_marker_db(args.old)
    after = _load_marker_db(args.new)
    diff = diff_markers(before, after)
    totals = {"fixed": 0, "new": 0, "new_waived": 0, "unchanged": 0}
    for counts in diff.values():
        for key in totals:
            totals[key] += counts[key]
    regressions = totals["new"] - totals["new_waived"]
    if _report_format(args) == "json":
        print(
            json.dumps(
                {"rules": diff, "totals": totals, "regressions": regressions},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"marker diff: {args.old} -> {args.new}")
        for name in sorted(diff):
            counts = diff[name]
            line = (
                f"  {name}: {counts['fixed']} fixed, {counts['new']} new, "
                f"{counts['unchanged']} unchanged"
            )
            if counts["new_waived"]:
                line += f" ({counts['new_waived']} of the new waived)"
            print(line)
        print(
            f"total: {totals['fixed']} fixed, {totals['new']} new, "
            f"{totals['unchanged']} unchanged"
        )
        if regressions:
            print(f"REGRESSION: {regressions} new unwaived violation(s)")
        else:
            print("no regressions")
    return 1 if regressions else 0


def cmd_waive(args: argparse.Namespace) -> int:
    """Generate geometry-anchored waivers from a marker database.

    Each selected violation becomes a ``{"rule", "marker"}`` record whose
    ``marker`` is the content digest of the violating geometry — the
    persistent anchor: it survives any edit that does not change the
    violation itself, unlike a region box that drifts when layout moves.
    """
    from .core.markers import save_waivers, waivers_for
    from .geometry import Rect

    report = _load_marker_db(args.markers)
    region = None
    if args.region:
        region = Rect(*args.region)
        if region.is_empty:
            raise SystemExit(f"--region {args.region} must be non-empty")
    records = waivers_for(
        report,
        rules=args.rule or None,
        region=region,
        reason=args.reason,
    )
    save_waivers(records, args.output)
    print(f"wrote {len(records)} waiver(s): {args.output}")
    return 0


def cmd_violations(args: argparse.Namespace) -> int:
    """Filter a marker database like ``GET /sessions/<id>/violations``.

    Runs :func:`repro.reporting.filter_violations_payload` — the exact
    function the serve daemon's ``/violations`` endpoint calls — on a local
    marker database, so local and served filtered listings are
    byte-identical (modulo the served session envelope).
    """
    from .core.markers import report_to_dict
    from .reporting import SEVERITIES, filter_violations_payload

    if args.severity and args.severity not in SEVERITIES:
        raise SystemExit(
            f"--severity must be one of {SEVERITIES}, got {args.severity!r}"
        )
    report = _load_marker_db(args.markers)
    payload = report_to_dict(report)
    known = {entry["rule"] for entry in payload["results"]}
    wanted = set(args.rule or [])
    if wanted and not wanted <= known:
        raise SystemExit(
            f"unknown rule(s): {sorted(wanted - known)}; database rules: "
            f"{sorted(known)}"
        )
    filtered = filter_violations_payload(
        payload,
        severity=args.severity,
        rules=args.rule or None,
        bbox=args.bbox,
        include_waived=not args.no_waived,
    )
    print(json.dumps(filtered, indent=2, sort_keys=True))
    return 0


def _resolve_cache_root(args: argparse.Namespace) -> str:
    from .core.packstore import CACHE_DIR_ENV

    root = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not root:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    return root


def cmd_cache(args: argparse.Namespace) -> int:
    from .core.packstore import PackStore
    from .core.reportcache import ReportCache

    store = PackStore(_resolve_cache_root(args))
    reports = ReportCache(store)
    if args.action == "clear":
        removed = store.clear()
        removed_reports = reports.clear()
        print(
            f"removed {removed} entries from {store.root} "
            f"(pack artifacts + counters) and {removed_reports} cached "
            f"report(s) from {reports.root}"
        )
        return 0
    entries = store.entries()
    totals = store.persisted_counters()
    report_entries = reports.entries()
    print(f"cache: {store.root}")
    print(f"entries: {len(entries)}")
    print(f"bytes: {sum(nbytes for _, nbytes in entries)}")
    print(f"hits: {totals.get('hits', 0)}")
    print(f"misses: {totals.get('misses', 0)}")
    print(f"corrupt: {totals.get('corrupt', 0)}")
    print(f"bytes_read: {totals.get('bytes_read', 0)}")
    print(f"bytes_written: {totals.get('bytes_written', 0)}")
    print(f"report entries: {len(report_entries)}")
    print(f"report bytes: {sum(nbytes for _, nbytes in report_entries)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import ServerState
    from .server.http import serve as run_serve

    state = ServerState(
        options=_engine_options(args),
        deck_path=args.deck,
        report_lru=args.report_lru,
        max_concurrent=args.max_concurrent,
    )
    return run_serve(state, args.host, args.port)


def cmd_stats(args: argparse.Namespace) -> int:
    layout = _read(args.file, args.top)
    stats = compute_stats(layout)
    print(stats.summary())
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    layout = build_design(args.design, args.scale)
    write(gdsii_from_layout(layout), args.out)
    print(f"wrote {args.out}: {compute_stats(layout).summary()}")
    return 0


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=DEFAULT_TASK_TIMEOUT,
        metavar="SECONDS",
        help="per-task wait before a hung/lost worker task is retried "
        f"(multiprocess backend; default {DEFAULT_TASK_TIMEOUT:g}s)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=DEFAULT_MAX_RETRIES,
        metavar="N",
        help="resubmissions per failed/timed-out task before it runs "
        f"in-process instead (default {DEFAULT_MAX_RETRIES})",
    )


def _add_pool_args(parser: argparse.ArgumentParser) -> None:
    warm = parser.add_mutually_exclusive_group()
    warm.add_argument(
        "--warm-pool",
        dest="warm_pool",
        action="store_true",
        default=None,
        help="keep the multiprocess worker pool warm across checks in this "
        "process (default: $REPRO_WARM_POOL, else off)",
    )
    warm.add_argument(
        "--no-warm-pool",
        dest="warm_pool",
        action="store_false",
        help="always spawn and tear down a private pool per check",
    )
    cost = parser.add_mutually_exclusive_group()
    cost.add_argument(
        "--cost-model",
        dest="cost_model",
        action="store_true",
        default=True,
        help="route sub-break-even rules inline and size shards from "
        "calibrated dispatch costs (default)",
    )
    cost.add_argument(
        "--no-cost-model",
        dest="cost_model",
        action="store_false",
        help="disable cost-model routing: every eligible rule uses the pool "
        "with the static shard count",
    )


def _add_format_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=["summary", "csv", "json"],
        default=None,
        help="report output format (default: summary)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="print CSV markers (shorthand for --format csv)",
    )
    parser.add_argument(
        "--expand-instances",
        action="store_true",
        help="CSV: one row per marker instead of collapsing hierarchical "
        "repeats to an exemplar row with an instance count",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start pack store directory (default: $REPRO_CACHE_DIR; "
        "packing artifacts are reused across runs when set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured pack store (pure cold path)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OpenDRC-reproduction design rule checker"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run a rule deck on a GDSII file")
    check.add_argument("file")
    check.add_argument("--deck", help="Python file defining RULES = [...]")
    check.add_argument(
        "--mode",
        choices=["sequential", "parallel", "multiproc"],
        default=None,
        help="execution backend (default: sequential, or multiproc when "
        "--jobs > 1)",
    )
    check.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the multiprocess backend "
        "(default: $REPRO_JOBS or 1)",
    )
    check.add_argument("--top", help="top cell name (default: inferred)")
    check.add_argument(
        "--server",
        metavar="URL",
        help="route the check through a running `repro serve` daemon "
        "(uploads the GDS bytes; --deck then names a server-side file)",
    )
    _add_format_args(check)
    check.add_argument("--output", help="write a JSON marker database")
    check.add_argument("--waivers", help="apply a JSON waiver file before reporting")
    check.add_argument(
        "--breakdown", action="store_true", help="print per-rule phase breakdowns"
    )
    check.add_argument(
        "--no-rows", action="store_true", help="disable the adaptive row partition"
    )
    fuse = check.add_mutually_exclusive_group()
    fuse.add_argument(
        "--fuse-rows",
        dest="fuse_rows",
        action="store_true",
        help="fuse row kernels into segmented launches (default)",
    )
    fuse.add_argument(
        "--no-fuse-rows",
        dest="fuse_rows",
        action="store_false",
        help="launch each row separately (the per-row ablation)",
    )
    check.set_defaults(fuse_rows=True)
    check.add_argument(
        "--num-streams",
        type=int,
        default=2,
        metavar="N",
        help="simulated CUDA streams for async overlap (parallel mode)",
    )
    check.add_argument(
        "--brute-force-threshold",
        type=int,
        default=DEFAULT_BRUTE_FORCE_THRESHOLD,
        metavar="EDGES",
        help="edge count at or below which the brute-force executor runs",
    )
    _add_fault_args(check)
    _add_pool_args(check)
    _add_cache_args(check)
    check.set_defaults(func=cmd_check)

    window = sub.add_parser(
        "check-window", help="incrementally check one window of a GDSII file"
    )
    window.add_argument("file")
    for coord in ("x1", "y1", "x2", "y2"):
        window.add_argument(coord, type=int, help=f"window {coord} (dbu)")
    window.add_argument(
        "--window",
        action="append",
        nargs=4,
        type=int,
        metavar=("X1", "Y1", "X2", "Y2"),
        help="additional window (repeatable; overlapping windows coalesce)",
    )
    window.add_argument("--deck", help="Python file defining RULES = [...]")
    window.add_argument("--top", help="top cell name (default: inferred)")
    window.add_argument(
        "--waivers", help="apply a JSON waiver file before reporting"
    )
    _add_format_args(window)
    window.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the windowed check "
        "(default: $REPRO_JOBS or 1)",
    )
    _add_fault_args(window)
    _add_pool_args(window)
    _add_cache_args(window)
    window.set_defaults(func=cmd_check_window)

    re_check = sub.add_parser(
        "recheck", help="incrementally re-check an edited GDSII file"
    )
    re_check.add_argument("old", help="previous version (the checked baseline)")
    re_check.add_argument("new", help="edited version to re-check")
    re_check.add_argument("--deck", help="Python file defining RULES = [...]")
    re_check.add_argument("--top", help="top cell name (default: inferred)")
    re_check.add_argument(
        "--waivers",
        help="apply a JSON waiver file to the spliced report before "
        "reporting (baselines and caches stay raw)",
    )
    _add_format_args(re_check)
    re_check.add_argument(
        "--verify",
        action="store_true",
        help="also run the cold full check and assert the spliced report "
        "matches byte-for-byte",
    )
    re_check.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for full/cold portions "
        "(default: $REPRO_JOBS or 1)",
    )
    _add_fault_args(re_check)
    _add_pool_args(re_check)
    _add_cache_args(re_check)
    re_check.set_defaults(func=cmd_recheck)

    diff = sub.add_parser(
        "diff",
        help="regression-diff two marker databases (exit 1 on new "
        "unwaived violations)",
    )
    diff.add_argument("old", help="baseline marker database (JSON)")
    diff.add_argument("new", help="new marker database (JSON)")
    diff.add_argument(
        "--format",
        choices=["summary", "json"],
        default=None,
        help="diff output format (default: summary)",
    )
    diff.set_defaults(func=cmd_diff, csv=False)

    waive = sub.add_parser(
        "waive",
        help="generate geometry-anchored waivers from a marker database",
    )
    waive.add_argument("markers", help="marker database (JSON) to waive from")
    waive.add_argument(
        "-o", "--output", required=True, help="waiver file to write (JSON)"
    )
    waive.add_argument(
        "--rule",
        action="append",
        metavar="NAME",
        help="only waive violations of this rule (repeatable; default: all)",
    )
    waive.add_argument(
        "--region",
        nargs=4,
        type=int,
        metavar=("X1", "Y1", "X2", "Y2"),
        help="only waive violations whose marker overlaps this box (dbu)",
    )
    waive.add_argument("--reason", help="free-text reason carried on each record")
    waive.set_defaults(func=cmd_waive)

    violations = sub.add_parser(
        "violations",
        help="filter a marker database like GET /sessions/<id>/violations",
    )
    violations.add_argument("markers", help="marker database (JSON) to filter")
    violations.add_argument(
        "--severity", choices=["error", "warning"], default=None
    )
    violations.add_argument(
        "--rule",
        action="append",
        metavar="NAME",
        help="only this rule's violations (repeatable)",
    )
    violations.add_argument(
        "--bbox",
        nargs=4,
        type=int,
        metavar=("X1", "Y1", "X2", "Y2"),
        help="only violations whose marker overlaps this box (dbu)",
    )
    violations.add_argument(
        "--no-waived",
        action="store_true",
        help="drop waived violations from the listing",
    )
    violations.set_defaults(func=cmd_violations)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent pack store"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir",
        help="pack-store directory (default: $REPRO_CACHE_DIR)",
    )
    cache.set_defaults(func=cmd_cache)

    serve = sub.add_parser(
        "serve", help="run the resident DRC daemon (JSON over HTTP)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8787, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--deck",
        help="default deck for new sessions: a server-side Python file "
        "defining RULES = [...] (default: the ASAP7 benchmark deck)",
    )
    serve.add_argument(
        "--mode",
        choices=["sequential", "parallel", "multiproc"],
        default=None,
        help="execution backend (default: sequential, or multiproc when "
        "--jobs > 1)",
    )
    serve.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the multiprocess backend "
        "(default: $REPRO_JOBS or 1)",
    )
    serve.add_argument(
        "--report-lru",
        type=int,
        default=64,
        metavar="N",
        help="recent reports kept in memory for instant repeats (default 64)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="engine runs admitted concurrently (different sessions only; "
        "default: min(jobs, 2))",
    )
    _add_fault_args(serve)
    _add_pool_args(serve)
    _add_cache_args(serve)
    serve.set_defaults(
        func=cmd_serve,
        no_rows=False,
        num_streams=2,
        brute_force_threshold=DEFAULT_BRUTE_FORCE_THRESHOLD,
        fuse_rows=True,
    )

    stats = sub.add_parser("stats", help="print layout statistics")
    stats.add_argument("file")
    stats.add_argument("--top")
    stats.set_defaults(func=cmd_stats)

    synth = sub.add_parser("synth", help="synthesize a benchmark design")
    synth.add_argument("design", choices=sorted(DESIGN_NAMES))
    synth.add_argument("out")
    synth.add_argument("--scale", choices=["ci", "paper"], default="ci")
    synth.set_defaults(func=cmd_synth)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
