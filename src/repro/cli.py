"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check <file.gds>``
    Run a rule deck on a GDSII file and print the report (optionally CSV
    markers). The default deck is the ASAP7-like benchmark deck; a custom
    deck is any Python file defining ``RULES = [...]`` with DSL rules.
    ``--fuse-rows/--no-fuse-rows``, ``--num-streams``, and
    ``--brute-force-threshold`` expose the parallel backend's knobs.
``check-window <file.gds> <x1> <y1> <x2> <y2>``
    Incremental check: run the deck only on the given window (dbu
    coordinates) through the windowed backend.
``stats <file.gds>``
    Print layout statistics (cells, instances, flat polygons, hierarchy).
``synth <design> <out.gds>``
    Synthesize one of the six benchmark designs to a GDSII file.
``cache stats|clear``
    Inspect or empty the persistent pack store (``--cache-dir`` or
    ``$REPRO_CACHE_DIR``). ``check``/``check-window`` warm-start from the
    same store via ``--cache-dir`` / ``REPRO_CACHE_DIR``; ``--no-cache``
    disables it.
"""

from __future__ import annotations

import argparse
import os
import runpy
import sys
from typing import List, Optional

from .core import DEFAULT_BRUTE_FORCE_THRESHOLD, Engine, EngineOptions
from .core.plan import DEFAULT_MAX_RETRIES, DEFAULT_TASK_TIMEOUT
from .core.rules import Rule
from .gdsii import read_layout, write
from .layout import compute_stats, gdsii_from_layout
from .workloads import DESIGN_NAMES, asap7, build_design


def _load_deck(path: Optional[str]) -> List[Rule]:
    if path is None:
        return asap7.full_deck()
    namespace = runpy.run_path(path)
    rules = namespace.get("RULES")
    if not isinstance(rules, list) or not all(isinstance(r, Rule) for r in rules):
        raise SystemExit(f"{path} must define RULES = [<Rule>, ...]")
    return rules


def _read(path: str, top: Optional[str]):
    layout = read_layout(path)
    if top:
        layout.set_top(top)
    return layout


def _resolve_jobs(args: argparse.Namespace) -> int:
    """--jobs wins; otherwise the REPRO_JOBS env var; otherwise 1."""
    if getattr(args, "jobs", None) is not None:
        jobs, source = args.jobs, "--jobs"
    else:
        env = os.environ.get("REPRO_JOBS")
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise SystemExit(f"REPRO_JOBS must be an integer, got {env!r}") from None
        source = "REPRO_JOBS"
    if jobs < 1:
        raise SystemExit(
            f"{source} must be a positive integer, got {jobs}; "
            "use 1 for in-process execution"
        )
    return jobs


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    jobs = _resolve_jobs(args)
    # No explicit --mode: multiple jobs select the multiprocess backend.
    mode = args.mode or ("multiproc" if jobs > 1 else "sequential")
    try:
        return EngineOptions(
            mode=mode,
            use_rows=not args.no_rows,
            num_streams=args.num_streams,
            brute_force_threshold=args.brute_force_threshold,
            fuse_rows=args.fuse_rows,
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            warm_pool=args.warm_pool,
            cost_model=args.cost_model,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def cmd_check(args: argparse.Namespace) -> int:
    layout = _read(args.file, args.top)
    engine = Engine(options=_engine_options(args))
    report = engine.check(layout, rules=_load_deck(args.deck))
    if args.waivers:
        from .core.markers import apply_waivers, load_waivers

        report = apply_waivers(report, load_waivers(args.waivers))
    if args.output:
        from .core.markers import save_markers

        save_markers(report, args.output)
        print(f"wrote marker database: {args.output}")
    if args.csv:
        print(report.to_csv())
    else:
        print(report.summary())
        if args.breakdown:
            for name, profile in engine.last_profiles.items():
                print(f"\n[{name}]")
                print(profile.breakdown_table())
    return 0 if report.passed else 1


def cmd_check_window(args: argparse.Namespace) -> int:
    from .core import check_window
    from .geometry import Rect

    layout = _read(args.file, args.top)
    window = Rect(args.x1, args.y1, args.x2, args.y2)
    if window.is_empty:
        raise SystemExit("window must be non-empty (x1 <= x2 and y1 <= y2)")
    jobs = _resolve_jobs(args)
    try:
        options = EngineOptions(
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            warm_pool=args.warm_pool,
            cost_model=args.cost_model,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    report = check_window(
        layout, window, rules=_load_deck(args.deck), options=options
    )
    if args.csv:
        print(report.to_csv())
    else:
        print(report.summary())
    return 0 if report.passed else 1


def _resolve_cache_root(args: argparse.Namespace) -> str:
    from .core.packstore import CACHE_DIR_ENV

    root = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if not root:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    return root


def cmd_cache(args: argparse.Namespace) -> int:
    from .core.packstore import PackStore

    store = PackStore(_resolve_cache_root(args))
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    entries = store.entries()
    totals = store.persisted_counters()
    print(f"cache: {store.root}")
    print(f"entries: {len(entries)}")
    print(f"bytes: {sum(nbytes for _, nbytes in entries)}")
    print(f"hits: {totals.get('hits', 0)}")
    print(f"misses: {totals.get('misses', 0)}")
    print(f"corrupt: {totals.get('corrupt', 0)}")
    print(f"bytes_read: {totals.get('bytes_read', 0)}")
    print(f"bytes_written: {totals.get('bytes_written', 0)}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    layout = _read(args.file, args.top)
    stats = compute_stats(layout)
    print(stats.summary())
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    layout = build_design(args.design, args.scale)
    write(gdsii_from_layout(layout), args.out)
    print(f"wrote {args.out}: {compute_stats(layout).summary()}")
    return 0


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=DEFAULT_TASK_TIMEOUT,
        metavar="SECONDS",
        help="per-task wait before a hung/lost worker task is retried "
        f"(multiprocess backend; default {DEFAULT_TASK_TIMEOUT:g}s)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=DEFAULT_MAX_RETRIES,
        metavar="N",
        help="resubmissions per failed/timed-out task before it runs "
        f"in-process instead (default {DEFAULT_MAX_RETRIES})",
    )


def _add_pool_args(parser: argparse.ArgumentParser) -> None:
    warm = parser.add_mutually_exclusive_group()
    warm.add_argument(
        "--warm-pool",
        dest="warm_pool",
        action="store_true",
        default=None,
        help="keep the multiprocess worker pool warm across checks in this "
        "process (default: $REPRO_WARM_POOL, else off)",
    )
    warm.add_argument(
        "--no-warm-pool",
        dest="warm_pool",
        action="store_false",
        help="always spawn and tear down a private pool per check",
    )
    cost = parser.add_mutually_exclusive_group()
    cost.add_argument(
        "--cost-model",
        dest="cost_model",
        action="store_true",
        default=True,
        help="route sub-break-even rules inline and size shards from "
        "calibrated dispatch costs (default)",
    )
    cost.add_argument(
        "--no-cost-model",
        dest="cost_model",
        action="store_false",
        help="disable cost-model routing: every eligible rule uses the pool "
        "with the static shard count",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-start pack store directory (default: $REPRO_CACHE_DIR; "
        "packing artifacts are reused across runs when set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured pack store (pure cold path)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OpenDRC-reproduction design rule checker"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run a rule deck on a GDSII file")
    check.add_argument("file")
    check.add_argument("--deck", help="Python file defining RULES = [...]")
    check.add_argument(
        "--mode",
        choices=["sequential", "parallel", "multiproc"],
        default=None,
        help="execution backend (default: sequential, or multiproc when "
        "--jobs > 1)",
    )
    check.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the multiprocess backend "
        "(default: $REPRO_JOBS or 1)",
    )
    check.add_argument("--top", help="top cell name (default: inferred)")
    check.add_argument("--csv", action="store_true", help="print CSV markers")
    check.add_argument("--output", help="write a JSON marker database")
    check.add_argument("--waivers", help="apply a JSON waiver file before reporting")
    check.add_argument(
        "--breakdown", action="store_true", help="print per-rule phase breakdowns"
    )
    check.add_argument(
        "--no-rows", action="store_true", help="disable the adaptive row partition"
    )
    fuse = check.add_mutually_exclusive_group()
    fuse.add_argument(
        "--fuse-rows",
        dest="fuse_rows",
        action="store_true",
        help="fuse row kernels into segmented launches (default)",
    )
    fuse.add_argument(
        "--no-fuse-rows",
        dest="fuse_rows",
        action="store_false",
        help="launch each row separately (the per-row ablation)",
    )
    check.set_defaults(fuse_rows=True)
    check.add_argument(
        "--num-streams",
        type=int,
        default=2,
        metavar="N",
        help="simulated CUDA streams for async overlap (parallel mode)",
    )
    check.add_argument(
        "--brute-force-threshold",
        type=int,
        default=DEFAULT_BRUTE_FORCE_THRESHOLD,
        metavar="EDGES",
        help="edge count at or below which the brute-force executor runs",
    )
    _add_fault_args(check)
    _add_pool_args(check)
    _add_cache_args(check)
    check.set_defaults(func=cmd_check)

    window = sub.add_parser(
        "check-window", help="incrementally check one window of a GDSII file"
    )
    window.add_argument("file")
    for coord in ("x1", "y1", "x2", "y2"):
        window.add_argument(coord, type=int, help=f"window {coord} (dbu)")
    window.add_argument("--deck", help="Python file defining RULES = [...]")
    window.add_argument("--top", help="top cell name (default: inferred)")
    window.add_argument("--csv", action="store_true", help="print CSV markers")
    window.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the windowed check "
        "(default: $REPRO_JOBS or 1)",
    )
    _add_fault_args(window)
    _add_pool_args(window)
    _add_cache_args(window)
    window.set_defaults(func=cmd_check_window)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent pack store"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir",
        help="pack-store directory (default: $REPRO_CACHE_DIR)",
    )
    cache.set_defaults(func=cmd_cache)

    stats = sub.add_parser("stats", help="print layout statistics")
    stats.add_argument("file")
    stats.add_argument("--top")
    stats.set_defaults(func=cmd_stats)

    synth = sub.add_parser("synth", help="synthesize a benchmark design")
    synth.add_argument("design", choices=sorted(DESIGN_NAMES))
    synth.add_argument("out")
    synth.add_argument("--scale", choices=["ci", "paper"], default="ci")
    synth.set_defaults(func=cmd_synth)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
