"""DRC-as-a-service: the HTTP-free service core.

PRs 4-7 made the engine expensive to warm and cheap to reuse — the
content-addressed pack store, persistent warm worker pools, the calibrated
cost model, and the report cache all pay off only on the *second* check of
a process. A one-shot ``repro check`` throws that state away every time.
:class:`ServerState` is the resident counterpart: one warm
:class:`~repro.core.engine.Engine` serving many requests, so every piece of
warm state survives for the life of the daemon.

Three mechanisms turn the warm engine into served throughput:

* **Sessions** — clients load a layout (and optionally a deck) once via
  :meth:`create_session`; the session keeps the parsed layout, its
  hierarchy tree, the rule deck, and the per-layer geometry digests, so a
  check request never re-parses or re-walks anything. Sessions are
  content-addressed by the deck digest plus the layer digests — loading the
  same layout twice (from any client) lands on the same session.

* **Single-flight coalescing** — concurrent identical requests (same deck
  digest, layer digests, engine options, and window set) collapse into one
  engine run whose report fans out to every waiter
  (:class:`SingleFlight`); an LRU of recent reports answers repeats without
  touching the engine at all.

* **Three-tier admission** — engine runs pass through an
  :class:`AdmissionScheduler` instead of a global engine lock. Tier 1:
  pure cache paths (report-LRU hits, coalesced followers, and splice-only
  rechecks whose new content is digest-identical to the session's current
  version) execute immediately and never enter the queue. Tier 2:
  compute-bound requests from *different* sessions run concurrently up to
  ``max_concurrent`` (default ``min(jobs, 2)``), each inside a re-entrant
  :class:`~repro.core.engine.CheckContext`, sharing one warm worker pool,
  pack store, and cost model; requests for the *same* session serialize
  (they would mutate the same baseline). Tier 3: the shared pool is
  multiplexed fairly across the admitted requests (round-robin shard
  dispatch), and a request whose previous run was cheaper than a few pool
  round trips is routed inline — re-run with ``jobs=1`` in its own handler
  thread so it never contends for workers. The number of threads parked in
  admission is the ``queue_depth`` gauge; ``active_requests`` and the
  ``max_active_seen`` high-water mark sit next to it in :meth:`stats`.

* **Structured responses** — reports serialize through the same
  :meth:`~repro.core.results.CheckReport.to_json` schema the CLI prints,
  so served violation output is byte-identical to a local ``repro check``.

The HTTP layer (:mod:`repro.server.http`) is a thin shell over this class;
tests drive :class:`ServerState` directly.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import runpy
import statistics
import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..gdsii import read_layout
from ..gdsii.reader import read_bytes
from ..geometry import Rect
from ..hierarchy.tree import HierarchyTree
from ..layout.builder import layout_from_gdsii
from ..layout.library import Layout
from ..core import costmodel
from ..core.engine import Engine, EngineOptions
from ..core.packstore import layer_geometry_digest, resolve_store, store_key
from ..core.reportcache import deck_digest
from ..core.results import CheckReport, merge_stats
from ..core.rules import SEVERITIES, Rule
from ..reporting import filter_violations_payload

__all__ = [
    "AdmissionScheduler",
    "BadRequestError",
    "ServeError",
    "ServerState",
    "Session",
    "SingleFlight",
    "UnknownSessionError",
    "load_deck_file",
]

#: Reports the server remembers for instant repeats (per-state default).
DEFAULT_REPORT_LRU = 64

#: Request latencies kept per endpoint for the /stats percentiles.
_LATENCY_WINDOW = 512

#: Inline-routing threshold: a session whose previous engine run finished
#: within this many pool dispatch round trips is cheaper to re-run with
#: ``jobs=1`` in its handler thread than to contend with other admitted
#: requests for the shared workers. Priced by the cost model's measured
#: dispatch overhead, so a fast pool raises the bar and a slow one lowers it.
INLINE_OVERHEAD_MULTIPLE = 50.0


class ServeError(ReproError):
    """A request the service must reject; carries an HTTP status."""

    status = 400


class BadRequestError(ServeError):
    """Malformed request payload or parameters."""

    status = 400


class UnknownSessionError(ServeError):
    """The named session does not exist (or was unloaded)."""

    status = 404


def load_deck_file(path: str) -> List[Rule]:
    """Load ``RULES = [...]`` from a Python deck file (server-side path)."""
    namespace = runpy.run_path(path)
    rules = namespace.get("RULES")
    if not isinstance(rules, list) or not all(isinstance(r, Rule) for r in rules):
        raise BadRequestError(f"{path} must define RULES = [<Rule>, ...]")
    return rules


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _default_deck() -> List[Rule]:
    from ..workloads import asap7

    return asap7.full_deck()


def _int_coords(coords: Sequence[Any], what: str) -> List[int]:
    """Validate ``[x1, y1, x2, y2]``-style coordinates as exact integers.

    Rejects non-numeric values and non-integral floats with a 400 rather
    than letting ``int()`` raise (a 500) or truncate silently.
    """
    out: List[int] = []
    for c in coords:
        try:
            value = int(c)
        except (TypeError, ValueError):
            raise BadRequestError(
                f"{what} coordinates must be integers, got {list(coords)!r}"
            ) from None
        if value != c:
            raise BadRequestError(
                f"{what} coordinate {c!r} is not an integer"
            )
        out.append(value)
    return out


# ---------------------------------------------------------------------------
# Single-flight request coalescing
# ---------------------------------------------------------------------------


class _Call:
    """One in-flight computation: the leader fills it, followers wait."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Collapse concurrent calls with the same key into one execution.

    The first caller of a key becomes the *leader* and runs ``fn``; callers
    arriving while the leader is still running become *followers* and block
    until the leader's result (or exception) fans out to them. The key is
    retired before the event fires, so a request arriving after completion
    starts a fresh flight — coalescing never serves a stale computation,
    only the one that was genuinely concurrent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Call] = {}

    def do(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent key; returns ``(value, leader)``."""
        with self._lock:
            call = self._inflight.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._inflight[key] = call
        if leader:
            try:
                call.result = fn()
            except BaseException as error:
                call.error = error
            finally:
                # Retire the key *before* waking followers so no new caller
                # can attach to a completed flight.
                with self._lock:
                    self._inflight.pop(key, None)
                call.event.set()
        else:
            call.event.wait()
        if call.error is not None:
            raise call.error
        return call.result, leader

    def waiting(self, key: str) -> bool:
        """True while a flight for ``key`` is in progress (tests/metrics)."""
        with self._lock:
            return key in self._inflight


# ---------------------------------------------------------------------------
# Admission scheduling (the engine-lock replacement)
# ---------------------------------------------------------------------------


class AdmissionScheduler:
    """Bounded concurrent admission of engine runs, one run per session.

    The PR 8 daemon serialized every engine run behind one lock; this
    scheduler is its replacement. ``admit(sid)`` blocks until both hold:

    * fewer than ``max_concurrent`` runs are active (the warm pool, pack
      store, and cost model are shared — bounding concurrency bounds their
      contention and the parent-side memory footprint), and
    * no other run for the *same* session is active — same-session requests
      mutate one baseline (``last_report``, recheck version advances), so
      they serialize; cross-session requests are independent and overlap.

    Waiters are counted (``waiting`` is the ``queue_depth`` gauge, honest
    even when a wait is interrupted) and the ``max_active_seen`` high-water
    mark records whether concurrency actually happened — the CI smoke job
    asserts it exceeded 1 on multi-core runners.
    """

    def __init__(self, max_concurrent: int) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be a positive integer, got {max_concurrent}"
            )
        self.max_concurrent = max_concurrent
        self._cond = threading.Condition()
        self._active_sids: set = set()
        self._active = 0
        self.waiting = 0
        self.max_active_seen = 0

    @property
    def active(self) -> int:
        """How many engine runs are executing right now."""
        with self._cond:
            return self._active

    @contextlib.contextmanager
    def admit(self, sid: str) -> Iterator[None]:
        with self._cond:
            self.waiting += 1
            try:
                while (
                    self._active >= self.max_concurrent
                    or sid in self._active_sids
                ):
                    self._cond.wait()
            finally:
                # Decrement on the way out even if the wait was interrupted
                # (KeyboardInterrupt in a test): the gauge stays honest.
                self.waiting -= 1
            self._active += 1
            self._active_sids.add(sid)
            if self._active > self.max_active_seen:
                self.max_active_seen = self._active
        try:
            yield
        finally:
            with self._cond:
                self._active -= 1
                self._active_sids.discard(sid)
                self._cond.notify_all()


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class Session:
    """One loaded layout + deck, with everything a check needs pre-warmed."""

    def __init__(
        self,
        sid: str,
        layout: Layout,
        tree: HierarchyTree,
        rules: List[Rule],
        digests: Dict[int, str],
        deck_dig: Optional[str],
        *,
        top: Optional[str] = None,
        deck_path: Optional[str] = None,
    ) -> None:
        self.sid = sid
        self.layout = layout
        self.tree = tree
        #: The session's deck, severities included — severity is a Rule
        #: field (PR 10), not per-session state, so /violations and a local
        #: ``repro check`` of the same deck read the same value.
        self.rules = rules
        self.digests = digests
        self.deck_dig = deck_dig
        self.top = top
        self.deck_path = deck_path
        self.version = 1
        self.checks = 0
        self.created = time.time()
        self.last_report: Optional[CheckReport] = None
        self.last_recheck: Optional[Dict[str, Any]] = None
        #: Wall seconds of this session's previous admitted engine run;
        #: the inline-routing tier prices the next one against it.
        self.last_engine_seconds: Optional[float] = None

    def info(self) -> Dict[str, Any]:
        return {
            "session": self.sid,
            "layout": self.layout.name,
            "top": self.tree.top.name,
            "layers": sorted(self.digests),
            "rules": [rule.name for rule in self.rules],
            "severities": {rule.name: rule.severity for rule in self.rules},
            "coalescable": self.deck_dig is not None,
            "version": self.version,
            "checks": self.checks,
            "last_total_violations": (
                None
                if self.last_report is None
                else self.last_report.total_violations
            ),
        }


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ServerState:
    """A resident engine plus sessions, coalescing, and counters.

    Thread-safe: HTTP handler threads (or test threads) call the public
    methods concurrently. ``_lock`` guards the bookkeeping (sessions, LRU,
    counters — every counter update happens under it, so concurrent
    handlers never lose an increment); the :class:`AdmissionScheduler`
    bounds how many engine runs execute at once and keeps same-session
    runs serial. ``max_concurrent=None`` defaults to ``min(jobs, 2)`` —
    past that the shared pool is the bottleneck, not admission.
    """

    def __init__(
        self,
        options: Optional[EngineOptions] = None,
        *,
        deck_path: Optional[str] = None,
        report_lru: int = DEFAULT_REPORT_LRU,
        max_concurrent: Optional[int] = None,
    ) -> None:
        self.engine = Engine(options=options)
        if max_concurrent is None:
            max_concurrent = min(max(1, self.engine.options.jobs), 2)
        self.scheduler = AdmissionScheduler(max_concurrent)
        self.deck_path = deck_path
        self._decks: Dict[str, List[Rule]] = {}
        self._lock = threading.Lock()
        self._flight = SingleFlight()
        self._sessions: Dict[str, Session] = {}
        self._by_bytes: Dict[Tuple, str] = {}
        self._lru: "OrderedDict[str, CheckReport]" = OrderedDict()
        self._lru_cap = max(0, report_lru)
        self._latencies: Dict[str, deque] = {}
        self._endpoint_requests: Dict[str, int] = {}
        self.engine_stats: Dict[str, float] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "engine_runs": 0,
            "coalesced": 0,
            "report_lru_hits": 0,
            "admission_bypassed": 0,
            "inline_routed": 0,
            "sessions_created": 0,
            "sessions_reused": 0,
        }
        self.started = time.time()
        self.closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the warm engine (pools, cost model persistence); idempotent."""
        if self.closed:
            return
        self.closed = True
        self.engine.close()

    def __enter__(self) -> "ServerState":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- deck resolution -----------------------------------------------------

    @staticmethod
    def _apply_severities(
        rules: List[Rule],
        severities: Optional[Dict[str, str]],
        default_severity: Optional[str],
    ) -> List[Rule]:
        """The deck with request-level severity overrides applied onto rules.

        ``severities`` must name rules that exist in the deck (a typo would
        otherwise be silently ignored — the override would appear accepted
        but never apply). Returns the input list unchanged when there is
        nothing to override, so the common no-override path shares the
        cached deck objects (and their digest work).
        """
        overrides = dict(severities or {})
        unknown = sorted(set(overrides) - {rule.name for rule in rules})
        if unknown:
            raise BadRequestError(
                f"unknown rule(s) in severities: {unknown}; deck rules: "
                f"{sorted(rule.name for rule in rules)}"
            )
        if not overrides and default_severity is None:
            return rules
        return [
            rule.with_severity(
                overrides.get(rule.name, default_severity or rule.severity)
            )
            for rule in rules
        ]

    def _resolve_deck(self, deck_path: Optional[str]) -> List[Rule]:
        path = deck_path or self.deck_path
        if path is None:
            if "" not in self._decks:
                self._decks[""] = _default_deck()
            return self._decks[""]
        if path not in self._decks:
            self._decks[path] = load_deck_file(path)
        return self._decks[path]

    # -- sessions ------------------------------------------------------------

    @staticmethod
    def _parse_layout(
        path: Optional[str], data: Optional[bytes], top: Optional[str]
    ) -> Layout:
        if (path is None) == (data is None):
            raise BadRequestError("provide exactly one of a GDS path or GDS bytes")
        try:
            layout = (
                read_layout(path) if path is not None else layout_from_gdsii(read_bytes(data))
            )
            if top:
                layout.set_top(top)
        except ReproError as error:
            raise BadRequestError(f"cannot load layout: {error}") from error
        except OSError as error:
            raise BadRequestError(f"cannot read layout file: {error}") from error
        return layout

    def create_session(
        self,
        *,
        path: Optional[str] = None,
        data: Optional[bytes] = None,
        top: Optional[str] = None,
        deck: Optional[str] = None,
        severities: Optional[Dict[str, str]] = None,
        default_severity: Optional[str] = None,
    ) -> Tuple[Session, bool]:
        """Load (or re-attach to) a session; returns ``(session, created)``.

        Sessions are content-addressed: the id hashes the deck digest and
        the per-layer geometry digests, so posting the same layout + deck
        again — from any client — returns the existing warm session. Raw
        uploads are additionally memoised by their byte hash, so a repeat
        upload skips even the GDSII parse. Decks whose predicates cannot be
        fingerprinted get a random id and are excluded from coalescing
        (honest, never wrong).

        ``severities``/``default_severity`` override the deck's own per-rule
        severities: the overrides are applied onto the :class:`Rule` objects
        themselves (severity is a core Rule field), so the deck digest — and
        therefore the session id and every report/coalescing key — reflects
        them, and two clients loading the same layout with different
        severity maps land on different sessions instead of silently
        mutating each other's.
        """
        if default_severity is not None and default_severity not in SEVERITIES:
            raise BadRequestError(
                f"default_severity must be one of {SEVERITIES}, got {default_severity!r}"
            )
        for name, sev in (severities or {}).items():
            if sev not in SEVERITIES:
                raise BadRequestError(
                    f"severity of rule {name!r} must be one of {SEVERITIES}, got {sev!r}"
                )
        severity_fp = (
            default_severity or "",
            tuple(sorted((severities or {}).items())),
        )
        bytes_key = None
        if data is not None:
            bytes_key = (
                hashlib.sha256(data).hexdigest(),
                top or "",
                deck or "",
                severity_fp,
            )
            with self._lock:
                sid = self._by_bytes.get(bytes_key)
                session = self._sessions.get(sid) if sid else None
            if session is not None:
                return self._reuse(session)

        rules = self._apply_severities(
            self._resolve_deck(deck), severities, default_severity
        )
        layout = self._parse_layout(path, data, top)
        tree = HierarchyTree(layout)
        digests = {
            layer: layer_geometry_digest(tree, layer) for layer in layout.layers()
        }
        deck_dig = deck_digest(rules)
        if deck_dig is None:
            sid = uuid.uuid4().hex[:16]
        else:
            sid = store_key(
                "session", deck_dig, tuple(sorted(digests.items())), top or ""
            )[:16]

        with self._lock:
            existing = self._sessions.get(sid)
            if existing is None:
                session = Session(
                    sid,
                    layout,
                    tree,
                    rules,
                    digests,
                    deck_dig,
                    top=top,
                    deck_path=deck or self.deck_path,
                )
                self._sessions[sid] = session
                self.counters["sessions_created"] += 1
                if bytes_key is not None:
                    self._by_bytes[bytes_key] = sid
                return session, True
            if bytes_key is not None:
                self._by_bytes[bytes_key] = sid
        return self._reuse(existing)

    def _reuse(self, session: Session) -> Tuple[Session, bool]:
        with self._lock:
            self.counters["sessions_reused"] += 1
        return session, False

    def session(self, sid: str) -> Session:
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise UnknownSessionError(f"unknown session {sid!r}")
        return session

    def sessions(self) -> List[Dict[str, Any]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.info() for s in sorted(sessions, key=lambda s: s.created)]

    def delete_session(self, sid: str) -> None:
        with self._lock:
            if sid not in self._sessions:
                raise UnknownSessionError(f"unknown session {sid!r}")
            del self._sessions[sid]
            self._by_bytes = {k: v for k, v in self._by_bytes.items() if v != sid}

    # -- the request pipeline ------------------------------------------------

    def _request_key(
        self, session: Session, endpoint: str, extra: Tuple = ()
    ) -> Optional[str]:
        """Coalescing identity of one request; None disables coalescing."""
        if session.deck_dig is None:
            return None
        return store_key(
            "serve",
            endpoint,
            session.deck_dig,
            tuple(sorted(session.digests.items())),
            repr(self.engine.options),
            extra,
        )

    def _run(
        self,
        runner: Callable[[], CheckReport],
        session: Session,
        *,
        bypass: bool = False,
    ) -> CheckReport:
        """One engine run through admission (or past it, for cache tiers).

        ``bypass=True`` is the tier-1 path: the runner is known to touch no
        engine compute (a splice-only recheck of digest-identical content),
        so it executes immediately without occupying an admission slot —
        and without counting as an ``engine_runs``; the ``admission_bypassed``
        counter records it instead.
        """
        if bypass:
            with self._lock:
                self.counters["admission_bypassed"] += 1
            report = runner()
        else:
            with self.scheduler.admit(session.sid):
                with self._lock:
                    self.counters["engine_runs"] += 1
                start = time.perf_counter()
                report = runner()
                engine_seconds = time.perf_counter() - start
                with self._lock:
                    session.last_engine_seconds = engine_seconds
        with self._lock:
            self.engine_stats = merge_stats(
                [self.engine_stats] + [r.stats for r in report.results]
            )
        return report

    def _serve(
        self,
        endpoint: str,
        session: Session,
        key_extra: Tuple,
        runner: Callable[[], CheckReport],
        *,
        use_lru: bool = True,
        record_report: bool = True,
        bypass: bool = False,
    ) -> Tuple[CheckReport, Dict[str, Any]]:
        start = time.perf_counter()
        with self._lock:
            self.counters["requests"] += 1
            self._endpoint_requests[endpoint] = (
                self._endpoint_requests.get(endpoint, 0) + 1
            )
        key = self._request_key(session, endpoint, key_extra)
        meta: Dict[str, Any] = {
            "endpoint": endpoint,
            "session": session.sid,
            "source": "engine",
        }
        report: Optional[CheckReport] = None
        if key is not None and use_lru and self._lru_cap:
            with self._lock:
                report = self._lru.get(key)
                if report is not None:
                    self._lru.move_to_end(key)
                    self.counters["report_lru_hits"] += 1
                    meta["source"] = "report-lru"
        if report is None:
            if key is None:
                report = self._run(runner, session, bypass=bypass)
            else:
                report, leader = self._flight.do(
                    key, lambda: self._run(runner, session, bypass=bypass)
                )
                if leader:
                    if use_lru and self._lru_cap:
                        with self._lock:
                            self._lru[key] = report
                            self._lru.move_to_end(key)
                            while len(self._lru) > self._lru_cap:
                                self._lru.popitem(last=False)
                else:
                    with self._lock:
                        self.counters["coalesced"] += 1
                    meta["source"] = "coalesced"
        seconds = time.perf_counter() - start
        meta["seconds"] = seconds
        with self._lock:
            session.checks += 1
            if record_report:
                # Only full-extent, full-deck reports may become the session
                # baseline: recheck() splices against last_report and
                # /violations serves it verbatim, so a report clipped to
                # windows would silently drop everything outside them.
                session.last_report = report
            self._latencies.setdefault(endpoint, deque(maxlen=_LATENCY_WINDOW)).append(
                seconds
            )
        return report, meta

    def _inline_route(self, session: Session) -> Optional[EngineOptions]:
        """Tier-3 routing: should this run skip the shared pool entirely?

        A multiprocess engine run whose previous execution for this session
        finished within :data:`INLINE_OVERHEAD_MULTIPLE` pool dispatch round
        trips is cheaper to re-run in-process (``jobs=1``, which degrades
        the multiprocess backend to the fused in-process path — identical
        output) than to queue its shards behind other admitted requests.
        Only engages while another request is actually active; a lone
        request always gets the full pool.
        """
        options = self.engine.options
        if options.jobs <= 1 or self.scheduler.active <= 1:
            return None
        last = session.last_engine_seconds
        if last is None:
            return None
        overhead = costmodel.model_for(resolve_store(options)).overhead()
        if last > overhead * INLINE_OVERHEAD_MULTIPLE:
            return None
        return dataclasses.replace(options, jobs=1)

    # -- endpoints -----------------------------------------------------------

    def check(self, sid: str) -> Tuple[CheckReport, Dict[str, Any]]:
        """Run the session's full deck (coalesced, LRU-answered)."""
        session = self.session(sid)
        routing: Dict[str, Any] = {}

        def runner() -> CheckReport:
            options = self._inline_route(session)
            if options is not None:
                with self._lock:
                    self.counters["inline_routed"] += 1
                routing["routing"] = "inline"
                return self.engine.check(
                    session.layout,
                    rules=session.rules,
                    tree=session.tree,
                    options=options,
                )
            return self.engine.check(
                session.layout, rules=session.rules, tree=session.tree
            )

        report, meta = self._serve("check", session, (), runner)
        meta.update(routing)
        return report, meta

    def check_window(
        self, sid: str, windows: Sequence[Sequence[int]]
    ) -> Tuple[CheckReport, Dict[str, Any]]:
        """Run the deck on one or more windows of the session's layout.

        The resulting report is clipped to the windows, so it is *not*
        recorded as the session's ``last_report`` — the recheck splice
        baseline and ``/violations`` only ever see full-extent reports.
        """
        from ..core.incremental import check_window as run_window

        session = self.session(sid)
        rects = []
        for coords in windows:
            if len(coords) != 4:
                raise BadRequestError(
                    f"window must be [x1, y1, x2, y2], got {list(coords)!r}"
                )
            rect = Rect(*_int_coords(coords, "window"))
            if rect.is_empty:
                raise BadRequestError(f"window {rect} must be non-empty")
            rects.append(rect)
        if not rects:
            raise BadRequestError("check-window needs at least one window")

        def runner() -> CheckReport:
            return run_window(
                session.layout,
                rects,
                rules=session.rules,
                options=self.engine.options,
                tree=session.tree,
            )

        key_extra = tuple((r.xlo, r.ylo, r.xhi, r.yhi) for r in rects)
        return self._serve(
            "check-window", session, key_extra, runner, record_report=False
        )

    def recheck(
        self,
        sid: str,
        *,
        path: Optional[str] = None,
        data: Optional[bytes] = None,
        top: Optional[str] = None,
        verify: bool = False,
    ) -> Tuple[CheckReport, Dict[str, Any]]:
        """Diff a new layout version against the session's current one.

        The session's last report is the splice baseline (falling back to
        the persistent report cache, then to a cold check); on success the
        session advances to the new version, so chained edits keep
        rechecking incrementally. Concurrent identical rechecks (same new
        content) coalesce into one diff+splice.
        """
        from ..core.incremental import recheck as run_recheck

        session = self.session(sid)
        new_layout = self._parse_layout(path, data, top or session.top)
        new_tree = HierarchyTree(new_layout)
        new_digests = {
            layer: layer_geometry_digest(new_tree, layer)
            for layer in new_layout.layers()
        }

        def runner() -> CheckReport:
            outcome = run_recheck(
                session.layout,
                new_layout,
                rules=session.rules,
                options=self.engine.options,
                cached=session.last_report,
                verify=verify,
            )
            with self._lock:
                session.layout = new_layout
                session.tree = new_tree
                session.digests = new_digests
                session.version += 1
                session.last_recheck = {
                    "disposition": dict(outcome.disposition),
                    "cache_hit": outcome.cache_hit,
                    "clean": outcome.diff.is_clean,
                    "full": bool(outcome.diff.full),
                }
            return outcome.report

        # Tier-1 bypass: the new content is digest-identical to the session's
        # current version and a baseline exists, so the runner is a pure
        # splice (clean diff, zero re-checked windows) — no engine compute,
        # no reason to occupy an admission slot. ``verify`` disables the
        # bypass because verification *is* a full cold check.
        bypass = (
            not verify
            and session.last_report is not None
            and new_digests == session.digests
        )
        key_extra = ("recheck", tuple(sorted(new_digests.items())), bool(verify))
        report, meta = self._serve(
            "recheck", session, key_extra, runner, use_lru=False, bypass=bypass
        )
        if session.last_recheck is not None:
            meta["recheck"] = dict(session.last_recheck)
        return report, meta

    def violations(
        self,
        sid: str,
        *,
        severity: Optional[str] = None,
        rules: Optional[Sequence[str]] = None,
        bbox: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """The session's violations, filtered by severity/rule/bbox.

        Serves from the session's last report; a session that has never
        been checked is checked first (which itself coalesces/LRU-hits).
        Filtering delegates to
        :func:`repro.reporting.filter_violations_payload` — the same code
        path the local ``repro violations`` command runs on a marker
        database, so served and local listings are byte-identical.
        """
        if severity is not None and severity not in SEVERITIES:
            raise BadRequestError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        box = None
        if bbox is not None:
            if len(bbox) != 4:
                raise BadRequestError("bbox must be x1,y1,x2,y2")
            box = Rect(*_int_coords(bbox, "bbox"))
            if box.is_empty:
                raise BadRequestError(f"bbox {box} must be non-empty")
        wanted = set(rules) if rules else None

        session = self.session(sid)
        report = session.last_report
        if report is None:
            report, _ = self.check(sid)
        known = {result.rule.name for result in report.results}
        if wanted is not None and not wanted <= known:
            raise BadRequestError(
                f"unknown rule(s): {sorted(wanted - known)}; session rules: "
                f"{sorted(known)}"
            )
        filtered = filter_violations_payload(
            report.payload(),
            severity=severity,
            rules=rules,
            bbox=None if box is None else [box.xlo, box.ylo, box.xhi, box.yhi],
        )
        return {
            "session": session.sid,
            "layout": report.layout_name,
            "version": session.version,
            "total": filtered["total"],
            "violations": filtered["violations"],
        }

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Engine + service counters (the /stats payload).

        Per-endpoint latency comes from a sliding window of the most recent
        :data:`_LATENCY_WINDOW` requests (``count`` is the window's fill,
        ``requests`` the all-time total); p50/p95/p99 interpolate linearly
        within that window. The concurrency gauges read the admission
        scheduler: ``queue_depth`` is threads parked waiting for a slot,
        ``active_requests`` is engine runs executing right now, and
        ``max_active_seen`` is the high-water mark — the CI concurrency
        smoke asserts it exceeded 1 on multi-core runners.
        """
        active = self.scheduler.active
        with self._lock:
            latency = {}
            for endpoint, window in self._latencies.items():
                values = sorted(window)
                latency[endpoint] = {
                    "count": len(values),
                    "requests": self._endpoint_requests.get(endpoint, 0),
                    "p50_ms": round(statistics.median(values) * 1e3, 3),
                    "p95_ms": round(_percentile(values, 0.95) * 1e3, 3),
                    "p99_ms": round(_percentile(values, 0.99) * 1e3, 3),
                    "max_ms": round(max(values) * 1e3, 3),
                }
            options = self.engine.options
            return {
                "uptime_seconds": round(time.time() - self.started, 3),
                "sessions": len(self._sessions),
                "queue_depth": self.scheduler.waiting,
                "active_requests": active,
                "max_concurrent": self.scheduler.max_concurrent,
                "max_active_seen": self.scheduler.max_active_seen,
                "report_lru_size": len(self._lru),
                "report_lru_capacity": self._lru_cap,
                "counters": dict(self.counters),
                "engine": {k: self.engine_stats[k] for k in sorted(self.engine_stats)},
                "options": {
                    "mode": options.mode,
                    "jobs": options.jobs,
                    "warm_pool": options.warm_pool,
                    "cost_model": options.cost_model,
                    "cache_dir": options.cache_dir,
                },
                "latency": latency,
            }


def report_payload(report: CheckReport, meta: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON body of a served check: the canonical report + request meta.

    The ``report`` member round-trips through
    :meth:`~repro.core.results.CheckReport.to_json`, so a client re-dumping
    it with ``json.dumps(obj, indent=2, sort_keys=True)`` reproduces the
    local CLI's ``--format json`` output byte for byte (modulo the measured
    seconds, which are honest wall times of whichever side ran the check).
    """
    return {"report": json.loads(report.to_json(indent=None)), "meta": meta}
