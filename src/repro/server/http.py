"""The HTTP shell around :class:`~repro.server.state.ServerState`.

Plain stdlib: a :class:`http.server.ThreadingHTTPServer` whose handler
routes JSON-over-HTTP requests into the service core. No framework, no new
dependencies — the serving shape of the KiCad-MCP DRC tools with the
transport stripped to what the standard library provides. Handler threads
run truly concurrently: engine runs pass through the service core's
:class:`~repro.server.state.AdmissionScheduler` (bounded cross-session
concurrency) rather than a global engine lock, so one slow check no longer
stalls every other session's requests.

Endpoints
---------

====== ================================== ======================================
GET    ``/health``                        liveness probe
GET    ``/stats``                         engine + queue + coalescing counters
GET    ``/sessions``                      list loaded sessions
POST   ``/sessions``                      load a layout (GDS bytes or JSON path)
GET    ``/sessions/<id>``                 session info
DELETE ``/sessions/<id>``                 unload a session
POST   ``/sessions/<id>/check``           run the deck (coalesced)
POST   ``/sessions/<id>/check-window``    run the deck on windows
POST   ``/sessions/<id>/recheck``         diff + splice a new layout version
GET    ``/sessions/<id>/violations``      filter by severity / rule / bbox
POST   ``/shutdown``                      drain in-flight requests and exit
====== ================================== ======================================

``POST /sessions`` accepts either a raw GDSII stream body
(``Content-Type: application/octet-stream``, options in the query string:
``?top=...&deck=...``) or a JSON body ``{"path": ..., "top": ...,
"deck": ..., "severities": {...}, "default_severity": ...}`` naming a file
the server can read. ``POST .../recheck`` accepts the same two shapes for
the new layout version.

Graceful shutdown: ``serve()`` converts SIGTERM/SIGINT into an orderly
drain — the accept loop stops, in-flight handler threads are joined
(``server_close`` blocks on them), and ``Engine.close()`` releases warm
pools and persists the cost model. ``POST /shutdown`` triggers the same
path remotely. Idle keep-alive connections cannot stall the drain:
handler sockets carry a read timeout (:attr:`DrcRequestHandler.timeout`),
so a connection with no request in flight closes within that bound.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..util.logging import get_logger
from .state import BadRequestError, ServeError, ServerState, report_payload

__all__ = ["DrcHTTPServer", "ServeHandle", "serve", "start_server"]

_logger = get_logger("server")

#: Largest request body accepted (a GDS upload), to bound memory.
MAX_BODY_BYTES = 512 * 1024 * 1024


class DrcHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one :class:`ServerState`."""

    allow_reuse_address = True
    #: Non-daemon handler threads + block_on_close make ``server_close()``
    #: wait for in-flight requests — the drain in graceful shutdown.
    daemon_threads = False

    def __init__(self, address: Tuple[str, int], state: ServerState) -> None:
        super().__init__(address, DrcRequestHandler)
        self.state = state
        self._shutdown_started = threading.Event()

    def trigger_shutdown(self) -> None:
        """Stop the accept loop from any thread (idempotent)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        threading.Thread(target=self.shutdown, name="repro-serve-shutdown").start()


class DrcRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Socket timeout (seconds) for request reads. HTTP/1.1 keeps
    #: connections alive between requests; without a timeout an idle
    #: keep-alive client parks its handler thread forever and — with
    #: ``daemon_threads=False`` — blocks the graceful-shutdown drain
    #: (``server_close`` joins handler threads). On timeout,
    #: ``handle_one_request`` closes the connection, so the drain is
    #: bounded by this many seconds.
    timeout = 10.0

    # -- plumbing ------------------------------------------------------------

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body of {length} bytes rejected")
        return self.rfile.read(length) if length else b""

    def _json_body(self) -> Dict[str, Any]:
        raw = self._body()
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise BadRequestError(f"malformed JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise BadRequestError("JSON body must be an object")
        return payload

    def _route(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = {k: v for k, v in parse_qs(split.query).items()}
        try:
            handled = self._dispatch(method, parts, query)
        except ServeError as error:
            self._send_json({"error": str(error)}, status=error.status)
            return
        except BrokenPipeError:  # pragma: no cover - client went away
            return
        except Exception as error:  # pragma: no cover - defensive 500
            _logger.exception("unhandled error serving %s %s", method, self.path)
            self._send_json({"error": f"internal error: {error!r}"}, status=500)
            return
        if not handled:
            self._send_json({"error": f"no route for {method} {split.path}"}, 404)

    # -- routing -------------------------------------------------------------

    def _dispatch(self, method: str, parts, query) -> bool:
        state = self.state
        if method == "GET" and parts == ["health"]:
            self._send_json({"status": "ok", "uptime_seconds": state.stats()["uptime_seconds"]})
            return True
        if method == "GET" and parts == ["stats"]:
            self._send_json(state.stats())
            return True
        if method == "GET" and parts == ["sessions"]:
            self._send_json({"sessions": state.sessions()})
            return True
        if method == "POST" and parts == ["sessions"]:
            self._create_session(query)
            return True
        if method == "POST" and parts == ["shutdown"]:
            self._send_json({"status": "shutting down"})
            self.server.trigger_shutdown()  # type: ignore[attr-defined]
            return True
        if len(parts) >= 2 and parts[0] == "sessions":
            sid = parts[1]
            rest = parts[2:]
            if method == "GET" and not rest:
                self._send_json(state.session(sid).info())
                return True
            if method == "DELETE" and not rest:
                state.delete_session(sid)
                self._send_json({"status": "deleted", "session": sid})
                return True
            if method == "POST" and rest == ["check"]:
                report, meta = state.check(sid)
                self._send_json(report_payload(report, meta))
                return True
            if method == "POST" and rest == ["check-window"]:
                body = self._json_body()
                windows = body.get("windows")
                if not isinstance(windows, list):
                    raise BadRequestError(
                        'check-window body must be {"windows": [[x1,y1,x2,y2], ...]}'
                    )
                report, meta = state.check_window(sid, windows)
                self._send_json(report_payload(report, meta))
                return True
            if method == "POST" and rest == ["recheck"]:
                self._recheck(sid, query)
                return True
            if method == "GET" and rest == ["violations"]:
                self._violations(sid, query)
                return True
        return False

    # -- endpoint bodies -----------------------------------------------------

    @staticmethod
    def _first(query: Dict[str, Any], name: str) -> Optional[str]:
        values = query.get(name)
        return values[0] if values else None

    def _layout_source(self, query) -> Dict[str, Any]:
        """The (path | data, top) triple from a raw-GDS or JSON request."""
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        raw = self._body()
        if content_type in ("application/json", ""):
            if raw:
                try:
                    body = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, ValueError) as error:
                    raise BadRequestError(
                        f"malformed JSON body: {error}"
                    ) from error
                if isinstance(body, dict) and body:
                    return {
                        "path": body.get("path"),
                        "data": None,
                        "top": body.get("top"),
                        "body": body,
                    }
        elif raw:
            return {
                "path": None,
                "data": raw,
                "top": self._first(query, "top"),
                "body": {},
            }
        raise BadRequestError(
            "provide a GDSII stream body (application/octet-stream) or a "
            'JSON body {"path": ...}'
        )

    def _create_session(self, query) -> None:
        source = self._layout_source(query)
        body = source["body"]
        session, created = self.state.create_session(
            path=source["path"],
            data=source["data"],
            top=source["top"],
            deck=body.get("deck") or self._first(query, "deck"),
            severities=body.get("severities"),
            default_severity=body.get("default_severity")
            or self._first(query, "default_severity"),
        )
        info = session.info()
        info["created"] = created
        self._send_json(info, status=201 if created else 200)

    def _recheck(self, sid: str, query) -> None:
        source = self._layout_source(query)
        body = source["body"]
        verify = bool(body.get("verify")) or self._first(query, "verify") in (
            "1",
            "true",
        )
        report, meta = self.state.recheck(
            sid,
            path=source["path"],
            data=source["data"],
            top=source["top"],
            verify=verify,
        )
        self._send_json(report_payload(report, meta))

    def _violations(self, sid: str, query) -> None:
        bbox = None
        raw_bbox = self._first(query, "bbox")
        if raw_bbox:
            try:
                bbox = [int(c) for c in raw_bbox.split(",")]
            except ValueError:
                raise BadRequestError(
                    f"bbox must be x1,y1,x2,y2 integers, got {raw_bbox!r}"
                ) from None
        rules = None
        if "rule" in query:
            rules = [name for value in query["rule"] for name in value.split(",")]
        self._send_json(
            self.state.violations(
                sid,
                severity=self._first(query, "severity"),
                rules=rules,
                bbox=bbox,
            )
        )

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


# ---------------------------------------------------------------------------
# Running servers
# ---------------------------------------------------------------------------


class ServeHandle:
    """A running in-process server (tests, benchmarks): ``close()`` drains."""

    def __init__(self, server: DrcHTTPServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread
        self.state = server.state

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.thread.join(timeout=30)
        self.server.server_close()
        self.state.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def start_server(
    state: ServerState, host: str = "127.0.0.1", port: int = 0
) -> ServeHandle:
    """Start a server on a background thread; ``port=0`` picks a free port."""
    server = DrcHTTPServer((host, port), state)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return ServeHandle(server, thread)


def serve(
    state: ServerState,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce=print,
) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT or /shutdown.

    Shutdown is graceful in all three cases: the accept loop stops first,
    in-flight requests drain (handler threads are joined), and only then is
    the engine closed so warm pools are released and the calibrated cost
    model persists — never the atexit backstop.
    """
    server = DrcHTTPServer((host, port), state)
    bound_host, bound_port = server.server_address[:2]
    announce(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(max_concurrent={state.scheduler.max_concurrent})",
        flush=True,
    )

    installed = {}
    if threading.current_thread() is threading.main_thread():

        def _terminate(signum, frame):
            raise SystemExit(0)

        for signum in (signal.SIGTERM, signal.SIGINT):
            installed[signum] = signal.getsignal(signum)
            signal.signal(signum, _terminate)
    try:
        server.serve_forever(poll_interval=0.1)
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        for signum, old in installed.items():
            signal.signal(signum, old)
        announce("repro serve: draining in-flight requests", flush=True)
        server.server_close()  # joins handler threads (daemon_threads=False)
        state.close()  # release warm pools, persist the cost model
        announce("repro serve: engine closed, bye", flush=True)
    return 0
