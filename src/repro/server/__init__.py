"""DRC-as-a-service: a resident daemon amortizing all warm engine state.

:class:`ServerState` is the transport-free service core (sessions,
single-flight coalescing, the report LRU, counters);
:mod:`repro.server.http` wraps it in a stdlib JSON-over-HTTP server.
``repro serve`` on the command line and :class:`repro.client.ServeClient`
are the two ends of the wire.
"""

from .http import DrcHTTPServer, ServeHandle, serve, start_server
from .state import (
    AdmissionScheduler,
    BadRequestError,
    ServeError,
    ServerState,
    Session,
    SingleFlight,
    UnknownSessionError,
)

__all__ = [
    "AdmissionScheduler",
    "BadRequestError",
    "DrcHTTPServer",
    "ServeError",
    "ServeHandle",
    "ServerState",
    "Session",
    "SingleFlight",
    "UnknownSessionError",
    "serve",
    "start_server",
]
