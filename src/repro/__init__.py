"""repro — a Python reproduction of OpenDRC (DAC 2023).

OpenDRC is an open-source design rule checking engine with hierarchical
layouts, layer-wise bounding volume hierarchies, adaptive row-based layout
partition, a sequential CPU mode, and a parallel (here: simulated) GPU mode.

Quickstart::

    import repro as odrc

    db = odrc.gdsii.read_layout("design.gds")
    engine = odrc.Engine(mode="parallel")
    engine.add_rules([
        odrc.rules.polygons().is_rectilinear(),
        odrc.rules.layer(19).width().greater_than(18),
        odrc.rules.layer(19).spacing().greater_than(21),
    ])
    report = engine.check(db)
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from . import checks, gdsii, geometry, gpu, hierarchy, layout, partition, spatial, util
from .core import (
    CheckReport,
    CheckResult,
    Engine,
    EngineOptions,
    MODE_PARALLEL,
    MODE_SEQUENTIAL,
    Rule,
    RuleKind,
)
from .core import rules
from .errors import (
    DeviceError,
    GdsiiError,
    GeometryError,
    LayoutError,
    ReproError,
    RuleError,
)

__version__ = "1.0.0"

__all__ = [
    "CheckReport",
    "CheckResult",
    "DeviceError",
    "Engine",
    "EngineOptions",
    "GdsiiError",
    "GeometryError",
    "LayoutError",
    "MODE_PARALLEL",
    "MODE_SEQUENTIAL",
    "ReproError",
    "Rule",
    "RuleError",
    "RuleKind",
    "checks",
    "gdsii",
    "geometry",
    "gpu",
    "hierarchy",
    "layout",
    "partition",
    "rules",
    "spatial",
    "util",
]
