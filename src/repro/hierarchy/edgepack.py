"""Hierarchical device-buffer construction — the "hierarchical GPU" in the title.

The parallel mode must pack the edges of all relevant polygons into
flattened device arrays (paper §IV-E). A non-hierarchical checker (X-Check)
walks every *instance* polygon in host code; OpenDRC instead exploits the
hierarchy: each cell definition's edge buffer is packed exactly once, and an
instance's edges are produced by a *vectorised* transform of the
definition's arrays (translation adds offsets; mirrors and 90-degree
rotations permute/negate coordinate arrays; a vertical buffer under a
90-degree rotation becomes a horizontal buffer). Host-side preparation cost
thus scales with the number of cell *definitions* plus references, not with
the number of flat polygons.

Polygon ids stay globally unique across instantiation (child ids are offset
by a running flat-polygon counter) so same-polygon classification (width
pairs, notches) survives the flattening.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from ..geometry import Transform
from ..gpu.kernels import CornerBuffer, EdgeBuffer, pack_edges
from .tree import HierarchyTree

_INT = np.int64


class EdgeBufferPair:
    """Vertical + horizontal edge buffers plus the flat polygon count."""

    __slots__ = ("vertical", "horizontal", "num_polygons")

    def __init__(self, vertical: EdgeBuffer, horizontal: EdgeBuffer, num_polygons: int):
        self.vertical = vertical
        self.horizontal = horizontal
        self.num_polygons = num_polygons

    @classmethod
    def empty(cls) -> "EdgeBufferPair":
        z = np.zeros(0, dtype=_INT)
        return cls(EdgeBuffer(True, z, z, z, z, z), EdgeBuffer(False, z, z, z, z, z), 0)

    @property
    def num_edges(self) -> int:
        return len(self.vertical) + len(self.horizontal)


def transform_pair(pair: EdgeBufferPair, transform: Transform, id_offset: int) -> EdgeBufferPair:
    """Apply a placement transform to a buffer pair (vectorised).

    Vertical edges may become horizontal (and vice versa) under 90/270
    rotations. Interior-normal signs transform with the linear map, so the
    width/spacing classification of every edge survives instantiation.
    """
    a, b, c, d = _int_matrix(transform)
    out_v: List[EdgeBuffer] = []
    out_h: List[EdgeBuffer] = []
    for buf in (pair.vertical, pair.horizontal):
        if len(buf) == 0:
            continue
        if buf.vertical:
            # Points (x=fixed, y in [lo, hi]); interior normal (s, 0).
            moved = _map_edges(buf, a, b, c, d, transform.dx, transform.dy, from_vertical=True)
        else:
            moved = _map_edges(buf, a, b, c, d, transform.dx, transform.dy, from_vertical=False)
        moved.poly = buf.poly + id_offset
        (out_v if moved.vertical else out_h).append(moved)
    return EdgeBufferPair(
        concat_buffers(out_v, vertical=True),
        concat_buffers(out_h, vertical=False),
        pair.num_polygons,
    )


def _map_edges(
    buf: EdgeBuffer, a: int, b: int, c: int, d: int, dx: int, dy: int, *, from_vertical: bool
) -> EdgeBuffer:
    # Axis-aligned linear parts are either diagonal (orientation preserved)
    # or anti-diagonal (vertical <-> horizontal). The interior normal
    # transforms with the linear map: vertical normals (s, 0) map to
    # (a s, c s), horizontal normals (0, s) to (b s, d s); exactly one
    # component is nonzero and its sign is the new interior sign.
    if from_vertical:
        if b == 0 and c == 0:
            fixed_factor, span_factor, fixed_off, span_off = a, d, dx, dy
            normal_factor, vertical = a, True
        else:
            fixed_factor, span_factor, fixed_off, span_off = c, b, dy, dx
            normal_factor, vertical = c, False
    else:
        if b == 0 and c == 0:
            fixed_factor, span_factor, fixed_off, span_off = d, a, dy, dx
            normal_factor, vertical = d, False
        else:
            fixed_factor, span_factor, fixed_off, span_off = b, c, dx, dy
            normal_factor, vertical = b, True
    fixed = fixed_factor * buf.fixed + fixed_off
    if span_factor >= 0:
        lo = span_factor * buf.lo + span_off
        hi = span_factor * buf.hi + span_off
    else:
        lo = span_factor * buf.hi + span_off
        hi = span_factor * buf.lo + span_off
    interior = buf.interior if normal_factor > 0 else -buf.interior
    return EdgeBuffer(vertical, fixed, lo, hi, interior, buf.poly)


def _int_matrix(transform: Transform) -> Tuple[int, int, int, int]:
    mag = Fraction(transform.magnification)
    if mag.denominator != 1:
        raise GeometryError(
            "hierarchical edge packing requires integral magnification; "
            f"got {transform.magnification}"
        )
    a, b, c, d = transform._matrix
    return int(a), int(b), int(c), int(d)


def concat_buffers(buffers: List[EdgeBuffer], *, vertical: bool) -> EdgeBuffer:
    if not buffers:
        z = np.zeros(0, dtype=_INT)
        return EdgeBuffer(vertical, z, z, z, z, z)
    if len(buffers) == 1:
        return buffers[0]
    if any(x.segment is not None for x in buffers):
        # Buffers without an explicit segment default to segment 0.
        segment = np.concatenate(
            [
                x.segment if x.segment is not None else np.zeros(len(x), dtype=_INT)
                for x in buffers
            ]
        )
    else:
        segment = None
    return EdgeBuffer(
        vertical,
        np.concatenate([x.fixed for x in buffers]),
        np.concatenate([x.lo for x in buffers]),
        np.concatenate([x.hi for x in buffers]),
        np.concatenate([x.interior for x in buffers]),
        np.concatenate([x.poly for x in buffers]),
        segment,
    )


def concat_segmented(pairs: List[EdgeBufferPair]) -> EdgeBufferPair:
    """Fuse per-row buffer pairs into one segmented pair (one launch's input).

    Every edge is tagged with its row index in ``segment``; polygon ids are
    offset by a running flat-polygon counter so they stay globally unique
    across the fused buffer (same-polygon classification — width pairs,
    notches — survives fusion).
    """
    parts_v: List[EdgeBuffer] = []
    parts_h: List[EdgeBuffer] = []
    offset = 0
    for index, pair in enumerate(pairs):
        for buf, parts in ((pair.vertical, parts_v), (pair.horizontal, parts_h)):
            if len(buf):
                parts.append(
                    EdgeBuffer(
                        buf.vertical,
                        buf.fixed,
                        buf.lo,
                        buf.hi,
                        buf.interior,
                        buf.poly + offset,
                        np.full(len(buf), index, dtype=_INT),
                    )
                )
        offset += pair.num_polygons
    return EdgeBufferPair(
        concat_buffers(parts_v, vertical=True),
        concat_buffers(parts_h, vertical=False),
        offset,
    )


class HierarchicalEdgePacker:
    """Builds per-definition edge buffers bottom-up, memoised per cell.

    ``buffer_of(cell)`` returns the cell subtree's full flat edge buffer in
    local coordinates — built once per definition, no matter how many times
    the cell is instantiated.
    """

    def __init__(self, tree: HierarchyTree, layer: int) -> None:
        self.tree = tree
        self.layer = layer
        self._memo: Dict[str, EdgeBufferPair] = {}

    def buffer_of(self, cell_name: str) -> EdgeBufferPair:
        cached = self._memo.get(cell_name)
        if cached is not None:
            return cached
        cell = self.tree.layout.cell(cell_name)
        parts_v: List[EdgeBuffer] = []
        parts_h: List[EdgeBuffer] = []
        local = cell.polygons(self.layer)
        count = len(local)
        if local:
            packed = pack_edges(local)
            parts_v.append(packed["v"])
            parts_h.append(packed["h"])
        for ref in cell.references:
            if not self.tree.has_layer(ref.cell_name, self.layer):
                continue
            child = self.buffer_of(ref.cell_name)
            for placement in ref.placements():
                moved = transform_pair(child, placement, count)
                parts_v.append(moved.vertical)
                parts_h.append(moved.horizontal)
                count += child.num_polygons
        pair = EdgeBufferPair(
            concat_buffers([p for p in parts_v if len(p)], vertical=True),
            concat_buffers([p for p in parts_h if len(p)], vertical=False),
            count,
        )
        self._memo[cell_name] = pair
        return pair

    def instance_buffer(self, cell_name: str, placement: Transform, id_offset: int) -> EdgeBufferPair:
        """One instance's flat buffer in the parent frame."""
        return transform_pair(self.buffer_of(cell_name), placement, id_offset)


class RectBuffer:
    """Per-definition polygon MBRs as an ``(n, 4)`` array.

    ``all_rect`` records whether every polygon *is* its MBR (a rectangle);
    only then may rectangle fast-path kernels (enclosure) use the buffer.
    """

    __slots__ = ("rects", "all_rect")

    def __init__(self, rects: np.ndarray, all_rect: bool) -> None:
        self.rects = rects
        self.all_rect = all_rect

    def __len__(self) -> int:
        return len(self.rects)

    @classmethod
    def empty(cls) -> "RectBuffer":
        return cls(np.zeros((0, 4), dtype=_INT), True)


def transform_rects(rects: np.ndarray, transform: Transform) -> np.ndarray:
    """Vectorised rect transform: map both corners, re-sort per axis."""
    if len(rects) == 0:
        return rects
    a, b, c, d = _int_matrix(transform)
    x1, y1, x2, y2 = rects[:, 0], rects[:, 1], rects[:, 2], rects[:, 3]
    cx1 = a * x1 + b * y1 + transform.dx
    cy1 = c * x1 + d * y1 + transform.dy
    cx2 = a * x2 + b * y2 + transform.dx
    cy2 = c * x2 + d * y2 + transform.dy
    return np.stack(
        [
            np.minimum(cx1, cx2),
            np.minimum(cy1, cy2),
            np.maximum(cx1, cx2),
            np.maximum(cy1, cy2),
        ],
        axis=1,
    )


class HierarchicalRectPacker:
    """Per-definition MBR buffers, built bottom-up like the edge packer."""

    def __init__(self, tree: HierarchyTree, layer: int) -> None:
        self.tree = tree
        self.layer = layer
        self._memo: Dict[str, RectBuffer] = {}

    def buffer_of(self, cell_name: str) -> RectBuffer:
        cached = self._memo.get(cell_name)
        if cached is not None:
            return cached
        cell = self.tree.layout.cell(cell_name)
        parts: List[np.ndarray] = []
        all_rect = True
        local = cell.polygons(self.layer)
        if local:
            parts.append(np.asarray([tuple(p.mbr) for p in local], dtype=_INT))
            all_rect = all(p.is_rectangle for p in local)
        for ref in cell.references:
            if not self.tree.has_layer(ref.cell_name, self.layer):
                continue
            child = self.buffer_of(ref.cell_name)
            all_rect = all_rect and child.all_rect
            for placement in ref.placements():
                parts.append(transform_rects(child.rects, placement))
        if parts:
            buffer = RectBuffer(np.concatenate(parts, axis=0), all_rect)
        else:
            buffer = RectBuffer.empty()
        self._memo[cell_name] = buffer
        return buffer

    def instance_rects(self, cell_name: str, placement: Transform) -> RectBuffer:
        child = self.buffer_of(cell_name)
        return RectBuffer(transform_rects(child.rects, placement), child.all_rect)


# ---------------------------------------------------------------------------
# Pack-store codecs
#
# Stable array serialization of the buffer types this module builds, used by
# the persistent pack store (repro.core.packstore). Decoding is zero-copy:
# the returned buffers wrap whatever arrays (typically read-only memmap
# views) the store hands in.
# ---------------------------------------------------------------------------


def edge_pair_to_arrays(pair: EdgeBufferPair) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, Any] = {"num_polygons": int(pair.num_polygons)}
    for prefix, buf in (("v", pair.vertical), ("h", pair.horizontal)):
        arrays[f"{prefix}_fixed"] = buf.fixed
        arrays[f"{prefix}_lo"] = buf.lo
        arrays[f"{prefix}_hi"] = buf.hi
        arrays[f"{prefix}_interior"] = buf.interior
        arrays[f"{prefix}_poly"] = buf.poly
        meta[f"{prefix}_segment"] = buf.segment is not None
        if buf.segment is not None:
            arrays[f"{prefix}_segment"] = buf.segment
    return arrays, meta


def edge_pair_from_arrays(arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> EdgeBufferPair:
    def buf(prefix: str, vertical: bool) -> EdgeBuffer:
        segment = arrays[f"{prefix}_segment"] if meta[f"{prefix}_segment"] else None
        return EdgeBuffer(
            vertical,
            arrays[f"{prefix}_fixed"],
            arrays[f"{prefix}_lo"],
            arrays[f"{prefix}_hi"],
            arrays[f"{prefix}_interior"],
            arrays[f"{prefix}_poly"],
            segment,
        )

    return EdgeBufferPair(buf("v", True), buf("h", False), int(meta["num_polygons"]))


def corners_to_arrays(buf: CornerBuffer) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    arrays = {
        "x": buf.x,
        "y": buf.y,
        "qx": buf.qx,
        "qy": buf.qy,
        "poly": buf.poly,
    }
    if buf.segment is not None:
        arrays["segment"] = buf.segment
    return arrays, {"segment": buf.segment is not None}


def corners_from_arrays(arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> CornerBuffer:
    return CornerBuffer(
        arrays["x"],
        arrays["y"],
        arrays["qx"],
        arrays["qy"],
        arrays["poly"],
        arrays["segment"] if meta["segment"] else None,
    )


def rect_rows_to_arrays(rows: Sequence[RectBuffer]) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    rects = (
        np.concatenate([row.rects for row in rows], axis=0)
        if rows
        else np.zeros((0, 4), dtype=_INT)
    )
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    return {"rects": rects, "offsets": offsets}, {
        "all_rect": [bool(row.all_rect) for row in rows]
    }


def rect_rows_from_arrays(arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> List[RectBuffer]:
    rects = arrays["rects"]
    offsets = arrays["offsets"]
    return [
        RectBuffer(rects[offsets[i] : offsets[i + 1]], bool(flag))
        for i, flag in enumerate(meta["all_rect"])
    ]
