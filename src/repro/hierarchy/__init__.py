"""Hierarchy tree, layer views, range queries, and task pruning (paper §IV-A/§IV-C)."""

from .layerview import LayerView
from .pruning import (
    IntraCheckScheduler,
    LevelItem,
    PruningStats,
    SubtreeWindow,
    always_invariant,
    area_invariant,
    distance_invariant,
    gather_pair_polygons,
    level_items,
)
from .query import QueryStats, count_layer_range, invert, iter_layer_range, layer_range_query
from .tree import HierarchyTree, reference_mbr

__all__ = [
    "HierarchyTree",
    "IntraCheckScheduler",
    "LayerView",
    "LevelItem",
    "PruningStats",
    "QueryStats",
    "SubtreeWindow",
    "always_invariant",
    "area_invariant",
    "count_layer_range",
    "distance_invariant",
    "gather_pair_polygons",
    "invert",
    "iter_layer_range",
    "layer_range_query",
    "level_items",
    "reference_mbr",
]
