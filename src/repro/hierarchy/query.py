"""Layer range queries over the MBR-augmented hierarchy tree (paper §IV-A).

``layer_range_query`` descends from the top structure and prunes every
subtree whose MBR for the queried layer is empty or disjoint from the query
window, achieving the paper's O(min(n, kh)) bound — ``n`` leaves, ``k``
outputs, ``h`` tree height. The returned :class:`QueryStats` exposes the
visit counts the complexity tests assert on.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..geometry import Polygon, Rect, Transform
from ..layout.cell import Cell
from .tree import HierarchyTree


@dataclasses.dataclass
class QueryStats:
    """Instrumentation of one range query."""

    cells_visited: int = 0
    cells_pruned: int = 0
    polygons_tested: int = 0
    polygons_reported: int = 0


def layer_range_query(
    tree: HierarchyTree,
    layer: int,
    window: Rect,
    *,
    stats: Optional[QueryStats] = None,
) -> List[Polygon]:
    """All polygons of ``layer`` whose MBRs overlap ``window`` (top coordinates).

    Polygons are returned transformed into top-cell coordinates.
    """
    out: List[Polygon] = []
    for polygon, transform in iter_layer_range(tree, layer, window, stats=stats):
        out.append(polygon.transformed(transform))
    return out


def iter_layer_range(
    tree: HierarchyTree,
    layer: int,
    window: Rect,
    *,
    stats: Optional[QueryStats] = None,
):
    """Lazy variant yielding ``(local_polygon, accumulated_transform)`` pairs.

    Callers that only need counts or MBRs avoid materializing transformed
    polygons.
    """
    if stats is None:
        stats = QueryStats()
    if window.is_empty:
        return

    def visit(cell: Cell, transform: Transform, local_window: Rect):
        stats.cells_visited += 1
        for polygon in cell.polygons(layer):
            stats.polygons_tested += 1
            if polygon.mbr.overlaps(local_window):
                stats.polygons_reported += 1
                yield polygon, transform
        for ref in cell.references:
            child_mbr = tree.layer_mbr(ref.cell_name, layer)
            if child_mbr.is_empty:
                stats.cells_pruned += 1
                continue
            child = tree.layout.cell(ref.cell_name)
            for placement in ref.placements():
                placed_mbr = placement.apply_rect(child_mbr)
                if not placed_mbr.overlaps(local_window):
                    stats.cells_pruned += 1
                    continue
                child_window = _pull_back(placement, local_window)
                yield from visit(child, transform.compose(placement), child_window)

    top_mbr = tree.layer_mbr(tree.top.name, layer)
    if top_mbr.is_empty or not top_mbr.overlaps(window):
        stats.cells_pruned += 1
        return
    yield from visit(tree.top, Transform(), window)


def count_layer_range(
    tree: HierarchyTree, layer: int, window: Rect
) -> Tuple[int, QueryStats]:
    """Number of layer polygons overlapping ``window`` plus instrumentation."""
    stats = QueryStats()
    count = sum(1 for _ in iter_layer_range(tree, layer, window, stats=stats))
    return count, stats


def _pull_back(placement: Transform, window: Rect) -> Rect:
    """Map a parent-coordinate window into the child's local coordinates."""
    return pull_back_window(placement, window)


def pull_back_window(placement: Transform, window: Rect) -> Rect:
    """Inverse-map a window, rounding outward onto the integer grid.

    For magnified placements the exact inverse image may have fractional
    corners; rounding outward only enlarges the window, which is always safe
    for MBR-gathering (a superset of candidates, never a miss).
    """
    import math
    from fractions import Fraction

    if window.is_empty:
        return window
    a, b, c, d = placement._matrix
    det = Fraction(a) * Fraction(d) - Fraction(b) * Fraction(c)
    inv = (
        Fraction(d) / det,
        Fraction(-b) / det,
        Fraction(-c) / det,
        Fraction(a) / det,
    )
    xs = []
    ys = []
    for x, y in (
        (window.xlo, window.ylo),
        (window.xhi, window.yhi),
        (window.xlo, window.yhi),
        (window.xhi, window.ylo),
    ):
        px = Fraction(x - placement.dx)
        py = Fraction(y - placement.dy)
        xs.append(inv[0] * px + inv[1] * py)
        ys.append(inv[2] * px + inv[3] * py)
    return Rect(
        math.floor(min(xs)), math.floor(min(ys)),
        math.ceil(max(xs)), math.ceil(max(ys)),
    )


def invert(transform: Transform) -> Transform:
    """Inverse of a placement transform (magnification must be invertible)."""
    from fractions import Fraction

    mag = Fraction(transform.magnification)
    inv_mag = 1 / mag
    # Inverse linear part: undo rotation then mirror; composed directly.
    if transform.mirror_x:
        rotation = transform.rotation % 360
    else:
        rotation = (-transform.rotation) % 360
    linear_inverse = Transform(
        0, 0, rotation, transform.mirror_x, inv_mag if inv_mag.denominator != 1 else int(inv_mag)
    )
    origin = linear_inverse.apply_rect(
        Rect(transform.dx, transform.dy, transform.dx, transform.dy)
    )
    return Transform(
        -origin.xlo,
        -origin.ylo,
        linear_inverse.rotation,
        linear_inverse.mirror_x,
        linear_inverse.magnification,
    )
