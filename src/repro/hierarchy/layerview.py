"""Layer-wise duplicated hierarchy trees and inverted indices (paper §IV-A).

The paper's space-for-speed option: build, per layer, a *separate* hierarchy
tree containing only the cells whose subtree holds geometry on that layer
(space grows at most L-fold for L layers), and optionally an element-level
inverted index listing every leaf (cell, polygon) pair of the layer so that
"all objects of layer x" queries never touch the tree at all.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..geometry import Polygon
from ..layout.cell import CellReference
from ..layout.library import Layout
from .tree import HierarchyTree


@dataclasses.dataclass
class LayerTreeNode:
    """One cell of a single-layer hierarchy tree."""

    cell_name: str
    local_polygons: List[Polygon]
    children: List[Tuple[CellReference, "str"]]  # (reference, child cell name)


class LayerView:
    """Per-layer duplicated trees plus element-level inverted indices."""

    def __init__(self, layout: Layout, *, top: Optional[str] = None) -> None:
        self.tree = HierarchyTree(layout, top=top)
        self.layout = layout
        self._layer_trees: Dict[int, Dict[str, LayerTreeNode]] = {}
        self._inverted: Dict[int, List[Tuple[str, Polygon]]] = {}
        self._build()

    def _build(self) -> None:
        all_layers = set()
        for cell in self.layout.cells.values():
            all_layers.update(cell.local_layers())
        for layer in all_layers:
            nodes: Dict[str, LayerTreeNode] = {}
            index: List[Tuple[str, Polygon]] = []
            for cell in self.layout.topological_order():
                if not self.tree.has_layer(cell.name, layer):
                    continue  # cell contributes nothing on this layer
                children = [
                    (ref, ref.cell_name)
                    for ref in cell.references
                    if self.tree.has_layer(ref.cell_name, layer)
                ]
                local = cell.polygons(layer)
                nodes[cell.name] = LayerTreeNode(cell.name, local, children)
                for polygon in local:
                    index.append((cell.name, polygon))
            self._layer_trees[layer] = nodes
            self._inverted[layer] = index

    # -- queries --------------------------------------------------------------

    def layers(self) -> List[int]:
        return sorted(self._layer_trees)

    def layer_tree(self, layer: int) -> Dict[str, LayerTreeNode]:
        """The duplicated tree of one layer (empty dict if the layer is absent)."""
        return self._layer_trees.get(layer, {})

    def tree_size(self, layer: int) -> int:
        """Number of cells participating in one layer's tree."""
        return len(self.layer_tree(layer))

    def leaf_elements(self, layer: int) -> List[Tuple[str, Polygon]]:
        """Inverted index: every (defining cell, polygon) of the layer.

        Answers "all objects in the given layer" without tree traversal.
        """
        return self._inverted.get(layer, [])

    def element_count(self, layer: int) -> int:
        return len(self.leaf_elements(layer))

    def duplication_factor(self) -> float:
        """Total duplicated tree size over the plain hierarchy size (<= L)."""
        base = len(self.layout.cells)
        if base == 0:
            return 0.0
        duplicated = sum(len(nodes) for nodes in self._layer_trees.values())
        return duplicated / base
