"""Layer-wise MBR-augmented hierarchy tree (paper §IV-A).

OpenDRC never flattens: the hierarchy tree mirrors the cell reference DAG,
and every cell is augmented with one minimum bounding rectangle **per
layer** covering all geometry of that layer anywhere in the cell's subtree
(local polygons plus, recursively, referenced cells). A cell spanning
multiple layers therefore has multiple MBRs, and a layer range query can
prune any subtree whose MBR for the queried layer is empty or disjoint from
the query window.

MBRs are computed in one bottom-up pass (children before parents). AREF
references are handled without expansion: the union of a rect translated
over a regular grid is the rect stretched across the grid's offset extent.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import EMPTY_RECT, Rect, Transform, union_all
from ..layout.cell import Cell, CellReference
from ..layout.library import Layout


class HierarchyTree:
    """The layout's reference DAG augmented with per-layer subtree MBRs."""

    def __init__(self, layout: Layout, *, top: Optional[str] = None) -> None:
        layout.validate()
        self.layout = layout
        self.top = layout.cell(top) if top else layout.top_cell()
        #: cell name -> layer -> subtree MBR in that cell's local coordinates
        self._layer_mbrs: Dict[str, Dict[int, Rect]] = {}
        self._compute_mbrs()

    # -- construction -------------------------------------------------------

    def _compute_mbrs(self) -> None:
        for cell in self.layout.topological_order():
            mbrs: Dict[int, Rect] = {}
            for layer in cell.local_layers():
                mbrs[layer] = union_all(p.mbr for p in cell.polygons(layer))
            for ref in cell.references:
                child_mbrs = self._layer_mbrs[ref.cell_name]
                for layer, child_rect in child_mbrs.items():
                    placed = reference_mbr(ref, child_rect)
                    mbrs[layer] = mbrs.get(layer, EMPTY_RECT).union(placed)
            self._layer_mbrs[cell.name] = mbrs

    # -- queries ------------------------------------------------------------

    def layer_mbr(self, cell_name: str, layer: int) -> Rect:
        """Subtree MBR of ``layer`` under ``cell_name`` (local coordinates)."""
        return self._layer_mbrs[cell_name].get(layer, EMPTY_RECT)

    def cell_layers(self, cell_name: str) -> List[int]:
        """Layers present anywhere in the cell's subtree (sorted)."""
        return sorted(self._layer_mbrs[cell_name])

    def has_layer(self, cell_name: str, layer: int) -> bool:
        """True if the cell's subtree holds any geometry on ``layer``."""
        return not self.layer_mbr(cell_name, layer).is_empty

    def top_mbr(self, layer: int) -> Rect:
        """Chip-level MBR of one layer."""
        return self.layer_mbr(self.top.name, layer)

    # -- traversal -----------------------------------------------------------

    def iter_instances(
        self, *, layer: Optional[int] = None
    ) -> Iterator[Tuple[Cell, Transform]]:
        """All cell instances under the top, with accumulated transforms.

        With ``layer`` given, subtrees without that layer are pruned — the
        hierarchy descent of paper §IV-A.
        """

        def visit(cell: Cell, transform: Transform) -> Iterator[Tuple[Cell, Transform]]:
            yield cell, transform
            for ref in cell.references:
                if layer is not None and not self.has_layer(ref.cell_name, layer):
                    continue
                child = self.layout.cell(ref.cell_name)
                for placement in ref.placements():
                    yield from visit(child, transform.compose(placement))

        if layer is not None and not self.has_layer(self.top.name, layer):
            return iter(())
        return visit(self.top, Transform())

    def top_level_items(self, layer: int) -> List[Tuple[str, Transform, Rect]]:
        """Direct children of the top holding ``layer``: (cell, placement, placed MBR).

        This is the population the adaptive row partition operates on.
        """
        items: List[Tuple[str, Transform, Rect]] = []
        for ref in self.top.references:
            child_mbr = self.layer_mbr(ref.cell_name, layer)
            if child_mbr.is_empty:
                continue
            for placement in ref.placements():
                items.append((ref.cell_name, placement, placement.apply_rect(child_mbr)))
        return items


def reference_mbr(ref: CellReference, child_rect: Rect) -> Rect:
    """Placed MBR of a reference given the child's local MBR.

    AREFs are folded analytically: the union over a regular offset grid of a
    translated rect is the rect stretched over the offset extremes.
    """
    if child_rect.is_empty:
        return EMPTY_RECT
    base = ref.transform.apply_rect(child_rect)
    if ref.repetition is None:
        return base
    rep = ref.repetition
    last_col = (
        (rep.columns - 1) * rep.column_step[0],
        (rep.columns - 1) * rep.column_step[1],
    )
    last_row = ((rep.rows - 1) * rep.row_step[0], (rep.rows - 1) * rep.row_step[1])
    dxs = [0, last_col[0], last_row[0], last_col[0] + last_row[0]]
    dys = [0, last_col[1], last_row[1], last_col[1] + last_row[1]]
    return Rect(
        base.xlo + min(dxs),
        base.ylo + min(dys),
        base.xhi + max(dxs),
        base.yhi + max(dys),
    )
