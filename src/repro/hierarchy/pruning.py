"""Task pruning from the hierarchy tree (paper §IV-C).

Two redundancy sources let OpenDRC skip most checks:

1. **Inferable results** — isomorphic modules: a cell instantiated many times
   is checked once per *definition*, and the result is reused for every
   instance whose placement transform preserves the checked property
   (distances for width/spacing, area for area rules; all our transforms
   preserve rectilinearity).
2. **Impossible violations** — a pair check is eliminated when the two
   MBRs, inflated by the minimum rule distance, do not overlap.

:class:`IntraCheckScheduler` implements the DFS + tag-marking protocol for
intra-polygon checks. :class:`SubtreeWindow` implements the windowed subtree
geometry gathering that inter-polygon checks use at each hierarchy level.
:class:`PruningStats` counts scheduled vs reused vs eliminated work — the
numbers behind the paper's 37.6x sequential speedup over flat checking.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..checks.base import Violation
from ..geometry import Polygon, Rect, Transform
from ..layout.cell import Cell
from .query import pull_back_window
from .tree import HierarchyTree


@dataclasses.dataclass
class PruningStats:
    """How much work the hierarchy saved."""

    checks_run: int = 0  # actual check executions (per definition)
    checks_reused: int = 0  # instances served from the memo
    checks_refreshed: int = 0  # instances re-run (transform breaks invariant)
    pairs_considered: int = 0  # candidate pairs surviving MBR pruning
    pairs_pruned_mbr: int = 0  # pairs eliminated by inflated-MBR disjointness

    @property
    def reuse_ratio(self) -> float:
        total = self.checks_run + self.checks_reused + self.checks_refreshed
        return self.checks_reused / total if total else 0.0


#: Decides whether a memoised result stays valid under a placement transform.
TransformInvariance = Callable[[Transform], bool]


def distance_invariant(transform: Transform) -> bool:
    """Width/spacing/enclosure results survive any rigid placement (mag == 1)."""
    return transform.preserves_distances


def area_invariant(transform: Transform) -> bool:
    """Area results survive transforms that do not scale area."""
    return transform.area_scale == 1


def always_invariant(transform: Transform) -> bool:
    """Shape/predicate results survive every supported transform."""
    return True


class IntraCheckScheduler:
    """Runs an intra-polygon check once per cell definition, reusing per instance.

    The check callable receives a cell and must return that cell's *local*
    violations (from its own polygons only — child cells are handled by
    their own definitions). The scheduler DFSes the hierarchy, tags each
    definition on first encounter (scheduling exactly one real check), and
    instantiates the memoised result through every placement transform.
    """

    def __init__(self, tree: HierarchyTree) -> None:
        self.tree = tree
        self.stats = PruningStats()

    def run(
        self,
        layer: int,
        check: Callable[[Cell], List[Violation]],
        *,
        invariance: TransformInvariance = distance_invariant,
    ) -> List[Violation]:
        """All violations under the top cell, in top-cell coordinates."""
        memo: Dict[str, List[Violation]] = {}
        out: List[Violation] = []

        def definition_result(cell: Cell) -> List[Violation]:
            cached = memo.get(cell.name)
            if cached is None:
                self.stats.checks_run += 1
                cached = check(cell)
                memo[cell.name] = cached
            else:
                self.stats.checks_reused += 1
            return cached

        for cell, transform in self.tree.iter_instances(layer=layer):
            if not cell.polygons(layer):
                continue
            if invariance(transform):
                for violation in definition_result(cell):
                    out.append(violation.transformed(transform))
            else:
                # The placement breaks the invariant (e.g. magnification for
                # a distance rule): re-run on the transformed geometry.
                self.stats.checks_refreshed += 1
                placed = Cell(cell.name)
                for polygon in cell.polygons(layer):
                    placed.add_polygon(layer, polygon.transformed(transform))
                out.extend(check(placed))
        return out


class SubtreeWindow:
    """Windowed geometry gathering for inter-polygon checks.

    At every hierarchy level, cross-boundary candidate pairs only need the
    geometry near the MBR overlap window; this helper descends one cell's
    subtree, MBR-pruning against the window, and returns polygons in the
    *parent* frame of the given placement.
    """

    def __init__(self, tree: HierarchyTree) -> None:
        self.tree = tree

    def polygons_in_window(
        self,
        cell_name: str,
        placement: Transform,
        layer: int,
        window: Rect,
    ) -> List[Polygon]:
        """Subtree polygons of ``layer`` whose placed MBR overlaps ``window``.

        ``window`` and the results are in the coordinates ``placement`` maps
        into (the parent cell frame).
        """
        return self.polygons_in_regions(cell_name, placement, layer, [window])

    def polygons_in_regions(
        self,
        cell_name: str,
        placement: Transform,
        layer: int,
        windows: List[Rect],
    ) -> List[Polygon]:
        """Subtree polygons whose placed MBR overlaps *any* of ``windows``.

        One traversal serves the whole window set, so each placed polygon
        appears at most once however many windows it straddles — the
        multi-window incremental backend depends on that (a duplicated
        polygon would spuriously violate spacing against itself).
        """
        out: List[Polygon] = []
        live = [w for w in windows if not w.is_empty]
        if live:
            self._visit(cell_name, placement, layer, live, out)
        return out

    def _visit(
        self,
        cell_name: str,
        placement: Transform,
        layer: int,
        windows: List[Rect],
        out: List[Polygon],
    ) -> None:
        subtree_mbr = placement.apply_rect(self.tree.layer_mbr(cell_name, layer))
        if subtree_mbr.is_empty or not any(
            subtree_mbr.overlaps(w) for w in windows
        ):
            return
        cell = self.tree.layout.cell(cell_name)
        local_windows = [pull_back_window(placement, w) for w in windows]
        for polygon in cell.polygons(layer):
            if any(polygon.mbr.overlaps(w) for w in local_windows):
                out.append(polygon.transformed(placement))
        for ref in cell.references:
            child_mbr = self.tree.layer_mbr(ref.cell_name, layer)
            if child_mbr.is_empty:
                continue
            for child_placement in ref.placements():
                composed = placement.compose(child_placement)
                self._visit(ref.cell_name, composed, layer, windows, out)


@dataclasses.dataclass(frozen=True)
class LevelItem:
    """One sweep participant at a hierarchy level: a polygon or a child instance."""

    mbr: Rect  # *raw* MBR in the level's local frame (inflate at the use site)
    polygon: Optional[Polygon] = None  # set for local polygons
    cell_name: Optional[str] = None  # set for child instances
    placement: Optional[Transform] = None

    @property
    def is_polygon(self) -> bool:
        return self.polygon is not None


def level_items(tree: HierarchyTree, cell: Cell, layer: int) -> List[LevelItem]:
    """Sweep participants of one cell level for an intra-layer pair check."""
    items: List[LevelItem] = []
    for polygon in cell.polygons(layer):
        items.append(LevelItem(mbr=polygon.mbr, polygon=polygon))
    for ref in cell.references:
        child_mbr = tree.layer_mbr(ref.cell_name, layer)
        if child_mbr.is_empty:
            continue
        for placement in ref.placements():
            items.append(
                LevelItem(
                    mbr=placement.apply_rect(child_mbr),
                    cell_name=ref.cell_name,
                    placement=placement,
                )
            )
    return items


def gather_pair_polygons(
    item_a: LevelItem,
    item_b: LevelItem,
    subtree: SubtreeWindow,
    layer: int,
    rule_distance: int,
) -> Tuple[List[Polygon], List[Polygon]]:
    """Materialize the polygons of two level items near their interface.

    Any polygon of item A within ``rule_distance`` of a polygon of item B
    lies inside ``inflate(mbr_B, rule_distance)`` and (being part of A)
    inside ``inflate(mbr_A, rule_distance)``, so the intersection window of
    the two rule-distance inflations is a complete capture region for both
    sides.
    """
    window = item_a.mbr.inflated(rule_distance).intersection(
        item_b.mbr.inflated(rule_distance)
    )
    if window.is_empty:
        return [], []

    def polygons_of(item: LevelItem) -> List[Polygon]:
        if item.polygon is not None:
            return [item.polygon] if item.polygon.mbr.overlaps(window) else []
        assert item.cell_name is not None and item.placement is not None
        return subtree.polygons_in_window(item.cell_name, item.placement, layer, window)

    return polygons_of(item_a), polygons_of(item_b)
