"""Adaptive row-based layout partition (paper §IV-B).

Layouts produced by row-based placement split naturally into horizontal
bands: merge the y-extents of all top-level cell instances (inflated by a
safety margin derived from the rule distance) into disjoint intervals, and
each resulting *row* can be checked independently — objects in different
rows are provably farther apart than the rule distance, so cross-row checks
are pruned entirely and rows can be processed in parallel.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Callable, Dict, List, Sequence, TypeVar

from ..geometry import Interval, Rect
from ..spatial.interval_merge import merge_intervals_pigeonhole, merge_intervals_sorted

T = TypeVar("T")


@dataclasses.dataclass
class Row:
    """One independent horizontal band of the layout."""

    index: int
    span: Interval  # inflated y-extent covered by this row
    members: List[int]  # indices into the partitioned item sequence

    def __len__(self) -> int:
        return len(self.members)


@dataclasses.dataclass
class RowPartition:
    """Result of partitioning: rows plus the margin they were built with."""

    rows: List[Row]
    margin: int

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def largest_row(self) -> int:
        return max((len(r) for r in self.rows), default=0)

    def row_of(self) -> Dict[int, int]:
        """Map item index -> row index."""
        return {m: row.index for row in self.rows for m in row.members}

    def signature(self) -> tuple:
        """Stable, hashable identity of this partition.

        Two partitions over the same item sequence compare equal exactly
        when every item lands in the same row — the condition under which
        packed per-row device buffers may be reused across rules (the
        deck-scoped pack cache keys on this). The margin is included so
        partitions from different rule distances never collide.
        """
        return (self.margin, tuple(tuple(row.members) for row in self.rows))


def margin_for_rule(rule_distance: int) -> int:
    """Inflation margin guaranteeing cross-row independence.

    Each item's y-interval grows by this margin on both sides before merging.
    Two items in *different* merged rows then have an original gap of at
    least ``2 * margin + 1 > rule_distance``, so no pair across rows can be
    closer than the rule requires.
    """
    if rule_distance < 0:
        raise ValueError(f"rule distance must be non-negative, got {rule_distance}")
    return (rule_distance + 1) // 2


def partition_rects(
    rects: Sequence[Rect],
    rule_distance: int,
    *,
    merger: Callable[[Sequence[Interval]], List[Interval]] = merge_intervals_pigeonhole,
) -> RowPartition:
    """Partition items (given by their MBRs) into independent rows.

    Empty rects are assigned to no row (they have no geometry to check).
    ``merger`` selects the interval-merging backend — the pigeonhole array of
    Algorithm 1 by default, the sort-based baseline for the ablation.
    """
    margin = margin_for_rule(rule_distance)
    spans: List[Interval] = []
    owners: List[int] = []
    for index, rect in enumerate(rects):
        if rect.is_empty:
            continue
        spans.append(Interval(rect.ylo - margin, rect.yhi + margin))
        owners.append(index)

    merged = merger(spans)
    rows = [Row(index=i, span=span, members=[]) for i, span in enumerate(merged)]

    # Each item lands in exactly one merged interval (its inflated span is a
    # subset of one row by construction); binary-search the row starts.
    starts = [row.span.lo for row in rows]
    for span, owner in zip(spans, owners):
        row_index = bisect.bisect_right(starts, span.lo) - 1
        rows[row_index].members.append(owner)

    return RowPartition(rows=rows, margin=margin)


def partition_sorted_baseline(rects: Sequence[Rect], rule_distance: int) -> RowPartition:
    """Row partition using the sort-based merger (ablation baseline)."""
    return partition_rects(rects, rule_distance, merger=merge_intervals_sorted)
