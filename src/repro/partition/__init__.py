"""Adaptive row-based layout partition (paper §IV-B)."""

from .rows import (
    Row,
    RowPartition,
    margin_for_rule,
    partition_rects,
    partition_sorted_baseline,
)

__all__ = [
    "Row",
    "RowPartition",
    "margin_for_rule",
    "partition_rects",
    "partition_sorted_baseline",
]
