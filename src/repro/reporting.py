"""Violation-lifecycle report logic shared by the core and the HTTP client.

Everything here operates on the *plain-dict* report payload that
:meth:`~repro.core.results.CheckReport.to_json` emits (and that a ``repro
serve`` daemon returns verbatim): CSV rendering, human summaries, severity
filtering, waiver application, and hierarchical instance dedup. The core's
:class:`~repro.core.results.CheckReport` methods and the client's
``report_json_*`` helpers both delegate to these functions, so a client
post-processing a served payload reproduces the local CLI's bytes by
construction — there is exactly one implementation of every output format.

Stdlib-only on purpose: :mod:`repro.client` imports this module without
pulling numpy or the geometry stack.

Vocabulary
----------

*Severity* (``error``/``warning``) lives on the rule and flows into each
result entry. *Waived* is a per-violation flag: a waived violation stays in
the report (so spliced incremental reports remain byte-identical to cold
ones — see ``docs/algorithms.md`` §8h) but does not block the exit code.
*Blocking* violations are the unwaived error-severity ones; they alone make
a check fail.

Waiver records
--------------

A waiver is a JSON object naming a rule (or ``"*"``) plus an anchor:

``{"rule": name, "marker": "<sha256>"}``
    Geometry-anchored: the digest of the violating marker's content
    (:func:`marker_digest` — kind, layers, region, measurements). Survives
    any edit that does not change the violation itself.
``{"rule": name, "region": [xlo, ylo, xhi, yhi]}``
    Region-anchored: waives violations whose marker lies fully inside the
    box (boundary contact counts as inside, matching
    ``Rect.contains_rect``).

An optional ``"reason"`` field is carried through untouched.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "apply_waivers_payload",
    "csv_from_payload",
    "csv_quote",
    "dedup_instances",
    "filter_violations_payload",
    "marker_digest",
    "payload_totals",
    "summary_from_payload",
]

#: Severity labels a rule may carry (KiCad-MCP's DRC vocabulary).
SEVERITIES = ("error", "warning")

CSV_HEADER = (
    "rule,kind,layer,other_layer,xlo,ylo,xhi,yhi,measured,required,"
    "severity,waived,instances"
)


# ---------------------------------------------------------------------------
# CSV (RFC 4180)
# ---------------------------------------------------------------------------


def csv_quote(field: str) -> str:
    """Quote one CSV field per RFC 4180 when it needs it.

    Rule names are the only free-form CSV column; a deck (or the planned
    deck DSL) may legally name a rule with commas or quotes, which would
    otherwise shear the column layout.
    """
    if any(c in field for c in ',"\r\n'):
        return '"' + field.replace('"', '""') + '"'
    return field


def _instance_key(violation: Dict[str, Any]) -> Tuple:
    """Translation-invariant signature of one violation.

    Hierarchical repeats — the same cell-level violation stamped out by
    thousands of placements — are identical up to translation: same kind,
    layers, marker extent, and measurements. Grouping by this key collapses
    them to one exemplar with an instance count.
    """
    xlo, ylo, xhi, yhi = violation["region"]
    other = violation.get("other_layer")
    return (
        violation["kind"],
        violation["layer"],
        -1 if other is None else other,
        xhi - xlo,
        yhi - ylo,
        violation["measured"],
        violation["required"],
        bool(violation.get("waived", False)),
    )


def dedup_instances(
    violations: Sequence[Dict[str, Any]],
) -> List[Tuple[Dict[str, Any], int]]:
    """Collapse hierarchical repeats to ``(exemplar, instance_count)`` pairs.

    The input must be in canonical violation order (reports always are);
    the exemplar of each group is its first — lowest-sorting — member, so
    the collapsed rows are deterministic across backends and sessions.
    """
    groups: "Dict[Tuple, List]" = {}
    order: List[Tuple] = []
    for violation in violations:
        key = _instance_key(violation)
        entry = groups.get(key)
        if entry is None:
            groups[key] = [violation, 1]
            order.append(key)
        else:
            entry[1] += 1
    return [(groups[key][0], groups[key][1]) for key in order]


def csv_from_payload(
    payload: Dict[str, Any], *, expand_instances: bool = False
) -> str:
    """The CSV marker dump of a report payload.

    By default hierarchical repeats collapse to one exemplar row whose
    ``instances`` column carries the repeat count; ``expand_instances=True``
    emits every marker as its own row (``instances`` = 1). Both forms are
    deterministic, so equal reports produce equal CSV bytes either way.
    """
    lines = [CSV_HEADER]
    for result in payload["results"]:
        rule = csv_quote(result["rule"])
        severity = result.get("severity", "error")
        if expand_instances:
            rows: Iterable[Tuple[Dict[str, Any], int]] = (
                (v, 1) for v in result["violations"]
            )
        else:
            rows = dedup_instances(result["violations"])
        for v, count in rows:
            other = v.get("other_layer")
            xlo, ylo, xhi, yhi = v["region"]
            lines.append(
                f"{rule},{v['kind']},{v['layer']},"
                f"{'' if other is None else other},"
                f"{xlo},{ylo},{xhi},{yhi},{v['measured']},{v['required']},"
                f"{severity},{1 if v.get('waived') else 0},{count}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Totals and summaries
# ---------------------------------------------------------------------------


def payload_totals(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Recompute the summary counters of a payload from its violations.

    Used after client-side waiver application so the re-dumped JSON matches
    a locally waived report byte for byte.
    """
    total = waived = blocking = 0
    for result in payload["results"]:
        severity = result.get("severity", "error")
        for v in result["violations"]:
            total += 1
            if v.get("waived"):
                waived += 1
            elif severity == "error":
                blocking += 1
    return {
        "total_violations": total,
        "total_waived": waived,
        "blocking_violations": blocking,
        "passed": total == 0,
    }


def summary_from_payload(payload: Dict[str, Any]) -> str:
    """Human summary of a report payload (the CLI's default format)."""
    totals = payload_totals(payload)
    total_seconds = sum(result["seconds"] for result in payload["results"])
    headline = (
        f"DRC report for {payload['layout']!r} ({payload['mode']} mode): "
        f"{totals['total_violations']} violations"
    )
    if totals["total_waived"] or totals["blocking_violations"] != totals[
        "total_violations"
    ]:
        headline += (
            f" ({totals['blocking_violations']} blocking, "
            f"{totals['total_waived']} waived)"
        )
    headline += f", {total_seconds * 1e3:.2f} ms"
    lines = [headline]
    for result in payload["results"]:
        count = len(result["violations"])
        waived = sum(1 for v in result["violations"] if v.get("waived"))
        distinct = len(dedup_instances(result["violations"]))
        if count == 0:
            status = "PASS"
        else:
            status = f"{count} violations"
            if distinct < count:
                status += f", {distinct} distinct"
            if waived:
                status += f", {waived} waived"
        tag = " [warning]" if result.get("severity", "error") == "warning" else ""
        lines.append(
            f"  {result['rule']}{tag}: {status} "
            f"({result['seconds'] * 1e3:.2f} ms)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------


def marker_digest(violation: Dict[str, Any]) -> str:
    """Content digest of one violation marker (the waiver anchor).

    Hashes the fields that define the violation — kind, layers, marker
    region, measured/required — exactly as the pack store's content keys
    hash geometry: value-based, format-salted, independent of report order,
    severity, or the waived flag. Two runs that produce the same violation
    produce the same digest, however much unrelated geometry changed.
    """
    other = violation.get("other_layer")
    xlo, ylo, xhi, yhi = violation["region"]
    text = (
        f"marker:v1;kind={violation['kind']};layer={violation['layer']};"
        f"other={'' if other is None else other};"
        f"region={xlo},{ylo},{xhi},{yhi};"
        f"measured={violation['measured']};required={violation['required']}"
    )
    return hashlib.sha256(text.encode("ascii")).hexdigest()


class WaiverFormatError(ValueError):
    """A waiver record that is neither marker- nor region-anchored."""


def _waiver_predicates(waivers: Sequence[Dict[str, Any]]):
    """Compile waiver records into ``(rule_target, match(vdict))`` pairs."""
    compiled = []
    for waiver in waivers:
        target = waiver.get("rule", "*")
        marker = waiver.get("marker")
        region = waiver.get("region")
        if marker is not None:
            if not isinstance(marker, str):
                raise WaiverFormatError(
                    f"waiver marker must be a digest string: {waiver}"
                )
            compiled.append((target, _marker_match(marker)))
        elif region is not None:
            if not isinstance(region, (list, tuple)) or len(region) != 4:
                raise WaiverFormatError(
                    f"waiver region must be [xlo, ylo, xhi, yhi]: {waiver}"
                )
            compiled.append((target, _region_match(tuple(region))))
        else:
            raise WaiverFormatError(
                f"waiver needs a 'marker' digest or a 'region' box: {waiver}"
            )
    return compiled


def _marker_match(digest: str):
    def match(violation: Dict[str, Any]) -> bool:
        return marker_digest(violation) == digest

    return match


def _region_match(box: Tuple[int, int, int, int]):
    wxlo, wylo, wxhi, wyhi = box

    def match(violation: Dict[str, Any]) -> bool:
        # Full containment, boundary allowed — Rect.contains_rect semantics.
        xlo, ylo, xhi, yhi = violation["region"]
        return wxlo <= xlo and wylo <= ylo and xhi <= wxhi and yhi <= wyhi

    return match


def apply_waivers_payload(
    payload: Dict[str, Any], waivers: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """A new payload with matching violations marked ``waived``.

    Violations are retained, never dropped: the marked payload has the same
    violation set (and therefore splices, diffs, and dedups identically to
    the unwaived one) — only the ``waived`` flags and the summary totals
    change. The input payload is untouched.
    """
    compiled = _waiver_predicates(waivers)

    out = dict(payload)
    out["results"] = []
    for result in payload["results"]:
        entry = dict(result)
        entry["violations"] = []
        for violation in result["violations"]:
            v = dict(violation)
            if not v.get("waived") and any(
                target in ("*", result["rule"]) and match(v)
                for target, match in compiled
            ):
                v["waived"] = True
            entry["violations"].append(v)
        out["results"].append(entry)
    out.update(payload_totals(out))
    return out


# ---------------------------------------------------------------------------
# Violation filtering (the /violations payload, locally reproducible)
# ---------------------------------------------------------------------------


def filter_violations_payload(
    payload: Dict[str, Any],
    *,
    severity: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    bbox: Optional[Sequence[int]] = None,
    include_waived: bool = True,
) -> Dict[str, Any]:
    """Flat violation listing filtered by severity / rule / bbox.

    The exact shape ``GET /sessions/<id>/violations`` serves (minus the
    session envelope), computable from any report payload or marker
    database — so served filtering and local CLI filtering are the same
    code path. ``bbox`` keeps violations whose marker *overlaps* the box
    (closed-region semantics, touching counts — ``Rect.overlaps``).
    """
    wanted = set(rules) if rules else None
    items: List[Dict[str, Any]] = []
    for result in payload["results"]:
        sev = result.get("severity", "error")
        if severity is not None and sev != severity:
            continue
        if wanted is not None and result["rule"] not in wanted:
            continue
        for violation in result["violations"]:
            if not include_waived and violation.get("waived"):
                continue
            if bbox is not None and not _boxes_overlap(
                bbox, violation["region"]
            ):
                continue
            entry = dict(violation)
            entry.setdefault("waived", False)
            entry["rule"] = result["rule"]
            entry["severity"] = sev
            items.append(entry)
    return {"total": len(items), "violations": items}


def _boxes_overlap(a: Sequence[int], b: Sequence[int]) -> bool:
    axlo, aylo, axhi, ayhi = a
    bxlo, bylo, bxhi, byhi = b
    if axlo > axhi or aylo > ayhi or bxlo > bxhi or bylo > byhi:
        return False
    return axlo <= bxhi and bxlo <= axhi and aylo <= byhi and bylo <= ayhi
