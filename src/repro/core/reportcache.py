"""Persistent DRC report cache beside the pack store.

A finished :class:`~repro.core.results.CheckReport` is a pure function of
(rule deck, layout geometry), so the same content-addressing that backs the
pack store can cache whole reports: the key combines a digest of the rule
deck with the per-layer geometry digests of the layout. The incremental
engine (:meth:`Engine.recheck`) uses the cached report of the *old* version
as the splice baseline and stores the spliced report under the *new*
digests, so chained edits keep hitting.

Reports are JSON files under ``<store-root>/reports/`` — the same schema
:meth:`CheckReport.to_json` emits, written atomically. A report only
deserialises against the live deck (violations carry no predicates; the
rule objects come from the caller and are matched by name), so a cache hit
requires the deck digest to match, which guarantees the names align.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, List, Optional, Sequence

from .packstore import PackStore, store_key
from .results import CheckReport, CheckResult, violation_from_json
from .rules import Rule

__all__ = ["ReportCache", "deck_digest", "report_key"]


def deck_digest(rules: Sequence[Rule]) -> Optional[str]:
    """Content digest of a rule deck, or None if it cannot be fingerprinted.

    Structural fields hash by value; ``ensures`` predicates hash by their
    pickled bytes. A predicate that cannot be pickled (a lambda, a closure)
    has no stable identity, so the whole deck becomes uncacheable — honest
    misses instead of stale hits.
    """
    hasher = hashlib.sha256()
    for rule in rules:
        hasher.update(
            repr(
                (
                    rule.name,
                    rule.kind.value,
                    rule.layer,
                    rule.other_layer,
                    rule.value,
                    rule.severity,
                )
            ).encode("utf-8")
        )
        if rule.predicate is not None:
            try:
                blob = pickle.dumps(rule.predicate)
            except Exception:
                return None
            hasher.update(hashlib.sha256(blob).digest())
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def report_key(deck: str, layer_digests: Dict[int, str]) -> str:
    """Cache key of one (deck, layout-version) pair."""
    return store_key("report", deck, tuple(sorted(layer_digests.items())))


class ReportCache:
    """JSON report files in a ``reports/`` directory beside the pack store."""

    def __init__(self, store: PackStore) -> None:
        self.root = os.path.join(store.root, "reports")
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str, rules: Sequence[Rule]) -> Optional[CheckReport]:
        """The cached report rebuilt against the live deck, or None.

        ``rules`` must be the deck the key was computed from (the deck
        digest inside the key enforces it); results come back in deck
        order with the caller's Rule objects attached.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        by_name = {rule.name: rule for rule in rules}
        results: List[CheckResult] = []
        try:
            entries = {entry["rule"]: entry for entry in payload["results"]}
            if set(entries) != set(by_name):
                self.misses += 1
                return None
            for rule in rules:
                entry = entries[rule.name]
                results.append(
                    CheckResult(
                        rule=rule,
                        violations=[
                            violation_from_json(v) for v in entry["violations"]
                        ],
                        seconds=entry["seconds"],
                        stats=dict(entry["stats"]),
                    )
                )
            report = CheckReport(payload["layout"], payload["mode"], results)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def entries(self) -> List[tuple]:
        """``(key, nbytes)`` of every cached report (empty if no directory)."""
        found = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return found
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                found.append((name[: -len(".json")], os.path.getsize(path)))
            except OSError:
                continue
        return found

    def total_bytes(self) -> int:
        return sum(nbytes for _, nbytes in self.entries())

    def clear(self) -> int:
        """Delete every cached report; returns how many were removed."""
        removed = 0
        for key, _ in self.entries():
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                continue
        return removed

    def save(self, key: str, report: CheckReport) -> None:
        """Atomically persist one report (concurrent writers race benignly)."""
        os.makedirs(self.root, exist_ok=True)
        data = report.to_json(indent=None)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(data)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
