"""Layout diffing: digest-driven dirty layers and minimal dirty regions.

The content-addressed pack store already proves the point: per-layer
geometry digests are a free dirtiness oracle. This module turns that into
the incremental engine's front end — compare two versions of a layout and
answer, per rule, *where* a re-check must look:

1. **Dirty layers** — :func:`~repro.core.packstore.layer_geometry_digest`
   per layer of both versions; equal digests mean the layer cannot have
   changed anywhere in the hierarchy, so every rule confined to it keeps
   its cached result verbatim.
2. **Dirty rects** — for each dirty layer, a hierarchical walk over the
   cell *definitions* finds the minimal changed geometry: the symmetric
   difference of each cell's local polygon multiset (per changed polygon,
   its MBR) and of its reference multiset (per added/removed/moved
   instance, the placed subtree MBR from the version that carries it).
   Local dirt propagates to the top frame through the references common to
   both versions — AREF grids propagate in compact form via
   :func:`~repro.hierarchy.tree.reference_mbr`, never expanded.
3. **Per-rule regions** — each rule's dirty rects are inflated by its
   :func:`~repro.core.plan.interaction_distance` halo and coalesced into a
   :class:`~repro.spatial.regions.RegionSet`. Rules of clean layers get
   ``None`` (reuse the cached result); globally coupled kinds (coloring)
   get :data:`FULL_RECHECK` when their layer is dirty.

Soundness (the splice depends on it): a violation whose marker does not
overlap a rule's dirty region set is byte-identical between the two
versions. See ``docs/algorithms.md`` §8e for the per-kind argument.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..geometry import EMPTY_RECT, Rect
from ..hierarchy.tree import HierarchyTree, reference_mbr
from ..layout.library import Layout
from ..spatial.regions import RegionSet
from .packstore import layer_geometry_digest
from .plan import interaction_distance
from .rules import Rule

__all__ = ["FULL_RECHECK", "LayoutDiff", "diff_layouts", "rule_regions"]


class _FullRecheck:
    """Sentinel: the rule must be fully re-run (no finite dirty region)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FULL_RECHECK"


#: Returned by :meth:`LayoutDiff.regions_for` when a rule's result cannot
#: be spliced and the whole rule must re-run against the new layout.
FULL_RECHECK = _FullRecheck()


@dataclasses.dataclass
class LayoutDiff:
    """The edit between two layout versions, as the incremental engine
    consumes it: per-layer digests plus top-frame dirty region sets."""

    old_digests: Dict[int, str]
    new_digests: Dict[int, str]
    #: Dirty layer -> coalesced top-frame dirty rects (no halo applied).
    dirty: Dict[int, RegionSet]
    #: True when the versions cannot be aligned (different top cells):
    #: everything is considered dirty and every rule re-runs fully.
    full: bool = False

    @property
    def is_clean(self) -> bool:
        return not self.full and not self.dirty

    def dirty_layers(self) -> List[int]:
        return sorted(self.dirty)

    def regions_for(
        self, rule: Rule
    ) -> Union[None, _FullRecheck, RegionSet]:
        """Where ``rule`` must be re-checked.

        ``None``
            No involved layer changed — the cached result is exact.
        :data:`FULL_RECHECK`
            The rule is globally coupled (interaction distance ``None``)
            or the diff could not be localised; re-run it completely.
        :class:`RegionSet`
            Re-check these windows and splice into the cached report:
            the dirty rects of every involved layer, inflated by the
            rule's interaction halo.
        """
        if self.full:
            return FULL_RECHECK
        if rule.layer is None:
            involved = self.dirty_layers()  # all-layer rules see every edit
        else:
            involved = [
                layer
                for layer in (rule.layer, rule.other_layer)
                if layer is not None and layer in self.dirty
            ]
        if not involved:
            return None
        halo = interaction_distance(rule)
        if halo is None:
            return FULL_RECHECK
        regions = RegionSet.of(
            [rect for layer in involved for rect in self.dirty[layer].rects]
        )
        return regions.inflated(halo)


# ---------------------------------------------------------------------------
# Cell-level diffing


def _ref_key(ref) -> Tuple:
    """Value identity of one reference (name + placement + repetition)."""
    return (ref.cell_name, ref.transform, ref.repetition)


def _cell_local_dirty(old_cell, new_cell, layer: int) -> List[Rect]:
    """MBRs of the symmetric difference of two cells' local polygons."""
    old_polys = Counter(old_cell.polygons(layer) if old_cell else ())
    new_polys = Counter(new_cell.polygons(layer) if new_cell else ())
    rects: List[Rect] = []
    for polygon, count in old_polys.items():
        if new_polys.get(polygon, 0) != count:
            rects.append(polygon.mbr)
    for polygon, count in new_polys.items():
        if old_polys.get(polygon, 0) != count:
            rects.append(polygon.mbr)
    return rects


def _cell_ref_dirty(
    old_cell, new_cell, layer: int, old_tree: HierarchyTree, new_tree: HierarchyTree
) -> Tuple[List[Rect], List]:
    """Dirty rects of changed references, plus the references common to both.

    A reference counts as touching the layer if its subtree carries the
    layer in *either* version (a child gaining the layer changes geometry
    placed through an otherwise identical reference chain — the child's own
    local diff produces the dirt, but the reference must still propagate).
    """

    def reaches(ref) -> bool:
        return _has_layer(old_tree, ref.cell_name, layer) or _has_layer(
            new_tree, ref.cell_name, layer
        )

    old_refs = Counter(
        _ref_key(r) for r in (old_cell.references if old_cell else ()) if reaches(r)
    )
    new_refs = Counter(
        _ref_key(r) for r in (new_cell.references if new_cell else ()) if reaches(r)
    )
    by_key = {}
    for ref in (old_cell.references if old_cell else ()):
        by_key.setdefault(_ref_key(ref), ref)
    for ref in (new_cell.references if new_cell else ()):
        by_key.setdefault(_ref_key(ref), ref)

    rects: List[Rect] = []
    common = []
    for key, ref in by_key.items():
        old_count = old_refs.get(key, 0)
        new_count = new_refs.get(key, 0)
        if old_count and new_count:
            common.append(ref)
        if old_count != new_count:
            # Added or removed instances: the whole placed subtree changed.
            # Use the MBR from the version that actually carries it.
            tree = old_tree if old_count > new_count else new_tree
            child_mbr = _layer_mbr(tree, ref.cell_name, layer)
            if not child_mbr.is_empty:
                rects.append(reference_mbr(ref, child_mbr))
    return rects, common


def _layer_dirty_rects(
    old: Layout, new: Layout, layer: int, old_tree: HierarchyTree, new_tree: HierarchyTree
) -> List[Rect]:
    """Top-frame dirty rects of one layer (both versions' top cells agree)."""
    names = sorted(set(old.cells) | set(new.cells))
    local_dirty: Dict[str, List[Rect]] = {}
    common_refs: Dict[str, List] = {}
    for name in names:
        old_cell = old.cells.get(name)
        new_cell = new.cells.get(name)
        rects = _cell_local_dirty(old_cell, new_cell, layer)
        ref_rects, common = _cell_ref_dirty(
            old_cell, new_cell, layer, old_tree, new_tree
        )
        rects.extend(ref_rects)
        local_dirty[name] = rects
        common_refs[name] = common

    # Propagate each cell's local dirt to the top frame through the shared
    # references (changed references are already fully dirty above, so only
    # identical placements need the recursion). Memoised per definition —
    # the walk is hierarchical, like the digest.
    memo: Dict[str, List[Rect]] = {}

    def subtree_dirty(name: str) -> List[Rect]:
        cached = memo.get(name)
        if cached is not None:
            return cached
        memo[name] = []  # cycle guard; layouts are DAGs, but stay safe
        rects = list(local_dirty.get(name, ()))
        for ref in common_refs.get(name, ()):
            for rect in subtree_dirty(ref.cell_name):
                rects.append(reference_mbr(ref, rect))
        memo[name] = rects
        return rects

    return subtree_dirty(new_tree.top.name)


def diff_layouts(
    old: Layout,
    new: Layout,
    *,
    old_tree: Optional[HierarchyTree] = None,
    new_tree: Optional[HierarchyTree] = None,
    layers: Optional[Sequence[int]] = None,
) -> LayoutDiff:
    """Diff two layout versions into per-layer dirty region sets.

    ``layers`` restricts the comparison (e.g. to the layers a rule deck
    touches); by default every layer present in either version is diffed.
    Digest comparison is hierarchical — a clean layer costs one definition
    walk, never a flatten.
    """
    old_tree = old_tree if old_tree is not None else HierarchyTree(old)
    new_tree = new_tree if new_tree is not None else HierarchyTree(new)

    if layers is None:
        layers = sorted(set(old.layers()) | set(new.layers()))
    old_digests = {L: layer_geometry_digest(old_tree, L) for L in layers}
    new_digests = {L: layer_geometry_digest(new_tree, L) for L in layers}

    if old_tree.top.name != new_tree.top.name:
        return LayoutDiff(old_digests, new_digests, dirty={}, full=True)

    dirty: Dict[int, RegionSet] = {}
    for layer in layers:
        if old_digests[layer] == new_digests[layer]:
            continue
        rects = _layer_dirty_rects(old, new, layer, old_tree, new_tree)
        regions = RegionSet.of(rects)
        if regions.is_empty:
            # Digests differ but no rect was localised (should not happen;
            # degrade honestly rather than splice unsoundly).
            return LayoutDiff(old_digests, new_digests, dirty={}, full=True)
        dirty[layer] = regions
    return LayoutDiff(old_digests, new_digests, dirty=dirty)


def rule_regions(
    diff: LayoutDiff, rules: Sequence[Rule]
) -> Dict[str, Union[None, _FullRecheck, RegionSet]]:
    """Per-rule re-check regions for a whole deck (keyed by rule name)."""
    return {rule.name: diff.regions_for(rule) for rule in rules}


def _layer_mbr(tree: HierarchyTree, cell_name: str, layer: int) -> Rect:
    """Like ``tree.layer_mbr``, but empty for cells the version lacks."""
    try:
        return tree.layer_mbr(cell_name, layer)
    except KeyError:
        return EMPTY_RECT


def _has_layer(tree: HierarchyTree, cell_name: str, layer: int) -> bool:
    return not _layer_mbr(tree, cell_name, layer).is_empty
