"""Violation marker database: persist and reload check reports.

The interface layer's "result output" (paper §V-A): reports serialize to a
versioned JSON marker database — violations with rule names, kinds, layers,
regions, measurements, severities, waived flags, and per-rule stats — and
reload into the same :class:`~repro.checks.base.Violation` objects, so
stored markers compare equal to freshly computed ones (waiver flows,
regression diffing via ``repro diff``).

What round-trips and what cannot
--------------------------------

Violations, rule structure (kind/layers/value/name/severity), per-rule
``seconds``, and the ``stats`` counters all round-trip exactly. Two things
cannot:

* ``ensures`` **predicates** — callables have no JSON form; reloaded rules
  carry an always-true stand-in (the stored violations are the record of
  what failed).
* **Phase profiles** — ``CheckResult.profile`` is a live timing object tied
  to the run that produced it; reloaded results have ``profile=None``.

Format history: version 1 (through PR 9) lacked ``severity``, ``stats``,
and ``waived``; version-1 files still load, with defaults (``error``,
``{}``, unwaived). New files are written as version 2.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Union

from ..checks.base import Violation, ViolationKind
from ..errors import ReproError
from ..geometry import Rect
from ..reporting import apply_waivers_payload, marker_digest
from .results import (
    CheckReport,
    CheckResult,
    violation_from_json,
    violation_to_json,
)
from .rules import Rule, RuleKind

#: Version written by :func:`save_markers` (and for waiver files).
FORMAT_VERSION = 2

#: Versions :func:`load_markers` accepts.
SUPPORTED_FORMATS = (1, 2)


class MarkerError(ReproError):
    """Malformed marker database."""


def report_to_dict(report: CheckReport) -> Dict:
    """JSON-ready representation of a report."""
    return {
        "format": FORMAT_VERSION,
        "layout": report.layout_name,
        "mode": report.mode,
        "results": [
            {
                "rule": result.rule.name,
                "kind": result.rule.kind.value,
                "layer": result.rule.layer,
                "other_layer": result.rule.other_layer,
                "value": result.rule.value,
                "severity": result.rule.severity,
                "seconds": result.seconds,
                "stats": {k: result.stats[k] for k in sorted(result.stats)},
                "violations": [violation_to_json(v) for v in result.violations],
            }
            for result in report.results
        ],
    }


def save_markers(report: CheckReport, path: Union[str, "os.PathLike"]) -> None:
    """Write a report's marker database to ``path`` (JSON)."""
    with open(path, "w", encoding="ascii") as f:
        json.dump(report_to_dict(report), f, indent=1, sort_keys=True)


def load_markers(path: Union[str, "os.PathLike"]) -> CheckReport:
    """Reload a marker database written by :func:`save_markers`."""
    with open(path, "r", encoding="ascii") as f:
        data = json.load(f)
    return report_from_dict(data)


def report_from_dict(data: Dict) -> CheckReport:
    if data.get("format") not in SUPPORTED_FORMATS:
        raise MarkerError(f"unsupported marker format {data.get('format')!r}")
    results: List[CheckResult] = []
    for entry in data["results"]:
        try:
            kind = RuleKind(entry["kind"])
        except ValueError:
            raise MarkerError(f"unknown rule kind {entry['kind']!r}") from None
        rule = _rebuild_rule(kind, entry)
        try:
            violations = [_rebuild_violation(v) for v in entry["violations"]]
        except (KeyError, TypeError) as error:
            raise MarkerError(f"malformed violation entry: {error}") from None
        results.append(
            CheckResult(
                rule=rule,
                violations=violations,
                seconds=entry["seconds"],
                stats=dict(entry.get("stats") or {}),
            )
        )
    return CheckReport(data["layout"], data["mode"], results)


def _rebuild_rule(kind: RuleKind, entry: Dict) -> Rule:
    severity = entry.get("severity", "error")
    if kind is RuleKind.ENSURES:
        # Callables cannot round-trip; stand in with an always-true predicate
        # (the stored violations are the record of what failed).
        return Rule(
            kind=kind, layer=entry["layer"], predicate=lambda p: True,
            severity=severity,
        ).named(entry["rule"])
    return Rule(
        kind=kind,
        layer=entry["layer"],
        value=entry["value"],
        other_layer=entry["other_layer"],
        severity=severity,
    ).named(entry["rule"])


def _rebuild_violation(v: Dict) -> Violation:
    try:
        kind = ViolationKind(v["kind"])
    except ValueError:
        raise MarkerError(f"unknown violation kind {v['kind']!r}") from None
    return Violation(
        kind=kind,
        layer=v["layer"],
        other_layer=v["other_layer"],
        region=Rect(*v["region"]),
        measured=v["measured"],
        required=v["required"],
        waived=bool(v.get("waived", False)),
    )


def diff_markers(
    before: CheckReport, after: CheckReport
) -> Dict[str, Dict[str, int]]:
    """Per-rule regression diff: fixed / new / unchanged violation counts.

    ``new_waived`` counts how many of the new violations are waived in
    ``after`` — regressions a waiver already covers (e.g. geometry-anchored
    waivers of known-bad markers), which ``repro diff`` does not fail on.
    Waiver flags never affect set membership itself (violation equality
    ignores them), so waiving an existing violation is "unchanged", not
    "fixed".
    """
    out: Dict[str, Dict[str, int]] = {}
    before_by_rule = {r.rule.name: r.violation_set() for r in before.results}
    after_by_rule = {r.rule.name: r.violation_set() for r in after.results}
    waived_after = {
        v: v.waived for r in after.results for v in r.violations
    }
    for name in sorted(set(before_by_rule) | set(after_by_rule)):
        old = before_by_rule.get(name, frozenset())
        new = after_by_rule.get(name, frozenset())
        fresh = new - old
        out[name] = {
            "fixed": len(old - new),
            "new": len(fresh),
            "new_waived": sum(1 for v in fresh if waived_after.get(v, False)),
            "unchanged": len(old & new),
        }
    return out


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------


def violation_digest(violation: Violation) -> str:
    """Content digest of one violation (the geometry anchor of a waiver).

    Delegates to :func:`repro.reporting.marker_digest` over the violation's
    JSON form, so a digest computed here matches one computed client-side
    from a served report payload.
    """
    return marker_digest(violation_to_json(violation))


def apply_waivers(report: CheckReport, waivers: List[Dict]) -> CheckReport:
    """Mark a report's violations waived where waiver records match.

    A waiver names a rule (or ``"*"``) plus an anchor — a ``marker``
    content digest (:func:`violation_digest`) or a ``region`` box that must
    fully contain the marker (boundary contact counts). Matching violations
    are *retained* with ``waived=True``, never dropped: the waived report
    has the same violation set as the raw one, so incremental splices and
    regression diffs are oblivious to waiver state, and waived markers stay
    visible in every output format. Returns a new report; the input is
    untouched.
    """
    from ..reporting import WaiverFormatError

    try:
        marked = apply_waivers_payload(
            {
                "results": [
                    {
                        "rule": result.rule.name,
                        "violations": [
                            violation_to_json(v) for v in result.violations
                        ],
                    }
                    for result in report.results
                ]
            },
            waivers,
        )
    except WaiverFormatError as error:
        raise MarkerError(str(error)) from None
    results = []
    for result, entry in zip(report.results, marked["results"]):
        results.append(
            CheckResult(
                rule=result.rule,
                violations=[
                    v.waive() if flags["waived"] and not v.waived else v
                    for v, flags in zip(result.violations, entry["violations"])
                ],
                seconds=result.seconds,
                profile=result.profile,
                stats=dict(result.stats),
            )
        )
    return CheckReport(report.layout_name, report.mode, results)


def waivers_for(
    report: CheckReport,
    *,
    rules: Optional[Sequence[str]] = None,
    region: Optional[Rect] = None,
    reason: Optional[str] = None,
) -> List[Dict]:
    """Geometry-anchored waiver records for a report's current violations.

    Selects violations by rule name(s) and/or a region their marker must
    overlap, and emits one ``{"rule", "marker"}`` record per distinct
    marker digest — the persistent form: anchored to the violation's
    content, these waivers survive any edit that does not change the
    violation itself. Already-waived violations are skipped (they are
    covered by whatever waived them).
    """
    wanted = set(rules) if rules else None
    records: List[Dict] = []
    seen = set()
    for result in report.results:
        if wanted is not None and result.rule.name not in wanted:
            continue
        for violation in result.violations:
            if violation.waived:
                continue
            if region is not None and not region.overlaps(violation.region):
                continue
            digest = violation_digest(violation)
            key = (result.rule.name, digest)
            if key in seen:
                continue
            seen.add(key)
            record: Dict = {"rule": result.rule.name, "marker": digest}
            if reason:
                record["reason"] = reason
            records.append(record)
    return records


def save_waivers(waivers: List[Dict], path: Union[str, "os.PathLike"]) -> None:
    """Persist a waiver list as JSON."""
    with open(path, "w", encoding="ascii") as f:
        json.dump({"format": FORMAT_VERSION, "waivers": waivers}, f, indent=1)


def load_waivers(path: Union[str, "os.PathLike"]) -> List[Dict]:
    """Reload a waiver list written by :func:`save_waivers`."""
    with open(path, "r", encoding="ascii") as f:
        data = json.load(f)
    if data.get("format") not in SUPPORTED_FORMATS or "waivers" not in data:
        raise MarkerError("unsupported waiver file")
    return data["waivers"]
