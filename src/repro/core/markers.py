"""Violation marker database: persist and reload check reports.

The interface layer's "result output" (paper §V-A): reports serialize to a
versioned JSON marker database — violations with rule names, kinds, layers,
regions, and measurements — and reload into the same
:class:`~repro.checks.base.Violation` objects, so stored markers compare
equal to freshly computed ones (waiver flows, regression diffing).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Union

from ..checks.base import Violation, ViolationKind
from ..errors import ReproError
from ..geometry import Rect
from .results import CheckReport, CheckResult
from .rules import Rule, RuleKind

FORMAT_VERSION = 1


class MarkerError(ReproError):
    """Malformed marker database."""


def report_to_dict(report: CheckReport) -> Dict:
    """JSON-ready representation of a report."""
    return {
        "format": FORMAT_VERSION,
        "layout": report.layout_name,
        "mode": report.mode,
        "results": [
            {
                "rule": result.rule.name,
                "kind": result.rule.kind.value,
                "layer": result.rule.layer,
                "other_layer": result.rule.other_layer,
                "value": result.rule.value,
                "seconds": result.seconds,
                "violations": [
                    {
                        "kind": v.kind.value,
                        "layer": v.layer,
                        "other_layer": v.other_layer,
                        "region": [v.region.xlo, v.region.ylo, v.region.xhi, v.region.yhi],
                        "measured": v.measured,
                        "required": v.required,
                    }
                    for v in result.violations
                ],
            }
            for result in report.results
        ],
    }


def save_markers(report: CheckReport, path: Union[str, "os.PathLike"]) -> None:
    """Write a report's marker database to ``path`` (JSON)."""
    with open(path, "w", encoding="ascii") as f:
        json.dump(report_to_dict(report), f, indent=1, sort_keys=True)


def load_markers(path: Union[str, "os.PathLike"]) -> CheckReport:
    """Reload a marker database written by :func:`save_markers`."""
    with open(path, "r", encoding="ascii") as f:
        data = json.load(f)
    return report_from_dict(data)


def report_from_dict(data: Dict) -> CheckReport:
    if data.get("format") != FORMAT_VERSION:
        raise MarkerError(f"unsupported marker format {data.get('format')!r}")
    results: List[CheckResult] = []
    for entry in data["results"]:
        try:
            kind = RuleKind(entry["kind"])
        except ValueError:
            raise MarkerError(f"unknown rule kind {entry['kind']!r}") from None
        rule = _rebuild_rule(kind, entry)
        violations = [_rebuild_violation(v) for v in entry["violations"]]
        results.append(
            CheckResult(rule=rule, violations=violations, seconds=entry["seconds"])
        )
    return CheckReport(data["layout"], data["mode"], results)


def _rebuild_rule(kind: RuleKind, entry: Dict) -> Rule:
    if kind is RuleKind.ENSURES:
        # Callables cannot round-trip; stand in with an always-true predicate
        # (the stored violations are the record of what failed).
        return Rule(
            kind=kind, layer=entry["layer"], predicate=lambda p: True
        ).named(entry["rule"])
    return Rule(
        kind=kind,
        layer=entry["layer"],
        value=entry["value"],
        other_layer=entry["other_layer"],
    ).named(entry["rule"])


def _rebuild_violation(v: Dict) -> Violation:
    try:
        kind = ViolationKind(v["kind"])
    except ValueError:
        raise MarkerError(f"unknown violation kind {v['kind']!r}") from None
    return Violation(
        kind=kind,
        layer=v["layer"],
        other_layer=v["other_layer"],
        region=Rect(*v["region"]),
        measured=v["measured"],
        required=v["required"],
    )


def diff_markers(before: CheckReport, after: CheckReport) -> Dict[str, Dict[str, int]]:
    """Per-rule regression diff: fixed / new / unchanged violation counts."""
    out: Dict[str, Dict[str, int]] = {}
    before_by_rule = {r.rule.name: r.violation_set() for r in before.results}
    after_by_rule = {r.rule.name: r.violation_set() for r in after.results}
    for name in sorted(set(before_by_rule) | set(after_by_rule)):
        old = before_by_rule.get(name, frozenset())
        new = after_by_rule.get(name, frozenset())
        out[name] = {
            "fixed": len(old - new),
            "new": len(new - old),
            "unchanged": len(old & new),
        }
    return out


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------


def apply_waivers(
    report: CheckReport, waivers: List[Dict]
) -> CheckReport:
    """Filter a report through waiver records.

    A waiver is ``{"rule": name-or-"*", "region": [xlo, ylo, xhi, yhi]}``:
    violations of the named rule (or any rule for ``"*"``) whose marker lies
    fully inside the waiver region are suppressed. Returns a new report; the
    input is untouched.
    """
    boxes: List[tuple] = []
    for waiver in waivers:
        region = waiver.get("region")
        if not isinstance(region, (list, tuple)) or len(region) != 4:
            raise MarkerError(f"waiver region must be [xlo, ylo, xhi, yhi]: {waiver}")
        boxes.append((waiver.get("rule", "*"), Rect(*region)))

    def waived(rule_name: str, violation: Violation) -> bool:
        for target, box in boxes:
            if target not in ("*", rule_name):
                continue
            if box.contains_rect(violation.region):
                return True
        return False

    results = [
        CheckResult(
            rule=result.rule,
            violations=[
                v for v in result.violations if not waived(result.rule.name, v)
            ],
            seconds=result.seconds,
            profile=result.profile,
            stats=dict(result.stats),
        )
        for result in report.results
    ]
    return CheckReport(report.layout_name, report.mode, results)


def save_waivers(waivers: List[Dict], path: Union[str, "os.PathLike"]) -> None:
    """Persist a waiver list as JSON."""
    with open(path, "w", encoding="ascii") as f:
        json.dump({"format": FORMAT_VERSION, "waivers": waivers}, f, indent=1)


def load_waivers(path: Union[str, "os.PathLike"]) -> List[Dict]:
    """Reload a waiver list written by :func:`save_waivers`."""
    with open(path, "r", encoding="ascii") as f:
        data = json.load(f)
    if data.get("format") != FORMAT_VERSION or "waivers" not in data:
        raise MarkerError("unsupported waiver file")
    return data["waivers"]
