"""Persistent content-addressed pack store with zero-copy memmap reads.

The engine's expensive pre-kernel work — adaptive row partitioning and
hierarchical edge/corner/rect packing — depends only on the layout geometry
and the partition parameters, never on which backend runs or how many times
a deck is re-checked. Iterative DRC flows re-run the checker dozens of times
per layout; this module lets every run after the first skip that work.

Entries are content-addressed: the key is a SHA-256 over

* a **per-layer geometry digest** (:func:`layer_geometry_digest`) that walks
  the cell definitions reachable from the top cell and hashes every
  polygon's vertex array and every reference's placement parameters — it
  scales with the *hierarchical* size of the layout, not the flat polygon
  count, mirroring the paper's compressed representation;
* the **pack kind** (``"partition"``, ``"fused-edges"``, ...);
* every **parameter that shapes the packed bytes** (partition margin,
  ``use_rows``, rule value) plus a format-version salt.

Any geometry edit, threshold change, or layer swap therefore produces a
different key — strict invalidation by construction, no timestamps.

One entry is one file ``<root>/<key[:2]>/<key>.pack``::

    b"RPACK001" | header_len (u64 le) | JSON header | pad to 64 | payload

The JSON header records a ``meta`` dict and, per array, name/dtype/shape
and a byte offset **relative to the payload start** (so the header's own
length never feeds back into the offsets). Reads go through one
``np.memmap`` of the whole file; decoded arrays are read-only zero-copy
views into the mapping, which is what lets the multiprocess backend ship
plain ``(path, offset, shape)`` descriptors instead of copying bytes
through shared memory.

Robustness:

* **writes** land in a temp file (pid + random suffix) that is fsynced and
  ``os.replace``d into place — concurrent writers race benignly (last
  rename wins, every intermediate state is a complete file);
* **reads** validate magic, header JSON, dtypes and payload bounds; any
  mismatch deletes the entry and reports a miss, so corruption degrades to
  the cold path and the entry is rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..util import faults
from ..util.logging import get_logger

_logger = get_logger("packstore")

__all__ = [
    "FORMAT_VERSION",
    "PackStore",
    "layer_geometry_digest",
    "member_rows_from_arrays",
    "member_rows_to_arrays",
    "resolve_store",
    "store_key",
]

#: Bump whenever the on-disk layout or any serialization codec changes;
#: it is hashed into every key, so old entries simply stop matching.
FORMAT_VERSION = 1

MAGIC = b"RPACK001"

_ALIGN = 64

#: Environment variable naming a cache directory (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def _corrupt_entry(path: str) -> None:
    """Deterministically clobber an entry's header (fault injection only).

    Overwriting the ``header_len`` word makes the next read fail its bounds
    check, so the store's *real* corruption handling — count, warn, drop,
    rebuild cold, rewrite — runs, not a simulation of it.
    """
    try:
        with open(path, "r+b") as handle:
            handle.seek(len(MAGIC))
            handle.write(b"\xff" * 8)
    except OSError:  # pragma: no cover - raced with a concurrent drop
        pass


# ---------------------------------------------------------------------------
# Content keys


def store_key(*parts: Any) -> str:
    """SHA-256 content key over ``repr``-encoded parts plus the format salt.

    Parts must have stable, value-based reprs (strings, ints, bools, tuples
    of those, hex digests). The format version is always mixed in so a
    serialization change invalidates every existing entry.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{FORMAT_VERSION}".encode("ascii"))
    for part in parts:
        hasher.update(b"\x1f")
        hasher.update(repr(part).encode("utf-8"))
    return hasher.hexdigest()


def layer_geometry_digest(tree, layer: int) -> str:
    """Digest of everything on ``layer`` reachable from the tree's top cell.

    Walks cell *definitions* (each visited once, in sorted-name order for
    determinism), hashing per cell its local polygons' vertex coordinates
    and the placement parameters of every reference that can reach geometry
    on the layer. References into layer-free subtrees are pruned — adding a
    cell that never touches the layer does not invalidate its entries.
    """
    layout = tree.layout
    top = tree.top.name
    reachable = sorted(_reachable_cells(tree, layer))
    hasher = hashlib.sha256()
    hasher.update(f"layer:{layer};top:{top};".encode("utf-8"))
    for name in reachable:
        cell = layout.cell(name)
        hasher.update(f"cell:{name};".encode("utf-8"))
        for polygon in cell.polygons(layer):
            coords = np.asarray(
                [(p.x, p.y) for p in polygon.vertices], dtype=np.int64
            )
            hasher.update(b"poly:")
            hasher.update(coords.tobytes())
        for ref in cell.references:
            if tree.has_layer(ref.cell_name, layer):
                hasher.update(b"ref:")
                hasher.update(
                    repr((ref.cell_name, ref.transform, ref.repetition)).encode("utf-8")
                )
    return hasher.hexdigest()


def _reachable_cells(tree, layer: int) -> Iterator[str]:
    """Names of cells reachable from top that carry geometry on ``layer``."""
    seen = set()
    stack = [tree.top.name]
    while stack:
        name = stack.pop()
        if name in seen or not tree.has_layer(name, layer):
            continue
        seen.add(name)
        yield name
        for ref in tree.layout.cell(name).references:
            if ref.cell_name not in seen:
                stack.append(ref.cell_name)


# ---------------------------------------------------------------------------
# Row-table codec (edge/corner/rect codecs live next to their buffer types
# in hierarchy/edgepack.py)


def member_rows_to_arrays(
    rows: Sequence[Sequence[int]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Flatten a partition's member rows into (members, offsets) arrays."""
    members = np.asarray(
        [m for row in rows for m in row] or [], dtype=np.int64
    )
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    return {"members": members, "offsets": offsets}, {"num_rows": len(rows)}


def member_rows_from_arrays(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> List[List[int]]:
    """Inverse of :func:`member_rows_to_arrays`; plain Python ints so the
    decoded rows compare equal to a fresh ``RowPartition`` signature."""
    members = arrays["members"]
    offsets = arrays["offsets"]
    return [
        members[offsets[i] : offsets[i + 1]].tolist()
        for i in range(int(meta["num_rows"]))
    ]


# ---------------------------------------------------------------------------
# The store


class PackStore:
    """Content-addressed directory of memmap-readable pack entries.

    Thread-safety: the entry read/write paths are already safe to share —
    every write is build-aside + atomic ``os.replace`` and readers memmap
    whichever complete file they find. The in-memory hit/miss counters are
    deliberately lock-free ``+=`` updates (informational; a lost increment
    under two concurrent requests at worst under-counts a stat), but the
    sidecar flush in :meth:`persist_counters` is locked: its delta
    computation against ``_persisted`` is a read-modify-write that two
    handler threads closing backends at once would otherwise double-count.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._persisted: Dict[str, int] = {}
        self._persist_lock = threading.Lock()

    # -- paths --------------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pack")

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pack"):
                    yield os.path.join(shard_dir, name)

    # -- read path ----------------------------------------------------------

    def load(self, key: str, decode: Callable[[Dict[str, np.ndarray], Dict[str, Any]], Any]) -> Optional[Any]:
        """Decode the entry for ``key`` or return None (counted as a miss).

        ``decode(arrays, meta)`` receives read-only memmap views; whatever
        it returns is handed back verbatim. A decode error is treated like
        corruption: the entry is dropped so the cold path rewrites it.
        """
        loaded = self._read(key)
        if loaded is None:
            self.misses += 1
            return None
        arrays, meta, nbytes = loaded
        try:
            value = decode(arrays, meta)
        except Exception as error:
            self._corrupted(key, f"decode failed: {error!r}")
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_read += nbytes
        return value

    def _corrupted(self, key: str, reason: str) -> None:
        """Count and drop a corrupt entry (visible, not a silent miss)."""
        self.corrupt += 1
        _logger.warning(
            "dropping corrupt pack-store entry %s (%s); it will be "
            "rebuilt cold and rewritten", key[:12], reason,
        )
        self._drop(key)

    def _read(self, key: str) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, Any], int]]:
        path = self._entry_path(key)
        if os.path.exists(path) and faults.should_fire(
            faults.PACKSTORE_CORRUPT, key
        ):
            _corrupt_entry(path)
        try:
            raw = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError):
            return None
        try:
            if len(raw) < 16 or bytes(raw[:8]) != MAGIC:
                raise ValueError("bad magic")
            header_len = int(np.frombuffer(raw[8:16], dtype="<u8")[0])
            if header_len <= 0 or 16 + header_len > len(raw):
                raise ValueError("bad header length")
            header = json.loads(bytes(raw[16 : 16 + header_len]).decode("utf-8"))
            if header.get("version") != FORMAT_VERSION:
                raise ValueError("format version mismatch")
            data_start = _align(16 + header_len)
            arrays: Dict[str, np.ndarray] = {}
            for spec in header["arrays"]:
                dtype = np.dtype(str(spec["dtype"]))
                shape = tuple(int(d) for d in spec["shape"])
                offset = data_start + int(spec["offset"])
                nbytes = int(spec["nbytes"])
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                if count * dtype.itemsize != nbytes or offset + nbytes > len(raw):
                    raise ValueError("payload out of bounds")
                view = raw[offset : offset + nbytes].view(dtype).reshape(shape)
                view.flags.writeable = False
                arrays[str(spec["name"])] = view
            return arrays, dict(header.get("meta", {})), len(raw)
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
            del raw
            self._corrupted(key, str(error))
            return None

    def _drop(self, key: str) -> None:
        try:
            os.remove(self._entry_path(key))
        except FileNotFoundError:
            pass  # a concurrent reader dropped (or a clear() removed) it first
        except OSError:  # pragma: no cover - read-only store
            pass

    # -- write path ---------------------------------------------------------

    def save(self, key: str, arrays: Dict[str, np.ndarray], meta: Optional[Dict[str, Any]] = None) -> None:
        """Write an entry atomically; I/O failures are swallowed (the store
        is an accelerator, never a correctness dependency)."""
        specs = []
        cursor = 0
        ordered: List[Tuple[np.ndarray, int]] = []
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _align(cursor)
            cursor = offset + array.nbytes
            specs.append(
                {
                    "name": name,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "offset": offset,
                    "nbytes": array.nbytes,
                }
            )
            ordered.append((array, offset))
        header = json.dumps(
            {"version": FORMAT_VERSION, "meta": meta or {}, "arrays": specs},
            sort_keys=True,
        ).encode("utf-8")
        data_start = _align(16 + len(header))
        total = data_start + cursor
        path = self._entry_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:8]}.{os.getpid()}.", suffix=".tmp", dir=os.path.dirname(path)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(MAGIC)
                    handle.write(np.uint64(len(header)).tobytes())
                    handle.write(header)
                    handle.write(b"\x00" * (data_start - 16 - len(header)))
                    for array, offset in ordered:
                        handle.seek(data_start + offset)
                        handle.write(array.tobytes())
                    handle.truncate(total)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.bytes_written += total

    # -- maintenance / introspection ----------------------------------------

    def entries(self) -> List[Tuple[str, int]]:
        """(key, nbytes) for every entry on disk."""
        out = []
        for path in self._entry_paths():
            try:
                out.append((os.path.basename(path)[: -len(".pack")], os.path.getsize(path)))
            except OSError:  # pragma: no cover - raced with clear()
                pass
        return out

    @property
    def total_bytes(self) -> int:
        return sum(nbytes for _, nbytes in self.entries())

    def clear(self) -> int:
        """Remove every entry (and the counter sidecar); returns count removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.remove(path)
                removed += 1
            except OSError:  # pragma: no cover
                pass
        try:
            os.remove(os.path.join(self.root, "counters.json"))
        except OSError:
            pass
        return removed

    # -- persistent hit/miss counters ---------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def persist_counters(self) -> None:
        """Merge this process's counter deltas into ``counters.json``.

        Best-effort and idempotent: only the delta since the previous flush
        is added, so backends can call this from ``close()`` without double
        counting. The sidecar feeds ``repro cache stats`` — informational,
        racing writers at worst under-count.
        """
        with self._persist_lock:
            current = self.counters()
            delta = {
                name: value - self._persisted.get(name, 0)
                for name, value in current.items()
            }
            if not any(delta.values()):
                return
            path = os.path.join(self.root, "counters.json")
            try:
                os.makedirs(self.root, exist_ok=True)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        totals = json.load(handle)
                    if not isinstance(totals, dict):
                        totals = {}
                except (OSError, ValueError):
                    totals = {}
                for name, value in delta.items():
                    totals[name] = int(totals.get(name, 0)) + value
                fd, tmp = tempfile.mkstemp(
                    prefix=".counters.", suffix=".tmp", dir=self.root
                )
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(totals, handle, sort_keys=True)
                os.replace(tmp, path)
            except OSError:
                return
            self._persisted = current

    def persisted_counters(self) -> Dict[str, int]:
        """Totals accumulated across all runs (``repro cache stats``)."""
        try:
            with open(os.path.join(self.root, "counters.json"), "r", encoding="utf-8") as handle:
                totals = json.load(handle)
            if isinstance(totals, dict):
                return {str(k): int(v) for k, v in totals.items()}
        except (OSError, ValueError):
            pass
        return {}


def resolve_store(options) -> Optional[PackStore]:
    """The store configured by ``options``, or None for the pure cold path.

    Caching engages only when enabled *and* a directory is named (via
    ``EngineOptions.cache_dir`` or ``REPRO_CACHE_DIR``) — with no directory
    configured the engine runs exactly the historical code path.
    """
    if not getattr(options, "use_cache", True):
        return None
    root = getattr(options, "cache_dir", None) or os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    return PackStore(root)
