"""Rule-deck compilation: the CheckPlan IR and the Backend seam.

The paper's application layer "schedules computation tasks and dispatches
them to algorithms" (§V-A). This module makes that a two-stage pipeline:

1. **Compile** — :func:`compile_plan` normalizes and validates a rule deck
   against a layout, resolves every rule kind to its :class:`KindSpec`
   (the single per-kind dispatch table; together with
   :data:`repro.checks.base.FLAT_CHECKS` it replaces the three hand-written
   kind→function maps the sequential, parallel, and windowed paths used to
   carry), infers the rule dependency graph, and allocates the
   :class:`PlanCaches` that own the hierarchy tree, row partitions, and
   packed device buffers for the whole deck.
2. **Execute** — any :class:`Backend` (sequential CPU sweeps, fused
   simulated-GPU kernels, or the windowed gatherer) consumes the same plan;
   ``Engine.check`` drives the chosen backend through the task scheduler.

This is the load-bearing seam for multi-device sharding and rule-level
task parallelism: a plan is a self-contained, executable artifact.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # Protocol is typing-only; keep runtime deps minimal on 3.9.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback, never hit
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from ..checks.base import FLAT_CHECKS, Violation
from ..checks.corner import CornerProcedures
from ..checks.enclosure import EnclosureProcedures
from ..checks.overlap import OverlapProcedures
from ..checks.spacing import SpacingProcedures
from ..hierarchy.pruning import (
    LevelItem,
    SubtreeWindow,
    always_invariant,
    area_invariant,
    distance_invariant,
    level_items,
)
from ..hierarchy.tree import HierarchyTree
from ..layout.cell import Cell
from ..layout.library import Layout
from ..partition.rows import margin_for_rule, partition_rects
from ..util import faults as fault_injection
from ..util.profile import PhaseProfile
from .packstore import (
    PackStore,
    layer_geometry_digest,
    member_rows_from_arrays,
    member_rows_to_arrays,
    resolve_store,
    store_key,
)
from .rules import Rule, RuleKind, validate_rules
from .scheduler import infer_rule_dependencies

MODE_SEQUENTIAL = "sequential"
MODE_PARALLEL = "parallel"
MODE_WINDOWED = "windowed"
MODE_MULTIPROC = "multiproc"

#: Modes an :class:`EngineOptions` may select (windowed needs a window, so
#: it is reachable through ``check_window``, not ``Engine.check``).
ENGINE_MODES = (MODE_SEQUENTIAL, MODE_PARALLEL, MODE_MULTIPROC)

#: Every mode a plan can be compiled for.
ALL_MODES = (MODE_SEQUENTIAL, MODE_PARALLEL, MODE_WINDOWED, MODE_MULTIPROC)

#: Edge count at or below which the brute-force executor is selected (§IV-E).
DEFAULT_BRUTE_FORCE_THRESHOLD = 256

#: Start methods ``EngineOptions.mp_start_method`` accepts (None = platform
#: default; ``spawn`` is the macOS/Windows-portable semantics the CI smoke
#: job forces).
MP_START_METHODS = (None, "fork", "spawn", "forkserver")

#: Seconds the multiprocess backend waits on one task before treating the
#: worker as hung/lost and retrying. Generous — a healthy task finishes in
#: milliseconds; only a hung or killed worker ever reaches it.
DEFAULT_TASK_TIMEOUT = 300.0

#: Resubmissions per failed/timed-out task before the in-process fallback.
DEFAULT_MAX_RETRIES = 2


@dataclasses.dataclass
class EngineOptions:
    """Tuning knobs; defaults match the paper's described behaviour."""

    mode: str = MODE_SEQUENTIAL
    use_rows: bool = True  # adaptive row partition (paper §IV-B)
    num_streams: int = 2  # CUDA streams for async overlap (paper §V-C)
    brute_force_threshold: int = DEFAULT_BRUTE_FORCE_THRESHOLD  # executor choice (§IV-E)
    fuse_rows: bool = True  # fused segmented-row launches; False = per-row ablation
    jobs: int = 1  # worker processes for the multiprocess backend
    mp_start_method: Optional[str] = None  # None = platform default
    cache_dir: Optional[str] = None  # persistent pack store root (or $REPRO_CACHE_DIR)
    use_cache: bool = True  # False restores the uncached code path exactly
    task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT  # None = wait forever
    max_retries: int = DEFAULT_MAX_RETRIES  # per-task resubmissions
    faults: Optional[str] = None  # fault-injection spec (or $REPRO_FAULTS)
    #: None = follow $REPRO_WARM_POOL (default off). True keeps worker pools
    #: alive across checks (process-wide, per jobs/start-method); the second
    #: check of a deck then ships only shard descriptors. With False (or
    #: unset) each backend owns and closes a private pool per check.
    warm_pool: Optional[bool] = None
    #: Consult the calibrated cost model when routing multiprocess work
    #: (False = status quo: everything shardable goes to the pool).
    cost_model: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.num_streams < 1:
            raise ValueError(
                f"num_streams must be at least 1, got {self.num_streams}"
            )
        if self.brute_force_threshold < 0:
            raise ValueError(
                "brute_force_threshold must be non-negative, got "
                f"{self.brute_force_threshold}"
            )
        if self.jobs < 1:
            raise ValueError(
                f"jobs must be a positive integer, got {self.jobs}; "
                "use 1 for in-process execution"
            )
        if self.mp_start_method not in MP_START_METHODS:
            raise ValueError(
                f"unknown mp_start_method {self.mp_start_method!r}; "
                f"expected one of {MP_START_METHODS[1:]}"
            )
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise ValueError(
                f"task_timeout must be positive seconds (or None to wait "
                f"forever), got {self.task_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.warm_pool not in (None, True, False):
            raise ValueError(
                f"warm_pool must be True, False, or None (follow "
                f"$REPRO_WARM_POOL), got {self.warm_pool!r}"
            )
        # Parse now so a malformed spec fails loudly at options creation,
        # not deep inside a worker process.
        fault_injection.FaultPlan.parse(self.faults)


# ---------------------------------------------------------------------------
# The per-kind dispatch table
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class KindSpec:
    """Everything any backend needs to know about one rule kind.

    * ``flat`` — the gather-and-check procedure (windowed backend and flat
      fallbacks), from :data:`repro.checks.base.FLAT_CHECKS`;
    * ``sequential`` — the hierarchical CPU strategy name the sequential
      backend binds (``intra`` / ``pairwise`` / ``cross_layer`` /
      ``coloring``);
    * ``interaction`` — ``rule -> halo`` in dbu: geometry changes farther
      than the halo from a rect cannot create, destroy, or alter any
      violation whose marker overlaps that rect. The incremental engine
      inflates dirty rects by it to build each rule's re-check region.
      ``None`` means the kind is global (e.g. coloring's odd cycles span
      whole conflict components) and a dirty layer forces a full re-run;
    * ``parallel`` — the data-parallel strategy name the GPU backend binds
      (``None`` means the kind has no arithmetic worth vectorising and the
      parallel backend delegates to the sequential strategy);
    * ``intra`` — for intra-polygon kinds, ``rule -> (check(cell, layer),
      invariance)``: the per-definition check plus the transform invariance
      class that makes its results reusable across instances (§IV-C);
    * ``procedures`` — for pairwise/cross-layer kinds, the factory of the
      edge-level procedure object.
    """

    kind: RuleKind
    flat: Callable
    sequential: str
    interaction: Callable[[Rule], Optional[int]]
    parallel: Optional[str] = None
    intra: Optional[Callable] = None
    procedures: Optional[Callable] = None


def _width_intra(rule: Rule):
    from ..checks.width import check_polygon_width

    def check(cell: Cell, layer: int) -> List[Violation]:
        vios: List[Violation] = []
        for polygon in cell.polygons(layer):
            vios.extend(check_polygon_width(polygon, layer, rule.value))
        return vios

    return check, distance_invariant


def _area_intra(rule: Rule):
    from ..checks.area import check_polygon_area

    def check(cell: Cell, layer: int) -> List[Violation]:
        vios: List[Violation] = []
        for polygon in cell.polygons(layer):
            vios.extend(check_polygon_area(polygon, layer, rule.value))
        return vios

    return check, area_invariant


def _rectilinear_intra(rule: Rule):
    from ..checks.rectilinear import check_polygon_rectilinear

    def check(cell: Cell, layer: int) -> List[Violation]:
        vios: List[Violation] = []
        for polygon in cell.polygons(layer):
            vios.extend(check_polygon_rectilinear(polygon, layer))
        return vios

    return check, always_invariant


def _ensures_intra(rule: Rule):
    from ..checks.ensure import check_ensures

    def check(cell: Cell, layer: int) -> List[Violation]:
        return check_ensures(cell.polygons(layer), layer, rule.predicate)

    return check, always_invariant


def _spec(kind: RuleKind, sequential: str, *, interaction, **kwargs: Any) -> KindSpec:
    return KindSpec(
        kind=kind,
        flat=FLAT_CHECKS.get(kind).run,
        sequential=sequential,
        interaction=interaction,
        **kwargs,
    )


def _halo_rule_value(rule: Rule) -> Optional[int]:
    """Distance rules interact out to their threshold: a violation strip
    reaches at most ``rule.value`` away from either participating shape."""
    return rule.value


def _halo_zero(rule: Rule) -> Optional[int]:
    """Kinds whose markers touch the participating geometry itself: width,
    area, shape, and predicate markers lie inside the polygon's MBR, and a
    min-overlap marker is the top polygon's MBR, which overlaps any base
    polygon that can affect its measured area."""
    return 0


def _halo_global(rule: Rule) -> Optional[int]:
    """No finite halo: the verdict can flip arbitrarily far from an edit."""
    return None


#: The single registry of rule-kind execution strategies. Every backend —
#: sequential, parallel, windowed — resolves its per-rule behaviour here.
KIND_SPECS: Dict[RuleKind, KindSpec] = {
    RuleKind.WIDTH: _spec(
        RuleKind.WIDTH, "intra", interaction=_halo_zero,
        parallel="width", intra=_width_intra,
    ),
    RuleKind.AREA: _spec(
        RuleKind.AREA, "intra", interaction=_halo_zero,
        parallel="area", intra=_area_intra,
    ),
    RuleKind.RECTILINEAR: _spec(
        RuleKind.RECTILINEAR, "intra", interaction=_halo_zero,
        intra=_rectilinear_intra,
    ),
    RuleKind.ENSURES: _spec(
        RuleKind.ENSURES, "intra", interaction=_halo_zero,
        intra=_ensures_intra,
    ),
    RuleKind.SPACING: _spec(
        RuleKind.SPACING, "pairwise", interaction=_halo_rule_value,
        parallel="spacing", procedures=SpacingProcedures,
    ),
    RuleKind.CORNER_SPACING: _spec(
        RuleKind.CORNER_SPACING, "pairwise", interaction=_halo_rule_value,
        parallel="corner", procedures=CornerProcedures,
    ),
    RuleKind.ENCLOSURE: _spec(
        RuleKind.ENCLOSURE, "cross_layer", interaction=_halo_rule_value,
        parallel="enclosure", procedures=EnclosureProcedures,
    ),
    RuleKind.MIN_OVERLAP: _spec(
        RuleKind.MIN_OVERLAP, "cross_layer", interaction=_halo_zero,
        procedures=OverlapProcedures,
    ),
    RuleKind.COLORING: _spec(
        RuleKind.COLORING, "coloring", interaction=_halo_global
    ),
}


def kind_spec(kind: RuleKind) -> KindSpec:
    """The execution spec of one rule kind (raises for unknown kinds)."""
    try:
        return KIND_SPECS[kind]
    except KeyError:
        raise NotImplementedError(f"rule kind {kind!r}") from None


def interaction_distance(rule: Rule) -> Optional[int]:
    """The rule's dirty-region halo in dbu (None = globally coupled)."""
    return kind_spec(rule.kind).interaction(rule)


# ---------------------------------------------------------------------------
# Plan-owned caches
# ---------------------------------------------------------------------------


class PackCache:
    """Deck-scoped host-side cache (cross-rule buffer and walk reuse).

    Every rule on a layer re-walks the same hierarchy level and re-packs
    identical device buffers. This cache memoises the host-side artifacts —
    level items, row partitions, per-definition packers, and packed per-row
    / fused buffers — keyed by layer plus the stable partition signature
    (:meth:`repro.partition.rows.RowPartition.signature`), so the second
    rule touching a layer pays zero host packing. A rule whose distance
    changes the partition margin, or a backend with rows disabled, produces
    a different signature and is thereby correctly bypassed.

    Thread-safety: a plan — and therefore this cache — is owned by the one
    check that compiled it, but a multiprocess backend's shard paths may
    consult it from the handler thread while the engine's scheduler drive
    touches it too, and the incremental engine shares one plan across its
    window backends. ``get`` therefore locks its lookup-or-build. The lock
    is *not* held while ``build()`` runs (a build may pack large buffers);
    losing that race costs one redundant build, never a wrong value —
    builds are pure functions of the key.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._stores: Dict[str, Dict[Any, Any]] = {}

    def get(self, store: str, key: Any, build: Callable[[], Any]) -> Any:
        with self._lock:
            bucket = self._stores.setdefault(store, {})
            if key in bucket:
                self.hits += 1
                return bucket[key]
            self.misses += 1
        value = build()
        with self._lock:
            # First publisher wins so every reader sees one object identity
            # (partition signatures are compared, and buffers are reused,
            # by the value actually stored).
            return bucket.setdefault(key, value)


class PlanCaches:
    """Shared state every backend executing one plan reads through.

    Owns the subtree range-query window and the :class:`PackCache`; the
    level items of a (cell, layer) are identical for every rule in the
    deck, so they live here rather than in any one backend.

    When a persistent :class:`~repro.core.packstore.PackStore` is attached
    (``store``), cross-*process* artifacts — the adaptive row partition here,
    packed fused buffers in the parallel backend — are consulted on disk
    before being rebuilt, keyed by per-layer geometry digests
    (:func:`~repro.core.packstore.layer_geometry_digest`), so a warm-start
    check skips partitioning and packing entirely.
    """

    def __init__(self, tree: HierarchyTree, *, store: Optional[PackStore] = None) -> None:
        self.tree = tree
        self.subtree = SubtreeWindow(tree)
        self.pack = PackCache()
        self.store = store
        self._layer_digests: Dict[int, str] = {}

    def level_items(self, cell: Cell, layer: int) -> List[LevelItem]:
        return self.pack.get(
            "level-items",
            (cell.name, layer),
            lambda: level_items(self.tree, cell, layer),
        )

    def layer_digest(self, layer: int) -> str:
        """Geometry content hash of one layer, memoised for the deck.

        Deliberately lock-free: the digest is a pure function of the frozen
        tree, so two threads racing the memo compute the same string and
        the single dict assignment is atomic under the GIL.
        """
        digest = self._layer_digests.get(layer)
        if digest is None:
            digest = layer_geometry_digest(self.tree, layer)
            self._layer_digests[layer] = digest
        return digest

    def digest_of(self, key: Any) -> Any:
        """Digest(s) for a partition key: one layer or a tuple of layers."""
        if isinstance(key, tuple):
            return tuple(self.layer_digest(layer) for layer in key)
        return self.layer_digest(key)

    def partition_rows(
        self,
        key: Any,
        mbrs: Sequence[Any],
        value: int,
        *,
        use_rows: bool,
        cold_timer: Optional[Callable[[], Any]] = None,
    ) -> Tuple[List[List[int]], Any]:
        """Row membership lists plus a stable signature for buffer reuse.

        The shared partition seam: both the sequential and parallel backends
        resolve the adaptive row partition (paper §IV-B) here, so they share
        one in-memory memo per (key, margin) and — with a store attached —
        one on-disk entry per (layer geometry, margin). The signature is the
        membership tuple alone (packed buffers depend only on which items
        land in which row); with rows disabled it is a distinct ``norows``
        marker so row-partitioned buffers are never reused by an
        unpartitioned backend. ``cold_timer`` is a context-manager factory
        wrapped around the actual partition computation only — a warm start
        never enters it.
        """
        if not mbrs:
            return [], ("empty",)
        if not use_rows:
            return [list(range(len(mbrs)))], ("norows", len(mbrs))
        margin = margin_for_rule(value)

        def build() -> Tuple[List[List[int]], Any]:
            skey = None
            if self.store is not None:
                skey = store_key("partition", self.digest_of(key), margin)
                rows = self.store.load(skey, member_rows_from_arrays)
                if rows is not None:
                    return rows, tuple(tuple(row) for row in rows)
            if cold_timer is not None:
                with cold_timer():
                    partition = partition_rects(list(mbrs), value)
            else:
                partition = partition_rects(list(mbrs), value)
            rows = [row.members for row in partition.rows]
            if skey is not None:
                arrays, meta = member_rows_to_arrays(rows)
                self.store.save(skey, arrays, meta)
            return rows, partition.signature()[1]

        return self.pack.get("partition", (key, margin), build)


# ---------------------------------------------------------------------------
# The IR
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CompiledRule:
    """One deck rule bound to its execution spec and dependencies."""

    index: int
    rule: Rule
    spec: KindSpec
    depends_on: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.rule.name


@dataclasses.dataclass
class CheckPlan:
    """A compiled, executable rule deck: the IR every backend consumes."""

    layout: Layout
    mode: str
    options: EngineOptions
    tree: HierarchyTree
    caches: PlanCaches
    compiled: List[CompiledRule]

    @property
    def rules(self) -> List[Rule]:
        return [c.rule for c in self.compiled]

    def layer_groups(self) -> Dict[Optional[int], List[CompiledRule]]:
        """Compiled rules grouped by target layer (None = all layers).

        The grouping future sharding work fans out on: rules of one layer
        share the plan's level items, partitions, and packed buffers.
        """
        groups: Dict[Optional[int], List[CompiledRule]] = {}
        for compiled in self.compiled:
            groups.setdefault(compiled.rule.layer, []).append(compiled)
        return groups

    def dependencies(self) -> Dict[str, Tuple[str, ...]]:
        """Rule name -> names it must run after (shape-sanity gating)."""
        return {c.name: c.depends_on for c in self.compiled}


def compile_plan(
    layout: Layout,
    rules: Sequence[Rule],
    options: Optional[EngineOptions] = None,
    *,
    mode: Optional[str] = None,
    tree: Optional[HierarchyTree] = None,
) -> CheckPlan:
    """Compile a rule deck against a layout into an executable plan.

    Validation happens here, once, for every execution path: deck
    non-emptiness, rule-name uniqueness, known rule kinds, and the mode.
    """
    deck = list(rules)
    if not deck:
        raise ValueError("no rules to check; call add_rules() first")
    validate_rules(deck)
    if options is None:
        options = EngineOptions()
    # Arm (or clear) the process-global fault-injection plan for this run.
    # Idempotent by spec, so worker processes re-compiling the shipped plan
    # do not re-arm faults their process already fired. Concurrent checks
    # share one daemon's engine options (and therefore one spec): the
    # install itself is locked, and the plan's budgets meter process-wide
    # opportunities by design — which requests they fire against is
    # scheduling-dependent, but every request's report stays canonical
    # because recovery is byte-transparent.
    fault_injection.install(fault_injection.resolve_spec(options))
    resolved_mode = mode if mode is not None else options.mode
    if resolved_mode not in ALL_MODES and resolved_mode not in BACKEND_FACTORIES:
        raise ValueError(f"unknown mode {resolved_mode!r}")
    if tree is None:
        tree = HierarchyTree(layout)
    dependencies = infer_rule_dependencies(deck)
    compiled = [
        CompiledRule(
            index=index,
            rule=rule,
            spec=kind_spec(rule.kind),
            depends_on=dependencies[rule.name],
        )
        for index, rule in enumerate(deck)
    ]
    return CheckPlan(
        layout=layout,
        mode=resolved_mode,
        options=options,
        tree=tree,
        caches=PlanCaches(tree, store=resolve_store(options)),
        compiled=compiled,
    )


# ---------------------------------------------------------------------------
# The Backend protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class Backend(Protocol):
    """What every plan executor implements.

    ``run`` executes one rule of the plan and returns its violations in
    top-cell coordinates; ``stats`` snapshots the backend's cumulative
    counters (pruning, executor choice, device traffic) for
    :class:`~repro.core.results.CheckResult`.
    """

    plan: Optional[CheckPlan]

    def run(
        self, rule: Rule, profile: Optional[PhaseProfile] = None
    ) -> List[Violation]: ...

    def stats(self) -> Dict[str, float]: ...


def _sequential_backend(plan: CheckPlan, *, device=None, window=None) -> "Backend":
    from .sequential import SequentialBackend

    return SequentialBackend(plan)


def _parallel_backend(plan: CheckPlan, *, device=None, window=None) -> "Backend":
    from .parallel import ParallelBackend

    return ParallelBackend(plan, device=device)


def _windowed_backend(plan: CheckPlan, *, device=None, window=None) -> "Backend":
    from .incremental import WindowedBackend

    if window is None:
        raise ValueError("windowed execution needs a window rect")
    return WindowedBackend(plan, window)


def _multiproc_backend(plan: CheckPlan, *, device=None, window=None) -> "Backend":
    from .multiproc import MultiprocessBackend

    return MultiprocessBackend(plan, device=device, window=window)


#: Mode -> backend factory. Factories take ``(plan, *, device, window)`` and
#: return a :class:`Backend`; :func:`register_backend` lets extensions (or
#: tests) plug in additional execution modes without touching the engine.
BACKEND_FACTORIES: Dict[str, Callable[..., "Backend"]] = {
    MODE_SEQUENTIAL: _sequential_backend,
    MODE_PARALLEL: _parallel_backend,
    MODE_WINDOWED: _windowed_backend,
    MODE_MULTIPROC: _multiproc_backend,
}


def register_backend(mode: str, factory: Callable[..., "Backend"]) -> None:
    """Register (or replace) the backend factory executing ``mode`` plans."""
    if not mode:
        raise ValueError("backend mode must be a non-empty string")
    BACKEND_FACTORIES[mode] = factory


def make_backend(plan: CheckPlan, *, device=None, window=None) -> "Backend":
    """Instantiate the backend the plan's mode selects (via the registry)."""
    try:
        factory = BACKEND_FACTORIES[plan.mode]
    except KeyError:
        raise ValueError(f"no backend registered for mode {plan.mode!r}") from None
    return factory(plan, device=device, window=window)
