"""General programming interface: chained rule definitions (paper §V-B).

Rules are described in chaining methods that resemble natural language,
mirroring the paper's Listing 1::

    engine.add_rules([
        polygons().is_rectilinear(),
        layer(19).width().greater_than(18),
        layer(19).spacing().greater_than(21),
        layer(21).enclosure(layer(19)).greater_than(5),
        layer(19).area().greater_than(1000),
        layer(20).polygons().ensures(lambda p: p.name != ""),
    ])

Two method categories exist, as in the paper: **selectors** locate the
target objects (``layer(19)``, ``.width()``, ``.polygons()``) and
**predicates** state what they must satisfy (``.greater_than(18)``,
``.is_rectilinear()``, ``.ensures(callable)``).

The finished :class:`Rule` carries *traits* (:class:`RuleKind`,
``is_intra``/``is_inter``) that the engine dispatches on — the runtime
analog of the paper's compile-time type traits (§V-D).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional

from ..errors import RuleError
from ..geometry import Polygon
from ..reporting import SEVERITIES

__all__ = [
    "INTRA_KINDS",
    "Rule",
    "RuleKind",
    "SEVERITIES",
    "layer",
    "polygons",
    "validate_rules",
]


class RuleKind(enum.Enum):
    """Rule families the engine knows how to execute."""

    WIDTH = "width"
    SPACING = "spacing"
    ENCLOSURE = "enclosure"
    AREA = "area"
    RECTILINEAR = "rectilinear"
    ENSURES = "ensures"
    CORNER_SPACING = "corner_spacing"
    MIN_OVERLAP = "min_overlap"
    COLORING = "coloring"


#: Rule kinds decided inside a single polygon (paper §IV-C "intra-polygon").
INTRA_KINDS = frozenset(
    {RuleKind.WIDTH, RuleKind.AREA, RuleKind.RECTILINEAR, RuleKind.ENSURES}
)


@dataclasses.dataclass(frozen=True)
class Rule:
    """A fully specified design rule."""

    kind: RuleKind
    layer: Optional[int]  # None = all layers (shape/predicate rules only)
    value: int = 0
    other_layer: Optional[int] = None  # enclosure: the enclosing layer
    predicate: Optional[Callable[[Polygon], bool]] = None
    name: str = ""
    #: ``"error"`` violations block the check (non-zero exit, unless
    #: waived); ``"warning"`` violations are reported but never block.
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise RuleError(
                f"rule severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )
        if self.kind in (RuleKind.WIDTH, RuleKind.SPACING, RuleKind.AREA,
                         RuleKind.CORNER_SPACING, RuleKind.COLORING):
            if self.layer is None:
                raise RuleError(f"{self.kind.value} rule needs a layer")
            if self.value <= 0:
                raise RuleError(f"{self.kind.value} rule needs a positive value")
        if self.kind in (RuleKind.ENCLOSURE, RuleKind.MIN_OVERLAP):
            if self.layer is None or self.other_layer is None:
                raise RuleError(f"{self.kind.value} rule needs both layers")
            if self.value <= 0:
                raise RuleError(f"{self.kind.value} rule needs a positive value")
        if self.kind is RuleKind.ENSURES and self.predicate is None:
            raise RuleError("ensures rule needs a predicate callable")
        if not self.name:
            object.__setattr__(self, "name", self._default_name())

    def _default_name(self) -> str:
        layer = "*" if self.layer is None else f"L{self.layer}"
        if self.kind is RuleKind.ENCLOSURE:
            return f"{layer}.in.L{self.other_layer}.EN.{self.value}"
        if self.kind is RuleKind.MIN_OVERLAP:
            return f"{layer}.on.L{self.other_layer}.OV.{self.value}"
        suffix = {
            "width": "W",
            "spacing": "S",
            "area": "A",
            "corner_spacing": "CS",
            "coloring": "MP",
        }.get(self.kind.value)
        if suffix:
            return f"{layer}.{suffix}.{self.value}"
        return f"{layer}.{self.kind.value}"

    # -- traits (runtime analog of the paper's type traits) -----------------

    @property
    def is_intra(self) -> bool:
        """True if decidable per polygon (memoisable under transforms)."""
        return self.kind in INTRA_KINDS

    @property
    def is_inter(self) -> bool:
        return not self.is_intra

    @property
    def is_inter_layer(self) -> bool:
        return self.kind in (RuleKind.ENCLOSURE, RuleKind.MIN_OVERLAP)

    def named(self, name: str) -> "Rule":
        """A copy carrying a deck name like ``M1.S.1``."""
        return dataclasses.replace(self, name=name)

    def with_severity(self, severity: str) -> "Rule":
        """A copy carrying the given severity (``"error"``/``"warning"``)."""
        return dataclasses.replace(self, severity=severity)

    def as_warning(self) -> "Rule":
        """A copy demoted to ``warning`` severity (reported, never blocking)."""
        return self.with_severity("warning")

    def __str__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Selectors
# ---------------------------------------------------------------------------


class MeasureSelector:
    """A (layer, quantity) selection awaiting its predicate."""

    def __init__(self, kind: RuleKind, layer: int, other_layer: Optional[int] = None):
        self._kind = kind
        self._layer = layer
        self._other_layer = other_layer

    def greater_than(self, value: int) -> Rule:
        """Require the selected quantity to be at least ``value``.

        (Paper Listing 1 uses ``greater_than``; like there, the threshold is
        the minimum legal value — a measurement strictly below it violates.)
        """
        return Rule(
            kind=self._kind,
            layer=self._layer,
            value=value,
            other_layer=self._other_layer,
        )


class PolygonSelector:
    """Selection of whole polygons (of one layer, or everywhere)."""

    def __init__(self, layer: Optional[int] = None):
        self._layer = layer

    def is_rectilinear(self) -> Rule:
        """All selected polygons must be axis-aligned."""
        return Rule(kind=RuleKind.RECTILINEAR, layer=self._layer)

    def ensures(self, predicate: Callable[[Polygon], bool]) -> Rule:
        """All selected polygons must satisfy a user-defined callable."""
        return Rule(kind=RuleKind.ENSURES, layer=self._layer, predicate=predicate)


class LayerSelector:
    """Entry point of per-layer rule chains."""

    def __init__(self, layer: int):
        if layer < 0:
            raise RuleError(f"layer numbers are non-negative, got {layer}")
        self.layer = layer

    def width(self) -> MeasureSelector:
        """Select the minimum interior width of the layer's polygons."""
        return MeasureSelector(RuleKind.WIDTH, self.layer)

    def spacing(self) -> MeasureSelector:
        """Select the minimum exterior spacing between the layer's shapes."""
        return MeasureSelector(RuleKind.SPACING, self.layer)

    def corner_spacing(self) -> MeasureSelector:
        """Select diagonal corner-to-corner (Euclidean) spacing.

        Roadmap extension beyond the paper's benchmarked rule set: catches
        diagonally offset shapes whose edges never overlap in projection.
        """
        return MeasureSelector(RuleKind.CORNER_SPACING, self.layer)

    def area(self) -> MeasureSelector:
        """Select the polygon area on this layer."""
        return MeasureSelector(RuleKind.AREA, self.layer)

    def enclosure(self, metal: "LayerSelector") -> MeasureSelector:
        """Select this layer's enclosure margin inside ``metal``'s polygons."""
        return MeasureSelector(RuleKind.ENCLOSURE, self.layer, other_layer=metal.layer)

    def overlap(self, base: "LayerSelector") -> MeasureSelector:
        """Select this layer's overlapping area with ``base``'s polygons.

        Minimum overlapping-area constraints between layers are among the
        modern rules the paper's introduction motivates.
        """
        return MeasureSelector(RuleKind.MIN_OVERLAP, self.layer, other_layer=base.layer)

    def same_mask_spacing(self) -> MeasureSelector:
        """Select the same-mask spacing under double patterning.

        The layer must decompose into two masks such that same-mask shapes
        are at least the rule value apart (paper §II: multi-color design
        rules); every odd cycle in the conflict graph is reported.
        """
        return MeasureSelector(RuleKind.COLORING, self.layer)

    def polygons(self) -> PolygonSelector:
        """Select the layer's polygons as whole objects."""
        return PolygonSelector(self.layer)


def layer(number: int) -> LayerSelector:
    """Start a rule chain for one layer (``db.layer(19)`` in Listing 1)."""
    return LayerSelector(number)


def polygons() -> PolygonSelector:
    """Start a rule chain over all polygons (``db.polygons()`` in Listing 1)."""
    return PolygonSelector(None)


def validate_rules(rules: List[Rule]) -> None:
    """Reject duplicate rule names (decks address results by name)."""
    seen = set()
    for rule in rules:
        if rule.name in seen:
            raise RuleError(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)
