"""Check results and reports (interface layer: result output)."""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence

from ..checks.base import Violation, ViolationKind, sort_violations
from ..geometry import Rect
from ..reporting import csv_from_payload, summary_from_payload
from ..util.profile import PhaseProfile
from .rules import Rule


@dataclasses.dataclass
class CheckResult:
    """Outcome of one rule on one layout."""

    rule: Rule
    violations: List[Violation]
    seconds: float
    profile: Optional[PhaseProfile] = None
    stats: Dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonical form: deduplicated and deterministically ordered, so
        # results from different execution modes compare equal.
        self.violations = sort_violations(set(self.violations))

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    @property
    def num_waived(self) -> int:
        return sum(1 for v in self.violations if v.waived)

    @property
    def num_blocking(self) -> int:
        """Unwaived violations of an error-severity rule (what fails a check)."""
        if self.rule.severity != "error":
            return 0
        return sum(1 for v in self.violations if not v.waived)

    @property
    def passed(self) -> bool:
        return not self.violations

    def violation_set(self):
        return frozenset(self.violations)

    def __str__(self) -> str:
        if self.passed:
            status = "PASS"
        else:
            status = f"{self.num_violations} violations"
            if self.num_waived:
                status += f", {self.num_waived} waived"
        return f"{self.rule.name}: {status} ({self.seconds * 1e3:.2f} ms)"


@dataclasses.dataclass
class CheckReport:
    """Outcome of a whole rule deck."""

    layout_name: str
    mode: str
    results: List[CheckResult]

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    @property
    def total_violations(self) -> int:
        return sum(r.num_violations for r in self.results)

    @property
    def total_waived(self) -> int:
        return sum(r.num_waived for r in self.results)

    @property
    def blocking_violations(self) -> int:
        """Unwaived error-severity violations — what a check exits non-zero on."""
        return sum(r.num_blocking for r in self.results)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no unwaived error-severity violations."""
        return self.blocking_violations == 0

    def result(self, rule_name: str) -> CheckResult:
        for result in self.results:
            if result.rule.name == rule_name:
                return result
        raise KeyError(f"no result for rule {rule_name!r}")

    def payload(self) -> Dict[str, Any]:
        """The plain-dict report (what :meth:`to_json` serialises).

        The single source every output format renders from — the serve
        daemon ships it verbatim and the client re-renders CSV/summaries
        from it through the same :mod:`repro.reporting` functions, so
        served output is byte-identical to local output by construction.
        """
        return {
            "layout": self.layout_name,
            "mode": self.mode,
            "total_violations": self.total_violations,
            "total_waived": self.total_waived,
            "blocking_violations": self.blocking_violations,
            "passed": self.passed,
            "results": [
                {
                    "rule": result.rule.name,
                    "kind": result.rule.kind.value,
                    "layer": result.rule.layer,
                    "other_layer": result.rule.other_layer,
                    "value": result.rule.value,
                    "severity": result.rule.severity,
                    "seconds": result.seconds,
                    "stats": {k: result.stats[k] for k in sorted(result.stats)},
                    "violations": [violation_to_json(v) for v in result.violations],
                }
                for result in self.results
            ],
        }

    def summary(self) -> str:
        return summary_from_payload(self.payload())

    def to_csv(self, *, expand_instances: bool = False) -> str:
        """Machine-readable per-violation dump (RFC 4180 quoting).

        Hierarchical repeats collapse by default: violations identical up
        to translation (the "1 violation x 4096 instances" shape of
        repeated cell placements) emit one exemplar row whose ``instances``
        column carries the count. ``expand_instances=True`` emits every
        marker as its own row.
        """
        return csv_from_payload(self.payload(), expand_instances=expand_instances)

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Machine-readable report with a stable schema and key order.

        Byte-identical across execution backends and job counts for equal
        reports (violations are already canonically ordered; keys sort).
        """
        return json.dumps(self.payload(), indent=indent, sort_keys=True)


def violation_to_json(violation: Violation) -> Dict[str, Any]:
    """One violation as a plain-JSON dict (see :func:`violation_from_json`)."""
    r = violation.region
    return {
        "kind": violation.kind.value,
        "layer": violation.layer,
        "other_layer": violation.other_layer,
        "region": [r.xlo, r.ylo, r.xhi, r.yhi],
        "measured": violation.measured,
        "required": violation.required,
        "waived": violation.waived,
    }


def violation_from_json(data: Dict[str, Any]) -> Violation:
    """Inverse of :func:`violation_to_json` (report cache deserialisation)."""
    return Violation(
        kind=ViolationKind(data["kind"]),
        layer=data["layer"],
        region=Rect(*data["region"]),
        measured=data["measured"],
        required=data["required"],
        other_layer=data.get("other_layer"),
        waived=bool(data.get("waived", False)),
    )


def splice_violations(
    cached: Sequence[Violation], fresh: Sequence[Violation], regions
) -> List[Violation]:
    """Splice a windowed re-check into a cached violation list.

    Keeps every cached violation whose marker does *not* overlap the dirty
    region set, adds every fresh (windowed) violation, and re-canonicalises.
    Exactness depends on two invariants the engine maintains:

    - the windowed check equals the full check filtered to "marker overlaps
      the region set" (tested across backends), and
    - the region set covers each involved layer's dirty rects inflated by
      the rule's interaction distance, so any violation whose marker misses
      it is byte-identical between the two layout versions.

    The drop filter and the windowed keep filter use the *same* region set,
    so the two slices partition the new layout's violations exactly.
    """
    kept = [v for v in cached if not regions.overlaps(v.region)]
    return sort_violations(set(kept) | set(fresh))


def merge_stats(parts: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Sum counter dictionaries across shards/workers, key-union.

    Launch, copy, and pruning counters are additive by construction; wall
    times accumulate the same way (total work, not elapsed time).
    """
    totals: Dict[str, float] = {}
    for part in parts:
        for key, value in part.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def combine_results(parts: Sequence[CheckResult]) -> CheckResult:
    """Merge per-shard results of the *same* rule into one result.

    Violations concatenate and re-canonicalise (dedup + total order, so the
    merged list is identical however the shards were cut); seconds, phase
    profiles, and stats counters sum.
    """
    if not parts:
        raise ValueError("no results to combine")
    first = parts[0]
    if len(parts) == 1:
        return first
    if any(p.rule.name != first.rule.name for p in parts):
        names = sorted({p.rule.name for p in parts})
        raise ValueError(f"cannot combine results of different rules: {names}")
    violations: List[Violation] = []
    profile = PhaseProfile()
    for part in parts:
        violations.extend(part.violations)
        if part.profile is not None:
            profile.merge(part.profile)
    return CheckResult(
        rule=first.rule,
        violations=violations,
        seconds=sum(p.seconds for p in parts),
        profile=profile,
        stats=merge_stats([p.stats for p in parts]),
    )


def merge_reports(reports: Sequence[CheckReport]) -> CheckReport:
    """Merge reports over the same layout (e.g. per-rule or per-shard runs).

    Results for distinct rules concatenate in first-seen order; results for
    the *same* rule (shards of one rule split across reports) combine via
    :func:`combine_results`, so counters and phase times sum instead of
    being duplicated or dropped.
    """
    if not reports:
        raise ValueError("no reports to merge")
    first = reports[0]
    by_name: Dict[str, List[CheckResult]] = {}
    order: List[str] = []
    for report in reports:
        for result in report.results:
            if result.rule.name not in by_name:
                by_name[result.rule.name] = []
                order.append(result.rule.name)
            by_name[result.rule.name].append(result)
    results = [combine_results(by_name[name]) for name in order]
    return CheckReport(first.layout_name, first.mode, results)
