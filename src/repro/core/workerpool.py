"""Persistent warm worker pools for the multiprocess backend.

PR 3's backend built a fresh ``multiprocessing.Pool`` inside every
``Engine.check()`` and shipped the pickled (layout, rules, options) payload
through every worker's initializer. For the fix-loop regime the roadmap
targets — many small re-checks of the same deck — that meant paying pool
spawn, interpreter boot (under ``spawn``), module imports, payload pickling
and plan recompilation on *every* check. This module hoists all of that
out of the check:

* :class:`WorkerPool` owns a pool of generic workers that pre-import the
  heavy modules (:func:`_pool_warmup`) and carry **no** deck state in
  their initializer. Deck payloads are instead **spooled to disk once**
  per content digest (:meth:`WorkerPool.ensure_plan`); tasks carry a tiny
  :class:`PlanRef` and each worker lazily loads + compiles the plan on
  first touch, then keeps it cached (:data:`_PLAN_STATES`) across tasks,
  checks, and even pool rebuilds — a respawned worker re-reads the spool
  file instead of needing a reship.
* :func:`get_pool` is the process-wide registry keyed by (jobs, start
  method): every check with ``warm_pool`` enabled reuses the same live
  workers, so the second check of a deck ships only shard descriptors.
  :func:`shutdown_pools` runs at interpreter exit.
* :meth:`WorkerPool.dispatch_seconds` measures the real no-op round-trip
  cost of this pool — the constant the
  :class:`~repro.core.costmodel.CostModel` prices every routing decision
  with.

Fault-tolerance contract: :meth:`WorkerPool.rebuild` terminates the worker
processes but keeps the spool directory, so the multiprocess backend's
restart ladder (PR 5) recycles workers without invalidating in-flight
:class:`PlanRef` descriptors; a backend that degrades never needs the pool
again and ``close()`` reclaims everything.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..util.logging import get_logger

__all__ = [
    "PLAN_CACHE_SIZE",
    "PlanRef",
    "WARM_POOL_ENV",
    "WorkerPool",
    "get_pool",
    "plan_backend",
    "release_pool",
    "shutdown_pools",
    "warm_pool_enabled",
    "worker_device",
]

_logger = get_logger("workerpool")

#: Environment variable enabling warm pools when ``EngineOptions.warm_pool``
#: is left unset (``1``/``true``/``on`` enable).
WARM_POOL_ENV = "REPRO_WARM_POOL"

#: Compiled plans each worker process keeps warm (LRU by digest).
PLAN_CACHE_SIZE = 4

#: No-op round trips sampled by :meth:`WorkerPool.dispatch_seconds`. The
#: first sample is discarded — under ``spawn`` it absorbs interpreter boot.
_DISPATCH_SAMPLES = 3

#: Upper bound on one measurement round trip; a pool whose workers are all
#: wedged must not stall ``close()``.
_DISPATCH_TIMEOUT = 5.0


def warm_pool_enabled(options) -> bool:
    """Whether ``options`` selects the shared warm pool.

    ``EngineOptions.warm_pool`` wins when set; otherwise the
    :data:`WARM_POOL_ENV` environment variable decides; otherwise warm
    pools are off and each backend owns (and closes) a private pool — the
    historical lifecycle.
    """
    flag = getattr(options, "warm_pool", None)
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(WARM_POOL_ENV)
    if raw is None:
        return False
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def _resolve_start_method(start_method: Optional[str]) -> Optional[str]:
    return start_method or os.environ.get("REPRO_MP_START") or None


# ---------------------------------------------------------------------------
# Worker-side state (lives in the worker processes)
# ---------------------------------------------------------------------------


def _pool_warmup() -> None:
    """Pool initializer: pay the import bill at spawn, not on task one."""
    import numpy  # noqa: F401

    from ..gpu import kernels  # noqa: F401
    from . import parallel  # noqa: F401
    from . import plan  # noqa: F401


@dataclasses.dataclass(frozen=True)
class PlanRef:
    """A content-addressed handle to one spooled deck payload."""

    digest: str
    path: str


#: digest -> {layout, rules, options, window, backend} in this worker.
_PLAN_STATES: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()


def _plan_state(ref: PlanRef) -> Dict[str, Any]:
    state = _PLAN_STATES.get(ref.digest)
    if state is None:
        import pickle

        with open(ref.path, "rb") as handle:
            layout, rules, options, window = pickle.loads(handle.read())
        state = {
            "layout": layout,
            "rules": rules,
            "options": options,
            "window": window,
            "backend": None,
        }
        _PLAN_STATES[ref.digest] = state
        while len(_PLAN_STATES) > PLAN_CACHE_SIZE:
            # The current digest sits at the end; evict the coldest entry.
            _PLAN_STATES.popitem(last=False)
    else:
        _PLAN_STATES.move_to_end(ref.digest)
    return state


def plan_backend(ref: PlanRef):
    """This worker's compiled backend for the referenced deck (warm)."""
    from .plan import MODE_PARALLEL, MODE_WINDOWED, compile_plan, make_backend

    state = _plan_state(ref)
    backend = state["backend"]
    if backend is None:
        window = state["window"]
        if window is not None:
            plan = compile_plan(
                state["layout"], state["rules"], state["options"],
                mode=MODE_WINDOWED,
            )
            backend = make_backend(plan, window=window)
        else:
            plan = compile_plan(
                state["layout"], state["rules"], state["options"],
                mode=MODE_PARALLEL,
            )
            backend = make_backend(plan)
        state["backend"] = backend
    return backend


_DEVICE_STATE: Dict[str, Any] = {}


def worker_device():
    """One simulated device + stream pair per worker process (shard tasks)."""
    state = _DEVICE_STATE.get("device")
    if state is None:
        from ..gpu.device import Device
        from ..gpu.executor import StreamExecutor

        device = Device("mp-worker")
        executors = [StreamExecutor(device.create_stream()) for _ in range(2)]
        state = (device, executors)
        _DEVICE_STATE["device"] = state
    return state


def _noop() -> None:
    return None


# ---------------------------------------------------------------------------
# Fair-share dispatch (multi-request pool multiplexing)
# ---------------------------------------------------------------------------


class _FairResult:
    """Result proxy matching ``AsyncResult.get(timeout)`` semantics.

    ``get`` blocks until the underlying pool task resolves; a timeout
    raises :class:`multiprocessing.TimeoutError` (so the multiprocess
    backend's retry ladder distinguishes hangs from worker exceptions
    exactly as it does for direct submissions), and a worker exception is
    re-raised as-is.

    The timeout meters the *dispatched* round trip only: time the task
    spends queued behind other requesters' turns does not count, because
    the backend's task timeout exists to detect hung workers, and a task
    that has not reached a worker yet cannot be hung. The queue wait is
    unbounded but cannot leak — every path out of the dispatcher
    (dispatch, pool failure, :meth:`_FairDispatcher.abandon` re-pump)
    either marks the proxy dispatched or resolves it.
    """

    __slots__ = ("_event", "_dispatch_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._dispatch_event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _mark_dispatched(self) -> None:
        self._dispatch_event.set()

    def _resolve(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error
        # Resolution ends any queue wait too (a proxy failed while still
        # queued must not strand its waiter on the dispatch event).
        self._dispatch_event.set()
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def get(self, timeout: Optional[float] = None) -> Any:
        if timeout is None:
            self._event.wait()
        else:
            self._dispatch_event.wait()
            if not self._event.wait(timeout):
                raise multiprocessing.TimeoutError()
        if self._error is not None:
            raise self._error
        return self._value


class _FairDispatcher:
    """Round-robin fair-share front of one pool's shared task queue.

    Direct ``apply_async`` pushes tasks into multiprocessing's single FIFO,
    so a large check that submits a 32-shard batch ahead of a small
    concurrent request starves it by the whole batch. The dispatcher keeps
    a FIFO *per requester* and feeds the real pool by rotating across the
    active requesters (the merge order of
    :func:`repro.core.scheduler.round_robin_interleave`), keeping at most
    ``2 * jobs`` tasks inside the pool so a late-arriving requester reaches
    a worker within about one task of joining. Order within one requester
    is preserved, which is why fair dispatch cannot reorder any single
    request's own results.

    Rebuild contract: :meth:`abandon` fails every dispatched-but-unresolved
    proxy with a ``RuntimeError`` (terminated workers will never fire their
    callbacks), so waiters fall into the backend's retry ladder immediately
    instead of hanging; still-queued tasks survive and drain into the
    respawned generation.
    """

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self._lock = threading.Lock()
        #: requester -> FIFO of (proxy, func, args); insertion-ordered so
        #: the rotation is deterministic.
        self._queues: "OrderedDict[Any, deque]" = OrderedDict()
        #: Proxies handed to the live pool and not yet resolved.
        self._dispatched: set = set()
        self._inflight = 0
        self._max_inflight = max(2, 2 * pool.jobs)
        #: Requester tokens in dispatch order — lets tests assert fairness.
        self.dispatch_log: deque = deque(maxlen=256)

    def submit(self, requester: Any, func, args: Tuple[Any, ...]) -> _FairResult:
        proxy = _FairResult()
        with self._lock:
            queue = self._queues.get(requester)
            if queue is None:
                queue = deque()
                self._queues[requester] = queue
            queue.append((proxy, func, args))
        self._pump()
        return proxy

    def _pump(self) -> None:
        """Dispatch queued tasks into free in-flight slots, round-robin."""
        while True:
            with self._lock:
                if self._inflight >= self._max_inflight or not self._queues:
                    return
                requester = next(iter(self._queues))
                queue = self._queues[requester]
                proxy, func, args = queue.popleft()
                if queue:
                    # Rotate: this requester goes to the back of the merge.
                    self._queues.move_to_end(requester)
                else:
                    del self._queues[requester]
                self._dispatched.add(proxy)
                self._inflight += 1
                self.dispatch_log.append(requester)
                proxy._mark_dispatched()
            try:
                self._pool.ensure().apply_async(
                    func,
                    args,
                    callback=lambda value, p=proxy: self._done(p, value=value),
                    error_callback=lambda error, p=proxy: self._done(p, error=error),
                )
            except Exception as error:
                # Pool closed or spawn failed: fail this task, then keep
                # draining so every queued proxy resolves rather than hangs.
                self._done(proxy, error=error)

    def _done(
        self, proxy: _FairResult, value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if proxy not in self._dispatched:
                # Abandoned by a rebuild; a straggler callback from the old
                # generation must not double-decrement the slot count.
                return
            self._dispatched.discard(proxy)
            self._inflight -= 1
        proxy._resolve(value=value, error=error)
        self._pump()

    def abandon(self) -> None:
        """Fail dispatched-but-unresolved tasks after a pool rebuild."""
        with self._lock:
            dispatched = list(self._dispatched)
            self._dispatched.clear()
            self._inflight = 0
            queued = bool(self._queues)
        error = RuntimeError(
            "worker pool was rebuilt with fair-dispatched tasks in flight"
        )
        for proxy in dispatched:
            proxy._resolve(error=error)
        if queued:
            # Other requesters may be parked in get() with everything
            # already submitted — restart their drain into the fresh
            # generation (or fail them cleanly if the pool is closed).
            self._pump()


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """A rebuildable process pool plus its spooled deck payloads.

    Thread-safety: one warm pool is shared by every concurrent request of a
    serve daemon, so the lifecycle (:meth:`ensure`/:meth:`rebuild`/
    :meth:`close`), the spool index, and the calibration cache are guarded
    by an instance lock. The lock is never held across a fork or a worker
    round trip, only across bookkeeping.
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs}")
        self.jobs = jobs
        self.start_method = _resolve_start_method(start_method)
        self._context = multiprocessing.get_context(self.start_method)
        self._lock = threading.RLock()
        self._pool = None
        self._spool_dir: Optional[str] = None
        self._spooled: Dict[str, str] = {}
        self._dispatch_seconds: Optional[float] = None
        self._closed = False
        #: Times the workers were (re)spawned — observable by tests.
        self.generation = 0
        self._dispatcher = _FairDispatcher(self)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dispatch_log(self) -> deque:
        """Requester tokens in fair-dispatch order (observable by tests)."""
        return self._dispatcher.dispatch_log

    def ensure(self):
        """The live ``multiprocessing.Pool``, spawning workers if needed."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._pool is None:
                self._pool = self._context.Pool(
                    self.jobs, initializer=_pool_warmup
                )
                self.generation += 1
            return self._pool

    def apply_async(
        self, func, args: Tuple[Any, ...] = (), requester: Any = None
    ):
        """Submit one task; ``requester`` opts into fair-share dispatch.

        Without a requester token the task goes straight to the pool's own
        FIFO (the single-request fast path). With one, it queues in that
        requester's lane and reaches the pool in round-robin merge order
        across all active requesters, so concurrent checks share the
        workers fairly instead of first-submitter-takes-all.
        """
        if requester is None:
            return self.ensure().apply_async(func, args)
        return self._dispatcher.submit(requester, func, args)

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (empty before first use)."""
        with self._lock:
            if self._pool is None:
                return []
            return sorted(proc.pid for proc in self._pool._pool)

    # -- plan spooling -------------------------------------------------------

    def ensure_plan(
        self, digest: str, make_payload: Callable[[], bytes]
    ) -> Tuple[str, bool]:
        """Spool the payload for ``digest`` once; returns ``(path, shipped)``.

        ``shipped`` is True only when the payload was actually built and
        written — a repeat check of the same deck finds its digest spooled
        and ships nothing. The file outlives pool rebuilds (respawned
        workers just re-read it) and is deleted by :meth:`close`. The
        instance lock covers the whole build-and-publish so two concurrent
        requests spooling the same digest ship it exactly once.
        """
        with self._lock:
            path = self._spooled.get(digest)
            if path is not None and os.path.exists(path):
                return path, False
            if self._spool_dir is None:
                self._spool_dir = tempfile.mkdtemp(prefix="repro-warmpool-")
            path = os.path.join(self._spool_dir, f"{digest[:32]}.plan")
            payload = make_payload()
            fd, tmp = tempfile.mkstemp(prefix=".plan.", dir=self._spool_dir)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._spooled[digest] = path
            return path, True

    # -- calibration ---------------------------------------------------------

    def dispatch_seconds(self, *, measure: bool = False) -> Optional[float]:
        """Measured no-op round-trip cost of this pool (None = unmeasured).

        Measurement is explicit (``measure=True``) and only runs against
        already-spawned workers, so cold single-shot checks never pay for
        it; the first sample is discarded because under ``spawn`` it
        absorbs the worker's interpreter boot.
        """
        with self._lock:
            if self._dispatch_seconds is not None or not measure:
                return self._dispatch_seconds
            pool = self._pool
        if pool is None:
            return None
        # Measure outside the lock: three no-op round trips must not stall
        # a concurrent request's ensure()/ensure_plan() bookkeeping.
        try:
            samples = []
            for _ in range(_DISPATCH_SAMPLES):
                start = time.perf_counter()
                pool.apply_async(_noop).get(_DISPATCH_TIMEOUT)
                samples.append(time.perf_counter() - start)
            measured = min(samples[1:] or samples)
        except Exception:
            return self._dispatch_seconds
        with self._lock:
            if self._dispatch_seconds is None:
                self._dispatch_seconds = measured
            return self._dispatch_seconds

    # -- lifecycle -----------------------------------------------------------

    def rebuild(self) -> None:
        """Terminate the workers, keep the spool: the restart-ladder hook.

        The next :meth:`ensure` respawns a fresh generation; in-flight
        :class:`PlanRef` descriptors stay valid because the spool files
        survive, so a recycled pool re-warms itself without a reship.
        Fair-dispatched tasks the dead generation was running are failed
        immediately (see :meth:`_FairDispatcher.abandon`) so their waiters
        hit the retry ladder instead of a full task timeout.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        self._dispatcher.abandon()

    def close(self) -> None:
        """Terminate workers and delete the spool (idempotent, terminal)."""
        with self._lock:
            self._closed = True
        self.rebuild()
        with self._lock:
            self._spooled.clear()
            spool_dir, self._spool_dir = self._spool_dir, None
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Process-wide registry (the warm path)
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[int, Optional[str]], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(jobs: int, start_method: Optional[str] = None) -> WorkerPool:
    """The shared warm pool for (jobs, start method), created on first use.

    Registry lookups are locked: two concurrent requests racing here must
    land on the *same* WorkerPool, or the whole warm-state amortization
    story falls apart (each would spawn and then leak a pool).
    """
    key = (jobs, _resolve_start_method(start_method))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(jobs, start_method=key[1])
            _POOLS[key] = pool
        return pool


def release_pool(jobs: int, start_method: Optional[str] = None) -> None:
    """Close and forget one shared pool (``Engine.close`` calls this)."""
    key = (jobs, _resolve_start_method(start_method))
    with _POOLS_LOCK:
        pool = _POOLS.pop(key, None)
    if pool is not None:
        pool.close()


def shutdown_pools() -> None:
    """Close every shared pool (atexit hook; tests call it for isolation)."""
    with _POOLS_LOCK:
        pools = [_POOLS.pop(key) for key in list(_POOLS)]
    for pool in pools:
        try:
            pool.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


atexit.register(shutdown_pools)
