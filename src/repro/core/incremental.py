"""Incremental (windowed) checking — the windowed backend.

Production DRC flows re-check only the region an edit touched. Given a
window, the backend gathers just the geometry that can participate in a
violation whose marker overlaps the window — polygons overlapping the
window inflated by the rule distance, via the MBR-pruned layer range query
(paper §IV-A) — checks that sub-population flat, and keeps the violations
whose region overlaps the window.

The result equals running the full check and filtering its violations to
the window (asserted by the tests), at a cost proportional to the window's
content rather than the chip's.

The per-kind flat procedures come from the same
:func:`~repro.core.plan.kind_spec` registry the other backends use
(``spec.flat``), so a rule kind added there is automatically windowable.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..checks.base import Violation
from ..geometry import IDENTITY, Rect
from ..layout.library import Layout
from ..util.profile import PhaseProfile
from .plan import MODE_WINDOWED, CheckPlan, compile_plan, kind_spec, make_backend
from .results import CheckReport, CheckResult
from .rules import Rule


class WindowedBackend:
    """Executes a plan's rules against one window of the layout."""

    def __init__(self, plan: CheckPlan, window: Rect) -> None:
        if window.is_empty:
            raise ValueError("window must be non-empty")
        self.plan = plan
        self.window = window
        self.layout = plan.layout
        subtree = plan.caches.subtree
        top = plan.tree.top.name

        def gather(layer: int, margin: int):
            return subtree.polygons_in_window(
                top, IDENTITY, layer, window.inflated(margin)
            )

        def gather_rect(layer: int, rect: Rect):
            return subtree.polygons_in_window(top, IDENTITY, layer, rect)

        gather.rect = gather_rect
        gather.window = window
        self._gather = gather

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        """One rule on the window; violations clip to the window."""
        spec = kind_spec(rule.kind)
        violations = spec.flat(rule, self.layout, self._gather)
        return [v for v in violations if v.region.overlaps(self.window)]

    def stats(self) -> Dict[str, float]:
        return dict(
            pack_cache_hits=self.plan.caches.pack.hits,
            pack_cache_misses=self.plan.caches.pack.misses,
        )


def check_window(
    layout: Layout,
    window: Rect,
    *,
    rules: Sequence[Rule],
) -> CheckReport:
    """Check only the given window of ``layout``; violations clip to it."""
    if window.is_empty:
        raise ValueError("window must be non-empty")
    plan = compile_plan(layout, rules, mode=MODE_WINDOWED)
    backend = make_backend(plan, window=window)

    results: List[CheckResult] = []
    for rule in plan.rules:
        start = time.perf_counter()
        violations = backend.run(rule)
        results.append(
            CheckResult(
                rule=rule,
                violations=violations,
                seconds=time.perf_counter() - start,
            )
        )
    return CheckReport(layout.name, MODE_WINDOWED, results)
