"""Incremental checking: windowed backend, multi-window plans, and recheck.

Production DRC flows re-check only the region an edit touched. The
machinery here comes in three layers:

* :class:`WindowedBackend` executes a plan against a *region set* — one or
  many windows, coalesced into the exact disjoint cover of their union. It
  gathers just the geometry that can participate in a violation whose
  marker overlaps any window (polygons overlapping the windows inflated by
  the rule distance, via the MBR-pruned subtree query, one traversal for
  the whole set), checks that sub-population flat, and keeps violations
  overlapping the set. The result equals the full check filtered to the
  region set (asserted by the tests), at a cost proportional to the
  windows' content rather than the chip's.

* :func:`check_window` runs a whole deck against a region set, through the
  in-process windowed backend or the multiprocess pool (``options.jobs >
  1``) — the region set rides inside the spooled plan payload, so workers
  rebuild the identical windowed backend.

* :func:`recheck` is the true incremental path: diff two layout versions
  (:mod:`~repro.core.diff`), re-check each rule only inside its dirty
  halo, and splice the fresh violations into the previous report
  (:func:`~repro.core.results.splice_violations`). Rules whose layers are
  untouched reuse their cached result outright; globally coupled rules
  (coloring) re-run fully. The spliced violations are byte-identical to a
  cold full check of the new version.

The per-kind flat procedures come from the same
:func:`~repro.core.plan.kind_spec` registry the other backends use
(``spec.flat``), so a rule kind added there is automatically windowable —
provided it also declares its interaction distance.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from ..checks.base import Violation
from ..geometry import IDENTITY, Rect
from ..layout.library import Layout
from ..spatial.regions import RegionSet, WindowsLike
from ..util.profile import PhaseProfile
from .diff import FULL_RECHECK, LayoutDiff, diff_layouts
from .plan import (
    MODE_MULTIPROC,
    MODE_WINDOWED,
    CheckPlan,
    EngineOptions,
    compile_plan,
    kind_spec,
    make_backend,
)
from .packstore import resolve_store
from .reportcache import ReportCache, deck_digest, report_key
from .results import CheckReport, CheckResult, splice_violations
from .rules import Rule

#: Stats keys that report a configuration gauge, not an accumulating
#: counter — per-rule deltas keep their absolute value.
GAUGE_STATS = frozenset({"mp_jobs"})


def stats_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """What one rule added to a backend's cumulative counters."""
    delta: Dict[str, float] = {}
    for key, value in after.items():
        if key in GAUGE_STATS:
            delta[key] = value
        else:
            delta[key] = value - before.get(key, 0)
    return delta


class WindowedBackend:
    """Executes a plan's rules against a region set (one or many windows)."""

    def __init__(self, plan: CheckPlan, window: WindowsLike) -> None:
        regions = RegionSet.of(window)
        if regions.is_empty:
            raise ValueError("window must be non-empty")
        self.plan = plan
        self.regions = regions
        #: MBR of the whole set — the anchor for checks that need a single
        #: reach rect (coloring closure, min-overlap base gathering).
        self.window = regions.bounds
        self.layout = plan.layout
        subtree = plan.caches.subtree
        top = plan.tree.top.name

        def gather(layer: int, margin: int):
            windows = [r.inflated(margin) for r in regions.rects]
            return subtree.polygons_in_regions(top, IDENTITY, layer, windows)

        def gather_rect(layer: int, rect: Rect):
            return subtree.polygons_in_window(top, IDENTITY, layer, rect)

        gather.rect = gather_rect
        gather.window = regions.bounds
        self._gather = gather

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        """One rule on the region set; violations clip to the set."""
        spec = kind_spec(rule.kind)
        violations = spec.flat(rule, self.layout, self._gather)
        return [v for v in violations if self.regions.overlaps(v.region)]

    def stats(self) -> Dict[str, float]:
        store = self.plan.caches.store
        cache = store.counters() if store is not None else {}
        return dict(
            pack_cache_hits=self.plan.caches.pack.hits,
            pack_cache_misses=self.plan.caches.pack.misses,
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            cache_corrupt=cache.get("corrupt", 0),
            cache_bytes_read=cache.get("bytes_read", 0),
            cache_bytes_written=cache.get("bytes_written", 0),
        )

    def close(self) -> None:
        store = self.plan.caches.store
        if store is not None:
            store.persist_counters()


def check_window(
    layout: Layout,
    window: WindowsLike,
    *,
    rules: Sequence[Rule],
    options: Optional[EngineOptions] = None,
    tree=None,
) -> CheckReport:
    """Check only the given window(s) of ``layout``; violations clip to them.

    ``window`` is one rect, a sequence of rects (overlapping windows are
    coalesced; each violation reports once however many windows it
    straddles), or a prebuilt :class:`~repro.spatial.regions.RegionSet`.

    With ``options.jobs > 1`` the rules fan out across a worker-process
    pool (rule-level tasks; windowed gathering has no row partition), each
    worker running the same windowed procedure — the report is identical.
    """
    regions = RegionSet.of(window)
    if regions.is_empty:
        raise ValueError("window must be non-empty")
    jobs = options.jobs if options is not None else 1
    mode = MODE_MULTIPROC if jobs > 1 else MODE_WINDOWED
    plan = compile_plan(layout, rules, options, mode=mode, tree=tree)
    backend = make_backend(plan, window=regions)

    results: List[CheckResult] = []
    try:
        prefetch = getattr(backend, "prefetch", None)
        if prefetch is not None:
            prefetch()
        before = backend.stats()
        for rule in plan.rules:
            start = time.perf_counter()
            violations = backend.run(rule)
            after = backend.stats()
            results.append(
                CheckResult(
                    rule=rule,
                    violations=violations,
                    seconds=time.perf_counter() - start,
                    stats=stats_delta(before, after),
                )
            )
            before = after
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
    return CheckReport(layout.name, MODE_WINDOWED, results)


# ---------------------------------------------------------------------------
# True incremental re-check


#: Mode label of spliced reports.
MODE_RECHECK = "recheck"


@dataclasses.dataclass
class RecheckOutcome:
    """A spliced report plus how it was produced (per-rule disposition)."""

    report: CheckReport
    diff: LayoutDiff
    #: rule name -> "cached" | "windowed" | "full" | "cold"
    disposition: Dict[str, str]
    #: True when the baseline came from the persistent report cache.
    cache_hit: bool
    #: Set when ``verify=True``: the cold reference report.
    reference: Optional[CheckReport] = None

    @property
    def rules_recheck(self) -> List[str]:
        return [n for n, d in self.disposition.items() if d != "cached"]


def recheck(
    old: Layout,
    new: Layout,
    *,
    rules: Sequence[Rule],
    options: Optional[EngineOptions] = None,
    cached: Optional[CheckReport] = None,
    verify: bool = False,
) -> RecheckOutcome:
    """Re-check ``new`` given a previous report of ``old``, splicing results.

    The baseline report comes from ``cached`` (an in-memory report of the
    *old* version) or from the persistent report cache beside the pack
    store (``options.cache_dir`` / ``REPRO_CACHE_DIR``), keyed by the rule
    deck digest and the old version's per-layer geometry digests. Without a
    baseline the new version is checked cold — and the result stored, so
    the *next* edit rechecks incrementally.

    Each rule is dispatched on its diff: untouched layers reuse the cached
    result verbatim; localisable edits re-check only the dirty rects
    inflated by the rule's interaction distance and splice; globally
    coupled rules re-run fully. ``verify=True`` additionally runs the cold
    full check and asserts the spliced violations match it byte-for-byte.
    """
    deck = list(rules)
    if not deck:
        raise ValueError("no rules to recheck")
    opts = options if options is not None else EngineOptions()

    diff = diff_layouts(old, new)
    store = resolve_store(opts)
    cache = ReportCache(store) if store is not None else None
    deck_dig = deck_digest(deck)

    # Cache keys use each version's own layer list, matching what a plain
    # Engine.check of that version stores (diff digests span the union).
    old_key_digests = {L: diff.old_digests[L] for L in old.layers()}
    new_key_digests = {L: diff.new_digests[L] for L in new.layers()}

    baseline = cached
    cache_hit = False
    if baseline is None and cache is not None and deck_dig is not None:
        baseline = cache.load(report_key(deck_dig, old_key_digests), deck)
        cache_hit = baseline is not None
    if baseline is not None:
        try:
            baseline_results = {r.rule.name: r for r in baseline.results}
            if set(baseline_results) != {rule.name for rule in deck}:
                baseline = None
        except AttributeError:
            baseline = None

    if baseline is None:
        # Cold start: full check of the new version, stored for next time.
        report = _full_check(new, deck, opts, cache, deck_dig, new_key_digests)
        disposition = {rule.name: "cold" for rule in deck}
        outcome = RecheckOutcome(report, diff, disposition, cache_hit=False)
        if verify:
            outcome.reference = report
        return outcome

    plan = compile_plan(new, deck, opts, mode=MODE_WINDOWED)
    results: List[CheckResult] = []
    disposition: Dict[str, str] = {}
    full_backend = None
    try:
        for rule in deck:
            regions = diff.regions_for(rule)
            old_result = baseline_results[rule.name]
            if regions is None:
                # No involved layer changed: the cached result is exact.
                disposition[rule.name] = "cached"
                results.append(
                    CheckResult(
                        rule=rule,
                        violations=list(old_result.violations),
                        seconds=0.0,
                        stats={"recheck_cached": 1},
                    )
                )
            elif regions is FULL_RECHECK:
                if full_backend is None:
                    from .sequential import SequentialBackend

                    full_backend = SequentialBackend(plan)
                disposition[rule.name] = "full"
                start = time.perf_counter()
                violations = full_backend.run(rule)
                results.append(
                    CheckResult(
                        rule=rule,
                        violations=violations,
                        seconds=time.perf_counter() - start,
                        stats={"recheck_full": 1},
                    )
                )
            else:
                disposition[rule.name] = "windowed"
                start = time.perf_counter()
                backend = WindowedBackend(plan, regions)
                fresh = backend.run(rule)
                violations = splice_violations(
                    old_result.violations, fresh, regions
                )
                results.append(
                    CheckResult(
                        rule=rule,
                        violations=violations,
                        seconds=time.perf_counter() - start,
                        stats={
                            "recheck_windowed": 1,
                            "recheck_window_rects": len(regions),
                            "recheck_fresh_violations": len(fresh),
                        },
                    )
                )
    finally:
        store2 = plan.caches.store
        if store2 is not None:
            store2.persist_counters()

    report = CheckReport(new.name, MODE_RECHECK, results)
    if cache is not None and deck_dig is not None:
        cache.save(report_key(deck_dig, new_key_digests), report)

    outcome = RecheckOutcome(report, diff, disposition, cache_hit=cache_hit)
    if verify:
        reference = _full_check(new, deck, opts, None, None, None)
        outcome.reference = reference
        if report.to_csv() != reference.to_csv():
            raise AssertionError(
                "spliced recheck report diverges from the cold full check"
            )
    return outcome


def _full_check(
    layout: Layout,
    deck: List[Rule],
    opts: EngineOptions,
    cache: Optional[ReportCache],
    deck_dig: Optional[str],
    digests: Optional[Dict[int, str]],
) -> CheckReport:
    """Cold full check through the regular engine path (mode respected)."""
    from .engine import Engine

    with Engine(options=opts) as engine:
        report = engine.check(layout, rules=deck)
    if cache is not None and deck_dig is not None and digests is not None:
        cache.save(report_key(deck_dig, digests), report)
    return report
