"""Incremental (windowed) checking.

Production DRC flows re-check only the region an edit touched. Given a
window, the engine gathers just the geometry that can participate in a
violation whose marker overlaps the window — polygons overlapping the
window inflated by the rule distance, via the MBR-pruned layer range query
(paper §IV-A) — checks that sub-population flat, and keeps the violations
whose region overlaps the window.

The result equals running the full check and filtering its violations to
the window (asserted by the tests), at a cost proportional to the window's
content rather than the chip's.
"""

from __future__ import annotations

from typing import List, Sequence

from ..checks.area import check_area
from ..checks.base import Violation
from ..checks.corner import check_corner_spacing
from ..checks.enclosure import check_enclosure
from ..checks.ensure import check_ensures
from ..checks.rectilinear import check_rectilinear
from ..checks.spacing import check_spacing
from ..checks.width import check_width
from ..geometry import IDENTITY, Rect
from ..hierarchy.pruning import SubtreeWindow
from ..hierarchy.tree import HierarchyTree
from ..layout.library import Layout
from .results import CheckReport, CheckResult
from .rules import Rule, RuleKind, validate_rules


def check_window(
    layout: Layout,
    window: Rect,
    *,
    rules: Sequence[Rule],
) -> CheckReport:
    """Check only the given window of ``layout``; violations clip to it."""
    import time

    if window.is_empty:
        raise ValueError("window must be non-empty")
    validate_rules(list(rules))
    tree = HierarchyTree(layout)
    subtree = SubtreeWindow(tree)
    top = tree.top.name

    def gather(layer: int, margin: int):
        return subtree.polygons_in_window(
            top, IDENTITY, layer, window.inflated(margin)
        )

    def gather_rect(layer: int, rect):
        return subtree.polygons_in_window(top, IDENTITY, layer, rect)

    gather.rect = gather_rect
    gather.window = window

    results: List[CheckResult] = []
    for rule in rules:
        start = time.perf_counter()
        violations = _run_rule(rule, layout, gather)
        violations = [v for v in violations if v.region.overlaps(window)]
        results.append(
            CheckResult(
                rule=rule,
                violations=violations,
                seconds=time.perf_counter() - start,
            )
        )
    return CheckReport(layout.name, "windowed", results)


def _run_rule(rule: Rule, layout: Layout, gather) -> List[Violation]:
    if rule.kind is RuleKind.WIDTH:
        return check_width(gather(rule.layer, 0), rule.layer, rule.value)
    if rule.kind is RuleKind.AREA:
        return check_area(gather(rule.layer, 0), rule.layer, rule.value)
    if rule.kind is RuleKind.SPACING:
        return check_spacing(gather(rule.layer, rule.value), rule.layer, rule.value)
    if rule.kind is RuleKind.CORNER_SPACING:
        return check_corner_spacing(
            gather(rule.layer, rule.value), rule.layer, rule.value
        )
    if rule.kind is RuleKind.ENCLOSURE:
        return check_enclosure(
            gather(rule.layer, rule.value),
            gather(rule.other_layer, rule.value),
            rule.layer,
            rule.other_layer,
            rule.value,
        )
    if rule.kind is RuleKind.MIN_OVERLAP:
        from ..checks.overlap import check_min_overlap
        from ..geometry import union_all

        tops = gather(rule.layer, 0)
        # Base partners only matter where they intersect a gathered top
        # polygon, which can extend beyond the window: gather the base layer
        # over the union of the window and every gathered top MBR.
        reach = union_all([gather.window] + [p.mbr for p in tops])
        bases = gather.rect(rule.other_layer, reach)
        return check_min_overlap(
            tops, bases, rule.layer, rule.other_layer, rule.value
        )
    if rule.kind is RuleKind.RECTILINEAR:
        layers = [rule.layer] if rule.layer is not None else layout.layers()
        out: List[Violation] = []
        for layer in layers:
            out.extend(check_rectilinear(gather(layer, 0), layer))
        return out
    if rule.kind is RuleKind.ENSURES:
        layers = [rule.layer] if rule.layer is not None else layout.layers()
        out = []
        for layer in layers:
            out.extend(check_ensures(gather(layer, 0), layer, rule.predicate))
        return out
    raise NotImplementedError(rule.kind)
