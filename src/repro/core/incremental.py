"""Incremental (windowed) checking — the windowed backend.

Production DRC flows re-check only the region an edit touched. Given a
window, the backend gathers just the geometry that can participate in a
violation whose marker overlaps the window — polygons overlapping the
window inflated by the rule distance, via the MBR-pruned layer range query
(paper §IV-A) — checks that sub-population flat, and keeps the violations
whose region overlaps the window.

The result equals running the full check and filtering its violations to
the window (asserted by the tests), at a cost proportional to the window's
content rather than the chip's.

The per-kind flat procedures come from the same
:func:`~repro.core.plan.kind_spec` registry the other backends use
(``spec.flat``), so a rule kind added there is automatically windowable.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..checks.base import Violation
from ..geometry import IDENTITY, Rect
from ..layout.library import Layout
from ..util.profile import PhaseProfile
from .plan import (
    MODE_MULTIPROC,
    MODE_WINDOWED,
    CheckPlan,
    EngineOptions,
    compile_plan,
    kind_spec,
    make_backend,
)
from .results import CheckReport, CheckResult
from .rules import Rule


class WindowedBackend:
    """Executes a plan's rules against one window of the layout."""

    def __init__(self, plan: CheckPlan, window: Rect) -> None:
        if window.is_empty:
            raise ValueError("window must be non-empty")
        self.plan = plan
        self.window = window
        self.layout = plan.layout
        subtree = plan.caches.subtree
        top = plan.tree.top.name

        def gather(layer: int, margin: int):
            return subtree.polygons_in_window(
                top, IDENTITY, layer, window.inflated(margin)
            )

        def gather_rect(layer: int, rect: Rect):
            return subtree.polygons_in_window(top, IDENTITY, layer, rect)

        gather.rect = gather_rect
        gather.window = window
        self._gather = gather

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        """One rule on the window; violations clip to the window."""
        spec = kind_spec(rule.kind)
        violations = spec.flat(rule, self.layout, self._gather)
        return [v for v in violations if v.region.overlaps(self.window)]

    def stats(self) -> Dict[str, float]:
        store = self.plan.caches.store
        cache = store.counters() if store is not None else {}
        return dict(
            pack_cache_hits=self.plan.caches.pack.hits,
            pack_cache_misses=self.plan.caches.pack.misses,
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            cache_corrupt=cache.get("corrupt", 0),
            cache_bytes_read=cache.get("bytes_read", 0),
            cache_bytes_written=cache.get("bytes_written", 0),
        )

    def close(self) -> None:
        store = self.plan.caches.store
        if store is not None:
            store.persist_counters()


def check_window(
    layout: Layout,
    window: Rect,
    *,
    rules: Sequence[Rule],
    options: Optional[EngineOptions] = None,
) -> CheckReport:
    """Check only the given window of ``layout``; violations clip to it.

    With ``options.jobs > 1`` the rules fan out across a worker-process
    pool (rule-level tasks; windowed gathering has no row partition), each
    worker running the same windowed procedure — the report is identical.
    """
    if window.is_empty:
        raise ValueError("window must be non-empty")
    jobs = options.jobs if options is not None else 1
    mode = MODE_MULTIPROC if jobs > 1 else MODE_WINDOWED
    plan = compile_plan(layout, rules, options, mode=mode)
    backend = make_backend(plan, window=window)

    results: List[CheckResult] = []
    try:
        prefetch = getattr(backend, "prefetch", None)
        if prefetch is not None:
            prefetch()
        for rule in plan.rules:
            start = time.perf_counter()
            violations = backend.run(rule)
            results.append(
                CheckResult(
                    rule=rule,
                    violations=violations,
                    seconds=time.perf_counter() - start,
                    stats=backend.stats(),
                )
            )
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
    return CheckReport(layout.name, MODE_WINDOWED, results)
