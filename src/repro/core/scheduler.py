"""Application-layer task scheduling (paper §V-A, §IV-C, §I).

The paper's application layer "schedules computation tasks and dispatches
them to algorithms"; intra-polygon checks are "scheduled to the task graph"
(§IV-C), and §I notes that "different design rules can be checked
concurrently, attaining task parallelism, which could be further combined
with data parallelism".

This module makes that concrete:

* :class:`TaskGraph` — a DAG of named tasks with dependencies and
  deterministic topological execution;
* :func:`build_rule_graph` — one task per rule, with dependencies inferred
  from the rules themselves (every rule on a layer depends on that layer's
  shape-sanity rule when present, mirroring how decks gate geometric checks
  on well-formedness);
* :class:`ScheduleAnalysis` — after execution, replay the measured task
  durations over an N-worker pool (list scheduling honouring dependencies)
  to obtain the task-parallel makespan — the same critical-path modelling
  used for the KLayout tiling baseline, now at rule granularity.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ReproError
from .rules import Rule, RuleKind


class SchedulerError(ReproError):
    """Ill-formed task graph (cycle, unknown dependency, duplicate name)."""


@dataclasses.dataclass
class Task:
    """One schedulable unit of work."""

    name: str
    action: Callable[[], object]
    depends_on: List[str] = dataclasses.field(default_factory=list)
    # filled by execution:
    seconds: float = 0.0
    result: object = None
    done: bool = False


class TaskGraph:
    """A dependency DAG of tasks with deterministic topological execution."""

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    def add(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise SchedulerError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_task(
        self,
        name: str,
        action: Callable[[], object],
        *,
        depends_on: Sequence[str] = (),
    ) -> Task:
        return self.add(Task(name, action, list(depends_on)))

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise SchedulerError(f"unknown task {name!r}") from None

    def __len__(self) -> int:
        return len(self._tasks)

    def topological_order(self) -> List[Task]:
        """Dependency-respecting deterministic order (ties by insertion)."""
        for task in self._tasks.values():
            for dep in task.depends_on:
                if dep not in self._tasks:
                    raise SchedulerError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        order: List[Task] = []
        state: Dict[str, int] = {}

        def visit(name: str, trail: List[str]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                raise SchedulerError(
                    "task cycle: " + " -> ".join(trail + [name])
                )
            state[name] = 0
            for dep in self._tasks[name].depends_on:
                visit(dep, trail + [name])
            state[name] = 1
            order.append(self._tasks[name])

        for name in self._tasks:
            visit(name, [])
        return order

    def execute(self) -> "ScheduleAnalysis":
        """Run every task once (dependencies first), timing each."""
        for task in self.topological_order():
            start = time.perf_counter()
            task.result = task.action()
            task.seconds = time.perf_counter() - start
            task.done = True
        return ScheduleAnalysis(list(self._tasks.values()))


@dataclasses.dataclass
class ScheduleAnalysis:
    """Replay measured task durations over an N-worker pool."""

    tasks: List[Task]

    @property
    def serial_seconds(self) -> float:
        return sum(t.seconds for t in self.tasks)

    def critical_path_seconds(self) -> float:
        """Longest dependency chain — the floor for any worker count."""
        finish: Dict[str, float] = {}

        def finish_time(task: Task) -> float:
            if task.name in finish:
                return finish[task.name]
            start = max(
                (finish_time(self._by_name(dep)) for dep in task.depends_on),
                default=0.0,
            )
            finish[task.name] = start + task.seconds
            return finish[task.name]

        return max((finish_time(t) for t in self.tasks), default=0.0)

    def makespan(self, workers: int) -> float:
        """Event-simulated list schedule on ``workers``, honouring deps.

        Ready tasks are dispatched longest-first (LPT) to idle workers; the
        clock advances to the next task completion, releasing dependents.
        """
        if workers < 1:
            raise SchedulerError(f"need at least 1 worker, got {workers}")
        if not self.tasks:
            return 0.0
        by_name = {t.name: t for t in self.tasks}
        deps_left = {t.name: len(t.depends_on) for t in self.tasks}
        dependents: Dict[str, List[str]] = {t.name: [] for t in self.tasks}
        for t in self.tasks:
            for dep in t.depends_on:
                dependents[dep].append(t.name)

        ready = [name for name, count in deps_left.items() if count == 0]
        worker_free = [0.0] * workers
        running: List = []  # heap of (finish_time, name)
        clock = 0.0
        finished = 0
        while finished < len(self.tasks):
            ready.sort(key=lambda n: (-by_name[n].seconds, n))
            waiting: List[str] = []
            for name in ready:
                idle = [w for w in range(workers) if worker_free[w] <= clock]
                if idle:
                    finish = clock + by_name[name].seconds
                    worker_free[idle[0]] = finish
                    heapq.heappush(running, (finish, name))
                else:
                    waiting.append(name)
            ready = waiting
            if not running:
                raise SchedulerError("deadlock: tasks remain but none ready")
            clock, name = heapq.heappop(running)
            finished += 1
            for dependent in dependents[name]:
                deps_left[dependent] -= 1
                if deps_left[dependent] == 0:
                    ready.append(dependent)
        return max(max(worker_free), clock)

    def _by_name(self, name: str) -> Task:
        for t in self.tasks:
            if t.name == name:
                return t
        raise SchedulerError(f"unknown task {name!r}")

    def summary(self) -> str:
        lines = [
            f"{len(self.tasks)} tasks, serial {self.serial_seconds * 1e3:.2f} ms, "
            f"critical path {self.critical_path_seconds() * 1e3:.2f} ms"
        ]
        for workers in (2, 4, 8):
            lines.append(
                f"  {workers} workers: makespan {self.makespan(workers) * 1e3:.2f} ms"
            )
        return "\n".join(lines)


def infer_rule_dependencies(rules: Sequence[Rule]) -> Dict[str, tuple]:
    """Rule name -> names of the rules it must run after.

    Rule decks commonly gate distance/area measurements on shape sanity
    (a non-rectilinear polygon makes edge checks meaningless): every
    geometric rule on a layer depends on that layer's shape rule when one
    is present. Plan compilation stores this on each compiled rule, and
    :func:`build_rule_graph` turns it into task-graph edges.
    """
    shape_rules: Dict[Optional[int], str] = {}
    for rule in rules:
        if rule.kind is RuleKind.RECTILINEAR:
            shape_rules[rule.layer] = rule.name
    dependencies: Dict[str, tuple] = {}
    for rule in rules:
        deps: List[str] = []
        if rule.kind is not RuleKind.RECTILINEAR:
            for candidate_layer in (rule.layer, None):
                dep = shape_rules.get(candidate_layer)
                if dep is not None and dep != rule.name:
                    deps.append(dep)
                    break
        dependencies[rule.name] = tuple(deps)
    return dependencies


def build_rule_graph(
    rules: Sequence[Rule],
    run_rule: Callable[[Rule], object],
) -> TaskGraph:
    """One task per rule, gated by :func:`infer_rule_dependencies`."""
    graph = TaskGraph()
    dependencies = infer_rule_dependencies(rules)
    for rule in rules:
        graph.add_task(
            rule.name,
            lambda r=rule: run_rule(r),
            depends_on=list(dependencies[rule.name]),
        )
    return graph


def build_plan_graph(plan, run_rule: Callable[[Rule], object]) -> TaskGraph:
    """Task graph over a compiled :class:`~repro.core.plan.CheckPlan`.

    Uses the dependencies plan compilation already inferred, so scheduling
    and compilation cannot drift apart.
    """
    graph = TaskGraph()
    for compiled in plan.compiled:
        graph.add_task(
            compiled.name,
            lambda r=compiled.rule: run_rule(r),
            depends_on=list(compiled.depends_on),
        )
    return graph


# ---------------------------------------------------------------------------
# Shard planning (multi-core row sharding)
# ---------------------------------------------------------------------------

#: How many shards each worker gets on average. Oversubscription keeps the
#: pool's shared task queue non-empty so idle workers steal the remaining
#: shards instead of waiting on a skewed one (the paper's row-skew problem,
#: now across cores).
SHARD_OVERSUBSCRIPTION = 4


def greedy_balanced_shards(
    weights: Sequence[int], num_shards: int
) -> List[List[int]]:
    """Greedy size-balanced assignment of weighted items to shards (LPT).

    Items (indices into ``weights``) are taken heaviest-first and each lands
    in the currently lightest shard — the classic longest-processing-time
    heuristic, guaranteeing a makespan within 4/3 of optimal. Zero-weight
    items are dropped (an empty row produces no work). The result is
    deterministic: ties break on item index, then shard index; shards are
    returned heaviest-first (the submission order that lets a work-stealing
    queue drain the big shards while small ones backfill), each shard's
    members sorted ascending.
    """
    if num_shards < 1:
        raise SchedulerError(f"need at least 1 shard, got {num_shards}")
    items = sorted(
        (i for i, w in enumerate(weights) if w > 0),
        key=lambda i: (-weights[i], i),
    )
    if not items:
        return []
    if num_shards == 1 or len(items) == 1:
        # Degenerate plans skip the heap: one shard holding every weighted
        # item (callers treat a single-shard plan as "run it in-process").
        return [sorted(items)]
    num_shards = min(num_shards, len(items))
    loads: List = [(0, shard, []) for shard in range(num_shards)]
    heapq.heapify(loads)
    for item in items:
        load, shard, members = heapq.heappop(loads)
        members.append(item)
        heapq.heappush(loads, (load + weights[item], shard, members))
    shards = [
        (load, shard, sorted(members)) for load, shard, members in loads if members
    ]
    shards.sort(key=lambda entry: (-entry[0], entry[1]))
    return [members for _, _, members in shards]


def shard_count(num_items: int, jobs: int) -> int:
    """How many shards to cut ``num_items`` weighted items into for ``jobs``
    workers: oversubscribed for stealing, never more shards than items."""
    if jobs < 1:
        raise SchedulerError(f"need at least 1 job, got {jobs}")
    return max(1, min(num_items, jobs * SHARD_OVERSUBSCRIPTION))


# ---------------------------------------------------------------------------
# Fair-share interleaving (multi-request pool multiplexing)
# ---------------------------------------------------------------------------


def round_robin_interleave(sequences: Sequence[Sequence]) -> List:
    """Interleave several task sequences one item at a time, round-robin.

    ``[[a1, a2, a3], [b1, b2]]`` becomes ``[a1, b1, a2, b2, a3]``: each
    requester contributes its next item in turn, so a long sequence cannot
    monopolize a shared queue ahead of a short one. Order *within* each
    sequence is preserved — this only decides the merge order, which is why
    a fair-share dispatcher built on it cannot change any requester's own
    result ordering. Empty sequences are skipped; the merge is
    deterministic in the order the sequences are given.
    """
    merged: List = []
    cursors = [iter(seq) for seq in sequences]
    while cursors:
        survivors = []
        for cursor in cursors:
            try:
                merged.append(next(cursor))
            except StopIteration:
                continue
            survivors.append(cursor)
        cursors = survivors
    return merged
