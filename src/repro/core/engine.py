"""The OpenDRC engine facade (paper Fig. 1 / Listing 1).

Usage mirrors the paper::

    import repro as odrc

    db = odrc.gdsii.read_layout("design.gds")
    engine = odrc.Engine(mode="parallel")
    engine.add_rules([
        odrc.rules.polygons().is_rectilinear(),
        odrc.rules.layer(19).width().greater_than(18),
    ])
    report = engine.check(db)

``check`` runs the full flow: parse/database (done by the caller), layer-wise
hierarchy-tree construction, adaptive row partition, then the sequential or
parallel branch per rule.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from ..gpu.device import Device
from ..hierarchy.tree import HierarchyTree
from ..layout.library import Layout
from ..util.profile import PhaseProfile
from .parallel import DEFAULT_BRUTE_FORCE_THRESHOLD, ParallelChecker
from .results import CheckReport, CheckResult
from .rules import Rule, validate_rules
from .sequential import SequentialChecker

MODE_SEQUENTIAL = "sequential"
MODE_PARALLEL = "parallel"


@dataclasses.dataclass
class EngineOptions:
    """Tuning knobs; defaults match the paper's described behaviour."""

    mode: str = MODE_SEQUENTIAL
    use_rows: bool = True  # adaptive row partition (paper §IV-B)
    num_streams: int = 2  # CUDA streams for async overlap (paper §V-C)
    brute_force_threshold: int = DEFAULT_BRUTE_FORCE_THRESHOLD  # executor choice (§IV-E)
    fuse_rows: bool = True  # fused segmented-row launches; False = per-row ablation

    def __post_init__(self) -> None:
        if self.mode not in (MODE_SEQUENTIAL, MODE_PARALLEL):
            raise ValueError(f"unknown mode {self.mode!r}")


class Engine:
    """The DRC engine: holds a rule deck and executes it on layouts."""

    def __init__(
        self,
        mode: Optional[str] = None,
        *,
        options: Optional[EngineOptions] = None,
        device: Optional[Device] = None,
    ) -> None:
        if options is not None:
            if mode is not None and mode != options.mode:
                raise ValueError(
                    f"conflicting modes: positional mode {mode!r} vs "
                    f"options.mode {options.mode!r}; pass one or make them agree"
                )
            self.options = options
        else:
            self.options = EngineOptions(mode=mode if mode is not None else MODE_SEQUENTIAL)
        if self.options.mode not in (MODE_SEQUENTIAL, MODE_PARALLEL):
            raise ValueError(f"unknown mode {self.options.mode!r}")
        self.device = device
        self.rules: List[Rule] = []
        #: Profiles of the last check() call, keyed by rule name (Fig. 4 data).
        self.last_profiles: Dict[str, PhaseProfile] = {}
        self.last_checker = None

    # -- deck management ------------------------------------------------------

    def add_rules(self, rules: Sequence[Rule]) -> "Engine":
        """Append rules to the deck (chainable, as in Listing 1)."""
        combined = self.rules + list(rules)
        validate_rules(combined)
        self.rules = combined
        return self

    def add_rule(self, rule: Rule) -> "Engine":
        return self.add_rules([rule])

    def clear_rules(self) -> "Engine":
        self.rules = []
        return self

    # -- execution ---------------------------------------------------------------

    def check(
        self, layout: Layout, *, rules: Optional[Sequence[Rule]] = None
    ) -> CheckReport:
        """Run the deck (or an explicit rule list) on ``layout``."""
        deck = list(rules) if rules is not None else self.rules
        if not deck:
            raise ValueError("no rules to check; call add_rules() first")
        validate_rules(deck)

        tree = HierarchyTree(layout)
        checker = self._make_checker(layout, tree)
        self.last_checker = checker
        self.last_profiles = {}

        results: List[CheckResult] = []
        for rule in deck:
            profile = PhaseProfile()
            start = time.perf_counter()
            violations = checker.run(rule, profile)
            seconds = time.perf_counter() - start
            self.last_profiles[rule.name] = profile
            results.append(
                CheckResult(
                    rule=rule,
                    violations=violations,
                    seconds=seconds,
                    profile=profile,
                    stats=self._checker_stats(checker),
                )
            )
        return CheckReport(layout.name, self.options.mode, results)

    def check_with_task_graph(
        self,
        layout: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        workers: int = 4,
    ):
        """Run the deck through the application-layer task graph.

        Rules become tasks (shape rules gate the geometric rules of their
        layer); execution is topological, and the returned
        :class:`~repro.core.scheduler.ScheduleAnalysis` replays the measured
        durations over ``workers`` to quantify rule-level task parallelism
        (paper §I). Returns ``(report, analysis)``.
        """
        from .scheduler import build_rule_graph

        deck = list(rules) if rules is not None else self.rules
        if not deck:
            raise ValueError("no rules to check; call add_rules() first")
        validate_rules(deck)
        tree = HierarchyTree(layout)
        checker = self._make_checker(layout, tree)
        self.last_checker = checker
        self.last_profiles = {}

        results_by_name: Dict[str, CheckResult] = {}

        def run_rule(rule: Rule) -> CheckResult:
            profile = PhaseProfile()
            start = time.perf_counter()
            violations = checker.run(rule, profile)
            seconds = time.perf_counter() - start
            self.last_profiles[rule.name] = profile
            result = CheckResult(
                rule=rule,
                violations=violations,
                seconds=seconds,
                profile=profile,
                stats=self._checker_stats(checker),
            )
            results_by_name[rule.name] = result
            return result

        graph = build_rule_graph(deck, run_rule)
        analysis = graph.execute()
        report = CheckReport(
            layout.name,
            self.options.mode,
            [results_by_name[rule.name] for rule in deck],
        )
        return report, analysis

    def _make_checker(self, layout: Layout, tree: HierarchyTree):
        if self.options.mode == MODE_PARALLEL:
            return ParallelChecker(
                layout,
                tree=tree,
                device=self.device,
                num_streams=self.options.num_streams,
                brute_force_threshold=self.options.brute_force_threshold,
                use_rows=self.options.use_rows,
                fuse_rows=self.options.fuse_rows,
            )
        return SequentialChecker(layout, tree=tree, use_rows=self.options.use_rows)

    @staticmethod
    def _checker_stats(checker) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        pruning = getattr(checker, "pruning", None)
        if pruning is not None:
            stats.update(
                checks_run=pruning.checks_run,
                checks_reused=pruning.checks_reused,
                pairs_considered=pruning.pairs_considered,
                pairs_pruned_mbr=pruning.pairs_pruned_mbr,
            )
        executor_counts = getattr(checker, "executor_counts", None)
        if executor_counts is not None:
            stats.update(
                kernels_bruteforce=executor_counts["bruteforce"],
                kernels_sweepline=executor_counts["sweepline"],
            )
        device = getattr(checker, "device", None)
        if device is not None:
            counters = device.counters()
            stats.update(
                kernel_launches=counters["kernel_launches"],
                h2d_copies=counters["h2d_copies"],
                h2d_bytes=counters["h2d_bytes"],
                d2h_copies=counters["d2h_copies"],
            )
        fusion_stats = getattr(checker, "fusion_stats", None)
        if fusion_stats is not None:
            stats.update(
                fused_launches=fusion_stats["fused_launches"],
                fused_segments=fusion_stats["fused_segments"],
            )
        pack_cache = getattr(checker, "pack_cache", None)
        if pack_cache is not None:
            stats.update(
                pack_cache_hits=pack_cache.hits,
                pack_cache_misses=pack_cache.misses,
            )
        return stats
