"""The OpenDRC engine facade (paper Fig. 1 / Listing 1).

Usage mirrors the paper::

    import repro as odrc

    db = odrc.gdsii.read_layout("design.gds")
    engine = odrc.Engine(mode="parallel")
    engine.add_rules([
        odrc.rules.polygons().is_rectilinear(),
        odrc.rules.layer(19).width().greater_than(18),
    ])
    report = engine.check(db)

``check`` is the two-stage pipeline of the paper's application layer
(§V-A): the deck is first **compiled** against the layout into a
:class:`~repro.core.plan.CheckPlan` (validation, per-kind strategy
resolution, dependency inference, shared caches), then **executed** by the
:class:`~repro.core.plan.Backend` the plan's mode selects, driven through
the task scheduler so rule dependencies are honoured.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..gpu.device import Device
from ..layout.library import Layout
from ..util.profile import PhaseProfile
from . import workerpool
from .plan import (
    MODE_MULTIPROC,
    MODE_PARALLEL,
    MODE_SEQUENTIAL,
    CheckPlan,
    EngineOptions,
    compile_plan,
    make_backend,
)
from .results import CheckReport, CheckResult
from .rules import Rule, validate_rules
from .scheduler import build_plan_graph

__all__ = [
    "CheckContext",
    "Engine",
    "EngineOptions",
    "MODE_PARALLEL",
    "MODE_SEQUENTIAL",
]


@dataclasses.dataclass
class CheckContext:
    """All mutable state of one ``check()`` execution, owned by one caller.

    Before concurrent serving, this state lived directly on :class:`Engine`
    (``last_profiles`` filled in while rules ran, ``last_checker`` doubling
    as "the backend currently executing"), which made two simultaneous
    checks through one engine corrupt each other's phase timers and result
    maps. Factoring it into a per-request context makes ``check()``
    re-entrant: every concurrent request gets its own plan, backend,
    profiles, and result map, while the engine's heavyweight shared state
    (warm worker pool, pack store, cost model) is shared deliberately and
    guarded at its own mutation points. The engine's ``last_*`` attributes
    survive as end-of-check snapshots (last writer wins) for the CLI and
    tests that introspect a serial engine.
    """

    plan: CheckPlan
    backend: object
    #: Rule name -> PhaseProfile, filled in as each rule executes.
    profiles: Dict[str, PhaseProfile] = dataclasses.field(default_factory=dict)
    #: Rule name -> CheckResult, merged into deck order for the report.
    results_by_name: Dict[str, CheckResult] = dataclasses.field(
        default_factory=dict
    )
    report: Optional[CheckReport] = None
    analysis: Optional[object] = None


class Engine:
    """The DRC engine: holds a rule deck and executes it on layouts."""

    def __init__(
        self,
        mode: Optional[str] = None,
        *,
        options: Optional[EngineOptions] = None,
        device: Optional[Device] = None,
    ) -> None:
        if options is not None:
            if mode is not None and mode != options.mode:
                raise ValueError(
                    f"conflicting modes: positional mode {mode!r} vs "
                    f"options.mode {options.mode!r}; pass one or make them agree"
                )
            self.options = options
        else:
            # EngineOptions validates the mode (and the other knobs) once.
            self.options = EngineOptions(mode=mode if mode is not None else MODE_SEQUENTIAL)
        self.device = device
        self.rules: List[Rule] = []
        #: Guards the last_* snapshots, the live-backend set, and the
        #: warm-pool key set against concurrent check() callers.
        self._lock = threading.Lock()
        #: Profiles of the last check() call, keyed by rule name (Fig. 4 data).
        self.last_profiles: Dict[str, PhaseProfile] = {}
        self.last_checker = None
        #: The compiled plan of the last check() call.
        self.last_plan: Optional[CheckPlan] = None
        #: The RecheckOutcome of the last recheck() call (diff, dispositions).
        self.last_recheck = None
        #: Backends currently executing a check (close() must reach every
        #: one of them, not just the most recent caller's).
        self._live_backends: set = set()
        #: Shared warm-pool registry keys this engine's checks actually
        #: used; close() must release all of them, not just the key the
        #: current options select (options may change between checks).
        self._warm_pool_keys: set = set()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release resources held beyond individual checks (idempotent).

        With the warm pool enabled, multiprocess checks park their worker
        processes in the process-wide registry so the next check reuses
        them; ``close()`` is the explicit end of that service lifetime —
        it shuts the shared pool down (cold backends own and close their
        private pools inside ``check()`` already, so there is nothing to
        do for them). Also closes the last backend if it is still open.
        """
        with self._lock:
            checker, self.last_checker = self.last_checker, None
            checkers = set(self._live_backends)
            self._live_backends.clear()
            if checker is not None:
                checkers.add(checker)
            keys = set(self._warm_pool_keys)
            self._warm_pool_keys.clear()
        for open_checker in checkers:
            close = getattr(open_checker, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - teardown best-effort
                    pass
        if self.options.mode == MODE_MULTIPROC and workerpool.warm_pool_enabled(
            self.options
        ):
            keys.add((self.options.jobs, self.options.mp_start_method))
        for jobs, start_method in keys:
            workerpool.release_pool(jobs, start_method)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- deck management ------------------------------------------------------

    def add_rules(self, rules: Sequence[Rule]) -> "Engine":
        """Append rules to the deck (chainable, as in Listing 1)."""
        combined = self.rules + list(rules)
        validate_rules(combined)
        self.rules = combined
        return self

    def add_rule(self, rule: Rule) -> "Engine":
        return self.add_rules([rule])

    def clear_rules(self) -> "Engine":
        self.rules = []
        return self

    # -- execution ---------------------------------------------------------------

    def compile(
        self,
        layout: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        tree=None,
        options: Optional[EngineOptions] = None,
    ) -> CheckPlan:
        """Compile the deck (or an explicit rule list) against ``layout``.

        ``tree`` short-circuits hierarchy analysis with an already-built
        :class:`HierarchyTree` for ``layout`` (long-lived callers such as
        the serve daemon keep one per session). ``options`` overrides the
        engine's own options for this one compilation — the serve daemon
        routes small concurrent checks inline by rerunning them with
        ``jobs=1`` without mutating the shared engine.
        """
        deck = list(rules) if rules is not None else self.rules
        return compile_plan(layout, deck, options or self.options, tree=tree)

    def check(
        self,
        layout: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        tree=None,
        options: Optional[EngineOptions] = None,
    ) -> CheckReport:
        """Run the deck (or an explicit rule list) on ``layout``.

        Re-entrant: concurrent callers each execute in a private
        :class:`CheckContext`; see its docstring for the sharing contract.
        """
        report, _ = self._execute(layout, rules=rules, tree=tree, options=options)
        return report

    def recheck(
        self,
        old: Layout,
        new: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        cached: Optional[CheckReport] = None,
        verify: bool = False,
    ) -> CheckReport:
        """Incrementally re-check ``new`` given a previous check of ``old``.

        Diffs the two versions by per-layer geometry digests, re-checks each
        rule only inside its dirty regions (inflated by the rule's
        interaction distance), and splices the fresh violations into the
        baseline report — which comes from ``cached`` or from the persistent
        report cache (``options.cache_dir`` / ``REPRO_CACHE_DIR``; a prior
        :meth:`check` with the cache configured populates it). Without a
        baseline, ``new`` is checked cold and stored for next time.

        The spliced violations are byte-identical to a cold full check of
        ``new`` (``verify=True`` asserts it). Details of the last recheck
        (diff, per-rule disposition, cache hit) are kept on
        :attr:`last_recheck`.
        """
        from .incremental import recheck as run_recheck

        deck = list(rules) if rules is not None else self.rules
        outcome = run_recheck(
            old, new, rules=deck, options=self.options, cached=cached, verify=verify
        )
        self.last_recheck = outcome
        return outcome.report

    def check_with_task_graph(
        self,
        layout: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        workers: int = 4,
    ):
        """Run the deck and keep the schedule analysis.

        Execution is identical to :meth:`check` (rules become tasks; shape
        rules gate the geometric rules of their layer); the returned
        :class:`~repro.core.scheduler.ScheduleAnalysis` replays the measured
        durations over ``workers`` to quantify rule-level task parallelism
        (paper §I). Returns ``(report, analysis)``.
        """
        return self._execute(layout, rules=rules)

    def _execute(
        self,
        layout: Layout,
        *,
        rules: Optional[Sequence[Rule]] = None,
        tree=None,
        options: Optional[EngineOptions] = None,
    ):
        """Compile the deck, then drive the backend through the scheduler.

        All per-check mutable state lives in a :class:`CheckContext` local
        to this call; the engine only records the backend in its live set
        (so ``close()`` can reach a hung check) and publishes the last_*
        snapshots once the check completes.
        """
        plan = self.compile(layout, rules=rules, tree=tree, options=options)
        context = CheckContext(
            plan=plan, backend=make_backend(plan, device=self.device)
        )
        backend = context.backend
        with self._lock:
            self._live_backends.add(backend)

        def run_rule(rule: Rule) -> CheckResult:
            profile = PhaseProfile()
            start = time.perf_counter()
            violations = backend.run(rule, profile)
            seconds = time.perf_counter() - start
            context.profiles[rule.name] = profile
            result = CheckResult(
                rule=rule,
                violations=violations,
                seconds=seconds,
                profile=profile,
                stats=backend.stats(),
            )
            context.results_by_name[rule.name] = result
            return result

        graph = build_plan_graph(plan, run_rule)
        try:
            # Backends driving their own worker pools (multiproc) submit
            # rule-level tasks eagerly here, so workers run ahead of the
            # serial scheduler drive below.
            prefetch = getattr(backend, "prefetch", None)
            if prefetch is not None:
                prefetch()
            context.analysis = graph.execute()
        finally:
            close = getattr(backend, "close", None)
            if close is not None:
                close()
            key = getattr(backend, "warm_pool_key", None)
            with self._lock:
                self._live_backends.discard(backend)
                if key is not None:
                    self._warm_pool_keys.add(key)
        context.report = CheckReport(
            layout.name,
            plan.mode,
            [context.results_by_name[compiled.name] for compiled in plan.compiled],
        )
        with self._lock:
            # Last-writer-wins snapshots for serial introspection (CLI
            # profile dumps, tests); concurrent callers use their context.
            self.last_plan = plan
            self.last_checker = backend
            self.last_profiles = context.profiles
        self._save_report(plan, context.report)
        return context.report, context.analysis

    def _save_report(self, plan: CheckPlan, report: CheckReport) -> None:
        """Persist the report beside the pack store so ``recheck`` can splice.

        Engages only with a cache directory configured (like the pack store)
        and a fingerprintable deck; keyed by deck digest + the layout's
        per-layer geometry digests. Best-effort — a failed save never fails
        the check.
        """
        store = plan.caches.store
        if store is None:
            return
        from .reportcache import ReportCache, deck_digest, report_key

        deck = deck_digest(plan.rules)
        if deck is None:
            return
        try:
            digests = {
                layer: plan.caches.layer_digest(layer)
                for layer in plan.layout.layers()
            }
            ReportCache(store).save(report_key(deck, digests), report)
        except Exception:  # pragma: no cover - persistence best-effort
            pass
