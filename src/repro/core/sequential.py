"""The sequential backend (paper §IV-D): hierarchical CPU checking.

Pipeline per rule:

1. **Adaptive row partition** of the top level (paper §IV-B) so that rows
   can be swept independently;
2. **MBR sweepline** (interval-tree status, paper Fig. 3) to find candidate
   pairs at every hierarchy level, with the §IV-C eliminations: id-ordered
   pairs (the sweep reports each unordered pair once), memoised per-cell
   internal results reused across instances, and rule-inflated-MBR
   disjointness pruning (disjoint pairs are simply never reported);
3. **Edge-based checks** on the surviving pairs.

Each of the three stages is attributed to its profile phase, which is what
the Fig. 4 runtime-breakdown benchmark reads out.

Per-rule-kind behaviour is resolved through the plan's
:data:`~repro.core.plan.KIND_SPECS` table — this module implements the
*strategies* (``intra`` / ``pairwise`` / ``cross_layer`` / ``coloring``)
and carries no kind table of its own.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..checks.base import Violation
from ..geometry import IDENTITY, Polygon, Transform
from ..hierarchy.pruning import (
    IntraCheckScheduler,
    LevelItem,
    PruningStats,
    gather_pair_polygons,
)
from ..hierarchy.query import invert
from ..hierarchy.tree import HierarchyTree
from ..layout.cell import Cell
from ..layout.library import Layout
from ..partition.rows import margin_for_rule
from ..spatial.sweepline import iter_bipartite_overlaps, report_overlapping_pairs
from ..util.profile import (
    PHASE_EDGE_CHECKS,
    PHASE_OTHER,
    PHASE_PARTITION,
    PHASE_SWEEPLINE,
    PhaseProfile,
)
from .plan import CheckPlan, PlanCaches, kind_spec
from .rules import Rule


class SequentialBackend:
    """Executes a plan's rules with the hierarchical CPU algorithms."""

    def __init__(
        self,
        plan_or_layout,
        *,
        tree: Optional[HierarchyTree] = None,
        use_rows: bool = True,
        caches: Optional[PlanCaches] = None,
    ) -> None:
        if isinstance(plan_or_layout, CheckPlan):
            self.plan: Optional[CheckPlan] = plan_or_layout
            self.layout: Layout = self.plan.layout
            self.tree = self.plan.tree
            self.caches = self.plan.caches
            self.use_rows = self.plan.options.use_rows
        else:
            self.plan = None
            self.layout = plan_or_layout
            self.tree = tree if tree is not None else HierarchyTree(plan_or_layout)
            self.caches = caches if caches is not None else PlanCaches(self.tree)
            self.use_rows = use_rows
        self.subtree = self.caches.subtree
        self.pruning = PruningStats()
        self._pair_memo: Dict[tuple, List[Violation]] = {}

    @classmethod
    def for_layout(
        cls,
        layout: Layout,
        *,
        tree: Optional[HierarchyTree] = None,
        use_rows: bool = True,
    ) -> "SequentialBackend":
        """A standalone backend over a bare layout (no pre-compiled plan)."""
        return cls(layout, tree=tree, use_rows=use_rows)

    def _level_items(self, cell: Cell, layer: int) -> List[LevelItem]:
        return self.caches.level_items(cell, layer)

    # -- rule dispatch ------------------------------------------------------

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        """Execute one rule; violations are in top-cell coordinates."""
        if profile is None:
            profile = PhaseProfile()
        spec = kind_spec(rule.kind)
        strategy = getattr(self, f"_run_{spec.sequential}")
        return strategy(rule, spec, profile)

    def stats(self) -> Dict[str, float]:
        """Cumulative pruning and cache counters (for CheckResult.stats)."""
        store = self.caches.store
        cache = store.counters() if store is not None else {}
        return dict(
            checks_run=self.pruning.checks_run,
            checks_reused=self.pruning.checks_reused,
            pairs_considered=self.pruning.pairs_considered,
            pairs_pruned_mbr=self.pruning.pairs_pruned_mbr,
            pack_cache_hits=self.caches.pack.hits,
            pack_cache_misses=self.caches.pack.misses,
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            cache_corrupt=cache.get("corrupt", 0),
            cache_bytes_read=cache.get("bytes_read", 0),
            cache_bytes_written=cache.get("bytes_written", 0),
        )

    def close(self) -> None:
        """Flush pack-store counter deltas (idempotent; engine calls this)."""
        store = self.caches.store
        if store is not None:
            store.persist_counters()

    # -- strategy entry points (bound by plan.KIND_SPECS) ----------------------

    def _run_intra(self, rule: Rule, spec, profile: PhaseProfile) -> List[Violation]:
        return self._intra(rule, spec, profile)

    def _run_pairwise(self, rule: Rule, spec, profile: PhaseProfile) -> List[Violation]:
        return self._pairwise(rule.layer, rule.value, spec.procedures(), profile)

    def _run_cross_layer(
        self, rule: Rule, spec, profile: PhaseProfile
    ) -> List[Violation]:
        return self._cross_layer(
            rule.layer, rule.other_layer, rule.value, spec.procedures(), profile
        )

    def _run_coloring(self, rule: Rule, spec, profile: PhaseProfile) -> List[Violation]:
        return self._coloring(rule.layer, rule.value, profile)

    # -- intra-polygon rules (paper §IV-C intra checks) ------------------------

    def _intra(self, rule: Rule, spec, profile: PhaseProfile) -> List[Violation]:
        layers = [rule.layer] if rule.layer is not None else self.layout.layers()
        scheduler = IntraCheckScheduler(self.tree)
        check, invariance = spec.intra(rule)
        out: List[Violation] = []
        with profile.phase(PHASE_EDGE_CHECKS):
            for layer in layers:
                out.extend(
                    scheduler.run(
                        layer,
                        lambda cell, _layer=layer: check(cell, _layer),
                        invariance=invariance,
                    )
                )
        self._merge_stats(scheduler.stats)
        return out

    # -- spacing (intra-layer inter-polygon) --------------------------------------

    def _pairwise(
        self,
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """Generic intra-layer pairwise rule (spacing, corner spacing)."""
        memo: Dict[str, List[Violation]] = {}
        # Pair memo (paper §IV-C): a cross-instance check depends only on the
        # two definitions and their *relative position* ("another
        # instantiation of them may not be of the same relative position" is
        # the paper's reuse condition; we key on it directly), so repeated
        # abutments — ubiquitous in row-based layouts — are checked once.
        self._pair_memo: Dict[tuple, List[Violation]] = {}

        def internal(cell_name: str) -> List[Violation]:
            """Complete pairwise violations of one cell's subtree (local coords)."""
            cached = memo.get(cell_name)
            if cached is not None:
                self.pruning.checks_reused += 1
                return cached
            self.pruning.checks_run += 1
            cell = self.layout.cell(cell_name)
            vios = self._level_pairs(cell, layer, value, procedures, profile)
            for ref in cell.references:
                if not self.tree.has_layer(ref.cell_name, layer):
                    continue
                child_vios = internal(ref.cell_name)
                for placement in ref.placements():
                    if placement.preserves_distances:
                        vios.extend(v.transformed(placement) for v in child_vios)
                    else:
                        self.pruning.checks_refreshed += 1
                        vios.extend(
                            self._flat_subtree_pairs(
                                ref.cell_name, placement, layer, value, procedures, profile
                            )
                        )
            memo[cell_name] = vios
            return vios

        top = self.tree.top
        with profile.phase(PHASE_OTHER):
            items = self._level_items(top, layer)
        vios = self._top_level_pairs(top, items, layer, value, procedures, profile)
        for ref in top.references:
            if not self.tree.has_layer(ref.cell_name, layer):
                continue
            child_vios = internal(ref.cell_name)
            for placement in ref.placements():
                if placement.preserves_distances:
                    vios.extend(v.transformed(placement) for v in child_vios)
                else:
                    self.pruning.checks_refreshed += 1
                    vios.extend(
                        self._flat_subtree_pairs(
                            ref.cell_name, placement, layer, value, procedures, profile
                        )
                    )
        return vios

    def _top_level_pairs(
        self,
        top: Cell,
        items: List[LevelItem],
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """Level pairs of the top cell, row-partitioned when enabled."""
        vios: List[Violation] = []
        with profile.phase(PHASE_EDGE_CHECKS):
            for polygon in top.polygons(layer):
                vios.extend(procedures.self_violations(polygon, layer, value))

        member_rows, _sig = self.caches.partition_rows(
            layer,
            [it.mbr for it in items],
            value,
            use_rows=self.use_rows,
            cold_timer=lambda: profile.phase(PHASE_PARTITION),
        )
        groups: List[List[LevelItem]] = [
            [items[m] for m in row] for row in member_rows
        ]

        for group in groups:
            vios.extend(self._group_pairs(group, layer, value, procedures, profile))
        return vios

    def _level_pairs(
        self,
        cell: Cell,
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """Self checks plus this level's cross-item pairs (no recursion)."""
        vios: List[Violation] = []
        with profile.phase(PHASE_EDGE_CHECKS):
            for polygon in cell.polygons(layer):
                vios.extend(procedures.self_violations(polygon, layer, value))
        with profile.phase(PHASE_OTHER):
            items = self._level_items(cell, layer)
        vios.extend(self._group_pairs(items, layer, value, procedures, profile))
        return vios

    def _group_pairs(
        self,
        items: Sequence[LevelItem],
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        margin = margin_for_rule(value)
        with profile.phase(PHASE_SWEEPLINE):
            inflated = [it.mbr.inflated(margin) for it in items]
            pairs = report_overlapping_pairs(inflated)
            self.pruning.pairs_considered += len(pairs)
            self.pruning.pairs_pruned_mbr += (
                len(items) * (len(items) - 1) // 2 - len(pairs)
            )
        vios: List[Violation] = []
        for i, j in pairs:
            vios.extend(
                self._pair_check(items[i], items[j], layer, value, procedures, profile)
            )
        return vios

    def _pair_check(
        self,
        item_a: LevelItem,
        item_b: LevelItem,
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """One candidate pair, with relative-position memoisation."""
        key = None
        if (
            item_a.cell_name is not None
            and item_b.cell_name is not None
            and item_a.placement.preserves_distances
            and item_b.placement.preserves_distances
        ):
            inverse_a = invert(item_a.placement)
            relative = inverse_a.compose(item_b.placement)
            key = (item_a.cell_name, item_b.cell_name, relative)
            cached = self._pair_memo.get(key)
            if cached is not None:
                self.pruning.checks_reused += 1
                return [v.transformed(item_a.placement) for v in cached]
        with profile.phase(PHASE_SWEEPLINE):
            side_a, side_b = gather_pair_polygons(
                item_a, item_b, self.subtree, layer, value
            )
        with profile.phase(PHASE_EDGE_CHECKS):
            found = self._cross_pairs(side_a, side_b, layer, value, procedures)
        if key is not None:
            self._pair_memo[key] = [v.transformed(inverse_a) for v in found]
        return found

    def _cross_pairs(
        self,
        side_a: Sequence[Polygon],
        side_b: Sequence[Polygon],
        layer: int,
        value: int,
        procedures,
    ) -> List[Violation]:
        """Edge checks between two polygon sets, MBR-pruned per pair.

        For large sides a bipartite sweep finds the near pairs in
        O((m+n) log(m+n) + k); for small sides a direct loop with the same
        rule-inflated MBR test is cheaper.
        """
        vios: List[Violation] = []
        if len(side_a) * len(side_b) > 1024:
            inflated_a = [p.mbr.inflated(value) for p in side_a]
            rects_b = [p.mbr for p in side_b]
            for i, j in iter_bipartite_overlaps(inflated_a, rects_b):
                vios.extend(
                    procedures.cross_violations(side_a[i], side_b[j], layer, value)
                )
            return vios
        for pa in side_a:
            window = pa.mbr.inflated(value)
            for pb in side_b:
                if window.overlaps(pb.mbr):
                    vios.extend(procedures.cross_violations(pa, pb, layer, value))
        return vios

    def _flat_subtree_pairs(
        self,
        cell_name: str,
        placement: Transform,
        layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """Fallback for non-distance-preserving placements: flatten and check."""
        window = placement.apply_rect(self.tree.layer_mbr(cell_name, layer))
        polygons = self.subtree.polygons_in_window(cell_name, placement, layer, window)
        with profile.phase(PHASE_EDGE_CHECKS):
            return procedures.flat_check(polygons, layer, value)

    # -- enclosure (inter-layer) -----------------------------------------------

    def _cross_layer(
        self,
        via_layer: int,
        metal_layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Violation]:
        """Pending-object resolution up the hierarchy (enclosure, overlap).

        Each cell definition resolves its subtree's target polygons against
        its own subtree's partner layer once; objects not yet satisfied
        propagate upward (more partner geometry may appear in an ancestor or
        a sibling — both enclosure and overlap satisfaction are monotone in
        the candidate set, which is what makes this sound). Survivors at the
        top are violations.
        """
        memo: Dict[str, List[Polygon]] = {}

        def pending(cell_name: str) -> List[Polygon]:
            cached = memo.get(cell_name)
            if cached is not None:
                self.pruning.checks_reused += 1
                return cached
            self.pruning.checks_run += 1
            cell = self.layout.cell(cell_name)
            candidates_pending: List[Polygon] = list(cell.polygons(via_layer))
            for ref in cell.references:
                if not self.tree.has_layer(ref.cell_name, via_layer):
                    continue
                if all(p.preserves_distances for p in ref.placements()):
                    child_pending = pending(ref.cell_name)
                else:
                    # Margins scale under magnification: re-resolve the whole
                    # subtree's vias at this level instead of reusing.
                    self.pruning.checks_refreshed += 1
                    child_pending = self._all_subtree_vias(ref.cell_name, via_layer)
                for placement in ref.placements():
                    candidates_pending.extend(
                        p.transformed(placement) for p in child_pending
                    )
            unresolved = self._resolve_vias(
                cell_name, IDENTITY, candidates_pending, metal_layer, value,
                procedures, profile,
            )
            memo[cell_name] = unresolved
            return unresolved

        survivors = pending(self.tree.top.name)
        vios: List[Violation] = []
        with profile.phase(PHASE_EDGE_CHECKS):
            for via in survivors:
                window = via.mbr.inflated(value)
                metals = self.subtree.polygons_in_window(
                    self.tree.top.name, IDENTITY, metal_layer, window
                )
                vios.extend(
                    procedures.violations(via, metals, via_layer, metal_layer, value)
                )
        return vios

    def _resolve_vias(
        self,
        cell_name: str,
        placement: Transform,
        vias: List[Polygon],
        metal_layer: int,
        value: int,
        procedures,
        profile: PhaseProfile,
    ) -> List[Polygon]:
        """Drop every via satisfied by metal in this cell's subtree.

        One bipartite MBR sweep pairs via windows with this level's metal
        items (local polygons and child-subtree MBRs); only paired child
        subtrees are descended, with the via's window.
        """
        if not vias:
            return []
        cell = self.layout.cell(cell_name)
        with profile.phase(PHASE_SWEEPLINE):
            items = self._level_items(cell, metal_layer)
            windows = [via.mbr.inflated(value) for via in vias]
            vias_of_item: Dict[int, List[int]] = {}
            for i, j in iter_bipartite_overlaps(windows, [it.mbr for it in items]):
                vias_of_item.setdefault(j, []).append(i)

        satisfied = [False] * len(vias)
        for j, via_indices in vias_of_item.items():
            item = items[j]
            if item.polygon is not None:
                metals = [item.polygon]
            else:
                # One descent for all vias paired with this item: gather the
                # metal overlapping the union of their windows, then assign
                # candidates per via with a bipartite sweep.
                with profile.phase(PHASE_SWEEPLINE):
                    union_window = windows[via_indices[0]]
                    for i in via_indices[1:]:
                        union_window = union_window.union(windows[i])
                    metals = self.subtree.polygons_in_window(
                        item.cell_name,
                        placement.compose(item.placement),
                        metal_layer,
                        union_window,
                    )
            with profile.phase(PHASE_SWEEPLINE):
                candidates: Dict[int, List[Polygon]] = {}
                if len(via_indices) * len(metals) <= 64:
                    for i in via_indices:
                        window = windows[i]
                        for metal in metals:
                            if window.overlaps(metal.mbr):
                                candidates.setdefault(i, []).append(metal)
                else:
                    pending_windows = [windows[i] for i in via_indices]
                    metal_rects = [m.mbr for m in metals]
                    for vi, mi in iter_bipartite_overlaps(pending_windows, metal_rects):
                        candidates.setdefault(via_indices[vi], []).append(metals[mi])
            with profile.phase(PHASE_EDGE_CHECKS):
                for via_index, cands in candidates.items():
                    if satisfied[via_index]:
                        continue
                    if procedures.satisfied(vias[via_index], cands, value):
                        satisfied[via_index] = True
        return [via for via, ok in zip(vias, satisfied) if not ok]

    def _all_subtree_vias(self, cell_name: str, via_layer: int) -> List[Polygon]:
        window = self.tree.layer_mbr(cell_name, via_layer)
        return self.subtree.polygons_in_window(cell_name, IDENTITY, via_layer, window)

    def _coloring(self, layer: int, value: int, profile: PhaseProfile) -> List[Violation]:
        """Double-patterning decomposition check (paper §II).

        Coloring is a global graph property: conflicts may chain across
        instances, so definition-level memoisation does not apply. The flat
        conflict graph is built over canonically ordered polygons (both
        execution modes share this path, keeping reported odd-cycle markers
        identical), and — because conflict edges are shorter than the rule —
        components never cross adaptive-partition rows.
        """
        from ..checks.coloring import check_two_colorable
        from ..layout.flatten import flatten_layer

        with profile.phase(PHASE_OTHER):
            polygons = flatten_layer(self.layout, layer, top=self.tree.top.name)
            polygons.sort(key=lambda p: (p.mbr, p.canonical_vertices()))
        with profile.phase(PHASE_EDGE_CHECKS):
            return check_two_colorable(polygons, layer, value)

    # -- bookkeeping -------------------------------------------------------------

    def _merge_stats(self, stats: PruningStats) -> None:
        self.pruning.checks_run += stats.checks_run
        self.pruning.checks_reused += stats.checks_reused
        self.pruning.checks_refreshed += stats.checks_refreshed
        self.pruning.pairs_considered += stats.pairs_considered
        self.pruning.pairs_pruned_mbr += stats.pairs_pruned_mbr


#: Backwards-compatible name from before the Backend protocol existed.
SequentialChecker = SequentialBackend
