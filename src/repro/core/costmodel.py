"""A calibrated cost model for multiprocess work routing.

The multiprocess backend (PR 3) pays a fixed dispatch price per pool task:
pickling the payload, a queue round trip, and the result pickle on the way
back. On large rules that price is noise; on small ones it exceeds the
work itself, which is how jobs=4 managed to *lose* to jobs=1. This module
learns both sides of that trade from measurements the engine already makes
and answers two questions per rule:

* **route** — is the estimated compute worth fanning out at all, or should
  the parent run it inline? The break-even test compares the parallel
  saving ``est * (1 - 1/jobs)`` against the dispatch bill for the tasks
  the fan-out would issue (one for a rule-granular task, ~``jobs`` for a
  sharded batch), with a safety factor so borderline rules stay inline.
* **granularity** — when pooling does win, how many shards amortize the
  per-task dispatch cost without giving up LPT balance? Shards are sized
  so each carries at least :data:`TARGET_DISPATCH_MULTIPLE` times the
  measured dispatch overhead of compute, clamped to
  ``[jobs, jobs * SHARD_OVERSUBSCRIPTION]``.

Calibration inputs:

* ``observe_dispatch`` — a measured no-op pool round trip
  (:meth:`repro.core.workerpool.WorkerPool.dispatch_seconds`);
* ``observe_kind`` — compute seconds per weight unit (edges, corners,
  rects) for the row-sharded kinds, folded into an EWMA per kind;
* ``observe_rule`` — whole-rule compute seconds for rule-granular tasks,
  keyed by a geometry-digest-qualified rule key so estimates never leak
  between different layouts that happen to share rule names.

An **uncalibrated model changes nothing**: with no estimate for a rule the
backend keeps the status-quo behaviour (pool it, ``scheduler.shard_count``
granularity), so the first occurrence of any rule always produces a fresh
observation and fault-injection tests keep their exact counter semantics.

With a persistent :class:`~repro.core.packstore.PackStore` configured, the
model is shared process-wide per store root and persisted as
``costmodel.json`` next to the store's ``counters.json``, so warm runs
start with learned constants. Without a store each backend gets a private
throwaway model (in-check learning only).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Optional

from ..util.logging import get_logger
from .scheduler import SHARD_OVERSUBSCRIPTION, shard_count

__all__ = [
    "BREAK_EVEN_SAFETY",
    "COSTMODEL_FILENAME",
    "CostModel",
    "DEFAULT_DISPATCH_SECONDS",
    "EWMA_ALPHA",
    "TARGET_DISPATCH_MULTIPLE",
    "model_for",
    "reset_models",
]

_logger = get_logger("costmodel")

#: Sidecar file name, written next to the pack store's ``counters.json``.
COSTMODEL_FILENAME = "costmodel.json"

#: Serialization version; bumping it discards persisted calibrations.
FORMAT_VERSION = 1

#: Assumed per-task dispatch cost before any measurement exists. Roughly a
#: fork-start pool round trip on commodity hardware; intentionally on the
#: high side so an uncalibrated model never routes real work inline.
DEFAULT_DISPATCH_SECONDS = 1e-3

#: The estimated parallel saving must exceed the dispatch bill by this
#: factor before work leaves the parent — borderline rules stay inline.
BREAK_EVEN_SAFETY = 2.0

#: Each shard should carry at least this multiple of the dispatch overhead
#: in compute, so the fixed per-task price stays a small fraction.
TARGET_DISPATCH_MULTIPLE = 25.0

#: Smoothing for the per-kind rate EWMAs (high = adapt fast; rates move
#: with the most recent deck, which is what a warm service wants).
EWMA_ALPHA = 0.5

#: Persisted per-rule entries are capped to bound the sidecar file.
MAX_RULE_ENTRIES = 512


class CostModel:
    """Learned dispatch overhead + per-kind rates + per-rule costs.

    Thread-safety: with a persistent store the model is shared by every
    concurrent request of a serve daemon, so calibration writes (the
    read-modify-write EWMA folds, the LRU eviction in ``observe_rule``, and
    the ``save`` snapshot) take an instance lock. The estimate readers stay
    lock-free on purpose — each is a single dict read (atomic under the
    GIL) and a stale-by-one-sample estimate only shades a routing decision,
    never correctness.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        #: Measured seconds for one no-op pool round trip (None = unmeasured).
        self.dispatch_seconds: Optional[float] = None
        #: Rule kind -> EWMA of compute seconds per weight unit.
        self.rates: Dict[str, float] = {}
        #: Qualified rule key -> EWMA of whole-rule compute seconds.
        self.rules: Dict[str, float] = {}

    # -- calibration --------------------------------------------------------

    def observe_dispatch(self, seconds: float) -> None:
        if seconds > 0:
            with self._lock:
                self.dispatch_seconds = (
                    seconds
                    if self.dispatch_seconds is None
                    else min(self.dispatch_seconds, seconds)
                )

    def observe_kind(self, kind: str, weight: float, seconds: float) -> None:
        """Fold one (weight units, compute seconds) sample into the kind rate."""
        if weight <= 0 or seconds <= 0:
            return
        rate = seconds / weight
        with self._lock:
            previous = self.rates.get(kind)
            self.rates[kind] = (
                rate
                if previous is None
                else (1.0 - EWMA_ALPHA) * previous + EWMA_ALPHA * rate
            )

    def observe_rule(self, key: str, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._lock:
            previous = self.rules.pop(key, None)
            self.rules[key] = (
                seconds
                if previous is None
                else (1.0 - EWMA_ALPHA) * previous + EWMA_ALPHA * seconds
            )
            while len(self.rules) > MAX_RULE_ENTRIES:
                self.rules.pop(next(iter(self.rules)))

    # -- estimates ----------------------------------------------------------

    def overhead(self) -> float:
        """Per-task dispatch seconds (measured, or the conservative default)."""
        if self.dispatch_seconds is not None and self.dispatch_seconds > 0:
            return self.dispatch_seconds
        return DEFAULT_DISPATCH_SECONDS

    def estimate_kind(self, kind: str, weight: float) -> Optional[float]:
        rate = self.rates.get(kind)
        if rate is None or weight <= 0:
            return None
        return rate * weight

    def estimate_rule(self, key: str) -> Optional[float]:
        return self.rules.get(key)

    # -- routing ------------------------------------------------------------

    def worth_pooling(
        self, est_seconds: float, jobs: int, tasks: int = 1
    ) -> bool:
        """Does fanning ``est_seconds`` of compute out to ``jobs`` pay?

        The most the pool can save is ``est * (1 - 1/jobs)``; the bill is
        one dispatch per task issued. ``tasks`` is how many dispatches the
        fan-out would actually make: 1 for a rule-granular task (the
        default), ~``jobs`` for a sharded batch. Require the saving to
        beat the bill by :data:`BREAK_EVEN_SAFETY`.
        """
        if jobs <= 1:
            return False
        saving = est_seconds * (1.0 - 1.0 / jobs)
        return saving > BREAK_EVEN_SAFETY * self.overhead() * max(1, tasks)

    def plan_shards(self, est_seconds: float, num_items: int, jobs: int) -> int:
        """Shard count that amortizes dispatch without losing LPT balance."""
        target = self.overhead() * TARGET_DISPATCH_MULTIPLE
        if target <= 0:
            return shard_count(num_items, jobs)
        want = int(est_seconds / target)
        want = max(want, jobs)
        want = min(want, jobs * SHARD_OVERSUBSCRIPTION)
        return max(1, min(num_items, want))

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        """Write the calibration sidecar atomically (best-effort)."""
        if self.path is None:
            return
        with self._lock:
            # Snapshot under the lock so a concurrent observe_* fold cannot
            # mutate the dicts mid-serialization.
            payload = {
                "version": FORMAT_VERSION,
                "dispatch_seconds": self.dispatch_seconds,
                "rates": dict(self.rates),
                "rules": dict(list(self.rules.items())[-MAX_RULE_ENTRIES:]),
            }
        root = os.path.dirname(self.path) or "."
        try:
            os.makedirs(root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".costmodel.", suffix=".tmp", dir=root
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            _logger.warning("could not persist cost model to %s", self.path)

    @classmethod
    def load(cls, path: str) -> "CostModel":
        """Read a calibration sidecar; anything malformed yields a fresh model."""
        model = cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return model
        if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
            return model
        dispatch = payload.get("dispatch_seconds")
        if isinstance(dispatch, (int, float)) and dispatch > 0:
            model.dispatch_seconds = float(dispatch)
        for field, target in (("rates", model.rates), ("rules", model.rules)):
            values = payload.get(field)
            if isinstance(values, dict):
                for key, value in values.items():
                    if isinstance(value, (int, float)) and value > 0:
                        target[str(key)] = float(value)
        return model


# ---------------------------------------------------------------------------
# Per-store model registry
# ---------------------------------------------------------------------------

_MODELS: Dict[str, CostModel] = {}
_MODELS_LOCK = threading.Lock()


def model_for(store) -> CostModel:
    """The cost model for a backend: shared + persistent per store root.

    With a :class:`~repro.core.packstore.PackStore` configured, every
    backend pointed at the same root shares one model instance (loaded from
    ``costmodel.json`` on first use), so calibration survives across checks
    *and* across processes. Without a store the model is private to the
    caller — in-check learning only, so independent runs (and independent
    tests) cannot contaminate each other's routing decisions.
    """
    if store is None:
        return CostModel()
    root = store.root
    with _MODELS_LOCK:
        model = _MODELS.get(root)
        if model is None:
            model = CostModel.load(os.path.join(root, COSTMODEL_FILENAME))
            _MODELS[root] = model
        return model


def reset_models() -> None:
    """Drop every cached per-store model (tests only)."""
    with _MODELS_LOCK:
        _MODELS.clear()
