"""OpenDRC's core: rule DSL, engine, sequential/parallel checkers, results."""

from .engine import MODE_PARALLEL, MODE_SEQUENTIAL, Engine, EngineOptions
from .incremental import check_window
from .parallel import DEFAULT_BRUTE_FORCE_THRESHOLD, ParallelChecker
from .scheduler import ScheduleAnalysis, Task, TaskGraph, build_rule_graph
from .results import CheckReport, CheckResult, merge_reports
from .rules import (
    LayerSelector,
    MeasureSelector,
    PolygonSelector,
    Rule,
    RuleKind,
    layer,
    polygons,
    validate_rules,
)
from .sequential import SequentialChecker

__all__ = [
    "DEFAULT_BRUTE_FORCE_THRESHOLD",
    "CheckReport",
    "CheckResult",
    "Engine",
    "EngineOptions",
    "LayerSelector",
    "MODE_PARALLEL",
    "MODE_SEQUENTIAL",
    "MeasureSelector",
    "ParallelChecker",
    "PolygonSelector",
    "Rule",
    "RuleKind",
    "ScheduleAnalysis",
    "SequentialChecker",
    "Task",
    "TaskGraph",
    "build_rule_graph",
    "check_window",
    "layer",
    "merge_reports",
    "polygons",
    "validate_rules",
]
