"""OpenDRC's core: rule DSL, CheckPlan IR, engine, backends, results."""

from .engine import MODE_PARALLEL, MODE_SEQUENTIAL, Engine, EngineOptions
from .incremental import WindowedBackend, check_window
from .parallel import DEFAULT_BRUTE_FORCE_THRESHOLD, ParallelBackend, ParallelChecker
from .plan import (
    ALL_MODES,
    ENGINE_MODES,
    MODE_WINDOWED,
    Backend,
    CheckPlan,
    CompiledRule,
    KindSpec,
    PackCache,
    PlanCaches,
    compile_plan,
    kind_spec,
    make_backend,
)
from .scheduler import (
    ScheduleAnalysis,
    Task,
    TaskGraph,
    build_plan_graph,
    build_rule_graph,
    infer_rule_dependencies,
)
from .results import CheckReport, CheckResult, merge_reports
from .rules import (
    LayerSelector,
    MeasureSelector,
    PolygonSelector,
    Rule,
    RuleKind,
    layer,
    polygons,
    validate_rules,
)
from .sequential import SequentialBackend, SequentialChecker

__all__ = [
    "ALL_MODES",
    "Backend",
    "CheckPlan",
    "CheckReport",
    "CheckResult",
    "CompiledRule",
    "DEFAULT_BRUTE_FORCE_THRESHOLD",
    "ENGINE_MODES",
    "Engine",
    "EngineOptions",
    "KindSpec",
    "LayerSelector",
    "MODE_PARALLEL",
    "MODE_SEQUENTIAL",
    "MODE_WINDOWED",
    "MeasureSelector",
    "PackCache",
    "ParallelBackend",
    "ParallelChecker",
    "PlanCaches",
    "PolygonSelector",
    "Rule",
    "RuleKind",
    "ScheduleAnalysis",
    "SequentialBackend",
    "SequentialChecker",
    "Task",
    "TaskGraph",
    "WindowedBackend",
    "build_plan_graph",
    "build_rule_graph",
    "check_window",
    "compile_plan",
    "infer_rule_dependencies",
    "kind_spec",
    "layer",
    "make_backend",
    "merge_reports",
    "polygons",
    "validate_rules",
]
