"""The parallel backend (paper §IV-E): row-by-row checks on the simulated GPU.

After the adaptive row partition, cells in different rows cannot produce
violations together, so rows become independent GPU tasks. Two dispatch
strategies execute them:

* **Fused (default, ``fuse_rows=True``)**: all rows' edges are concatenated
  into one segmented buffer (a ``segment`` array carries the row id) and a
  *single* launch per orientation per lane evaluates every row at once,
  with cross-segment pairs masked inside the kernel — R rows cost one copy
  set and one or two launches instead of R of each. The §IV-E executor
  choice survives fusion as a *mixed lane policy*: segments at or below the
  brute-force threshold ride the batched brute-force lane, larger ones the
  segmented sweepline lane.
* **Per-row (``fuse_rows=False``, the ablation baseline)**: each row packs,
  copies, and launches separately on alternating streams; host
  preprocessing of the next row is recorded against the device timeline,
  reproducing the §V-C overlap analysis.

Device work is issued through :class:`~repro.gpu.executor.StreamExecutor`
policies (Listing 2's stream executor): one executor wraps each stream, and
every copy/launch in this module goes through it, so swapping the executor
swaps where the work lands.

Host-side packing artifacts — level items, row partitions, per-definition
packers, packed per-row and fused buffers — live in the plan's
:class:`~repro.core.plan.PackCache`, keyed by layer and the stable partition
signature, so the second rule touching a layer pays zero host packing.

Intra-polygon rules do not need rows: they run one batched kernel over the
*unique cell definitions* (the hierarchy memoisation of §IV-C) and
instantiate the per-definition hits through every placement.

Per-rule-kind dispatch resolves through :func:`~repro.core.plan.kind_spec`;
kinds with no data-parallel strategy (``spec.parallel is None``) delegate to
a sequential backend sharing this plan's caches.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..checks.base import Violation, ViolationKind
from ..checks.enclosure import enclosure_pair_violations
from ..geometry import IDENTITY, Polygon, Rect, Transform
from ..hierarchy.edgepack import (
    EdgeBufferPair,
    HierarchicalEdgePacker,
    HierarchicalRectPacker,
    concat_buffers as concat_edge_buffers,
    concat_segmented,
    corners_from_arrays,
    corners_to_arrays,
    edge_pair_from_arrays,
    edge_pair_to_arrays,
    rect_rows_from_arrays,
    rect_rows_to_arrays,
)
from ..hierarchy.pruning import LevelItem
from ..hierarchy.tree import HierarchyTree
from ..layout.library import Layout
from ..partition.rows import margin_for_rule
from ..spatial.sweepline import iter_bipartite_overlaps
from ..gpu.device import Device
from ..gpu.executor import StreamExecutor
from ..gpu.kernels import (
    CornerBuffer,
    CornerHits,
    EdgeBuffer,
    PairHits,
    kernel_area,
    kernel_corner_pairs_segmented,
    kernel_enclosure_margins,
    kernel_pairs_bruteforce,
    kernel_pairs_bruteforce_segmented,
    kernel_pairs_sweep,
    kernel_pairs_sweep_segmented,
    pack_corners,
    pack_edges,
    pack_vertices,
    reduce_enclosure_best,
)
from ..gpu.memory import StreamOrderedAllocator
from ..util.profile import (
    PHASE_EDGE_CHECKS,
    PHASE_OTHER,
    PHASE_PARTITION,
    PHASE_SWEEPLINE,
    PhaseProfile,
)
from .packstore import store_key
from .plan import (
    DEFAULT_BRUTE_FORCE_THRESHOLD,
    CheckPlan,
    PackCache,
    PlanCaches,
    kind_spec,
)
from .rules import Rule

__all__ = [
    "DEFAULT_BRUTE_FORCE_THRESHOLD",
    "PackCache",
    "ParallelBackend",
    "ParallelChecker",
    "corner_hits_to_violations",
    "enclosure_margins_to_violations",
    "pair_hits_to_violations",
]


def _candidate_pairs_kernel(
    via_rects: np.ndarray,
    metal_rects: np.ndarray,
    value: int,
    chunk: int = 256,
    via_segment: Optional[np.ndarray] = None,
    metal_segment: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate (via, metal) pairs: metal MBR overlapping the inflated via.

    All-pairs with chunking over vias — the data-parallel analog of the
    bipartite sweep the sequential mode uses. When segment (row-id) arrays
    are given, cross-segment pairs are masked so one fused launch evaluates
    every row at once.
    """
    if len(via_rects) == 0 or len(metal_rects) == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z
    out_v: List[np.ndarray] = []
    out_m: List[np.ndarray] = []
    mx1, my1, mx2, my2 = (metal_rects[:, k] for k in range(4))
    for start in range(0, len(via_rects), chunk):
        block = via_rects[start : start + chunk]
        vx1 = block[:, 0, None] - value
        vy1 = block[:, 1, None] - value
        vx2 = block[:, 2, None] + value
        vy2 = block[:, 3, None] + value
        hit = (vx1 <= mx2[None, :]) & (mx1[None, :] <= vx2) & (
            (vy1 <= my2[None, :]) & (my1[None, :] <= vy2)
        )
        if via_segment is not None and metal_segment is not None:
            hit &= via_segment[start : start + chunk, None] == metal_segment[None, :]
        vi, mi = np.nonzero(hit)
        out_v.append(vi + start)
        out_m.append(mi)
    return (
        np.concatenate(out_v).astype(np.int64),
        np.concatenate(out_m).astype(np.int64),
    )


def pair_hits_to_violations(
    hits: Sequence[PairHits],
    kind: ViolationKind,
    layer: int,
    required: int,
    *,
    other_layer: Optional[int] = None,
) -> List[Violation]:
    """Host-side conversion of pair-kernel hits to violation markers.

    Module-level (not a backend method) so worker processes convert shard
    hits with the exact same code the in-process backend uses.
    """
    batch = PairHits.concatenate(list(hits))
    if len(batch) == 0:
        return []
    regions = np.stack([batch.xlo, batch.ylo, batch.xhi, batch.yhi], axis=1)
    return [
        Violation(
            kind=kind,
            layer=layer,
            other_layer=other_layer,
            region=Rect(*coords),
            measured=measured,
            required=required,
        )
        for coords, measured in zip(regions.tolist(), batch.measured.tolist())
    ]


def corner_hits_to_violations(
    hits: CornerHits, layer: int, value: int
) -> List[Violation]:
    """Corner-kernel hits to violation markers (shared with shard workers)."""
    if len(hits) == 0:
        return []
    regions = np.stack(
        [
            np.minimum(hits.ax, hits.bx),
            np.minimum(hits.ay, hits.by),
            np.maximum(hits.ax, hits.bx),
            np.maximum(hits.ay, hits.by),
        ],
        axis=1,
    )
    return [
        Violation(
            kind=ViolationKind.CORNER,
            layer=layer,
            region=Rect(*coords),
            measured=measured,
            required=value,
        )
        for coords, measured in zip(regions.tolist(), hits.measured.tolist())
    ]


def enclosure_margins_to_violations(
    via_rects: np.ndarray,
    best: np.ndarray,
    via_layer: int,
    metal_layer: int,
    value: int,
) -> List[Violation]:
    """Reduced per-via enclosure margins to violation markers."""
    out: List[Violation] = []
    for index, margin in enumerate(best):
        if int(margin) >= value:
            continue
        r = via_rects[index]
        out.append(
            Violation(
                kind=ViolationKind.ENCLOSURE,
                layer=via_layer,
                other_layer=metal_layer,
                region=Rect(int(r[0]), int(r[1]), int(r[2]), int(r[3])).inflated(value),
                measured=max(int(margin), 0),
                required=value,
            )
        )
    return out


class ParallelBackend:
    """Executes a plan's rules with the row-based GPU algorithms."""

    def __init__(
        self,
        plan_or_layout,
        *,
        tree: Optional[HierarchyTree] = None,
        device: Optional[Device] = None,
        num_streams: int = 2,
        brute_force_threshold: int = DEFAULT_BRUTE_FORCE_THRESHOLD,
        use_rows: bool = True,
        fuse_rows: bool = True,
    ) -> None:
        if isinstance(plan_or_layout, CheckPlan):
            self.plan: Optional[CheckPlan] = plan_or_layout
            self.layout: Layout = self.plan.layout
            self.tree = self.plan.tree
            self.caches = self.plan.caches
            options = self.plan.options
            num_streams = options.num_streams
            brute_force_threshold = options.brute_force_threshold
            use_rows = options.use_rows
            fuse_rows = options.fuse_rows
        else:
            self.plan = None
            self.layout = plan_or_layout
            self.tree = tree if tree is not None else HierarchyTree(plan_or_layout)
            self.caches = PlanCaches(self.tree)
        self.subtree = self.caches.subtree
        self.device = device if device is not None else Device()
        self.allocator = StreamOrderedAllocator()
        self.executors = [
            StreamExecutor(self.device.create_stream())
            for _ in range(max(1, num_streams))
        ]
        self.streams = [ex.stream for ex in self.executors]
        self.brute_force_threshold = brute_force_threshold
        self.use_rows = use_rows
        self.fuse_rows = fuse_rows
        self.pack_cache = self.caches.pack
        self.executor_counts = {"bruteforce": 0, "sweepline": 0}
        self.fusion_stats = {"fused_launches": 0, "fused_segments": 0}
        self.phase_seconds = {"pack_seconds": 0.0, "kernel_seconds": 0.0}
        self._pack_depth = 0
        self._sequential = None

    # -- rule dispatch ------------------------------------------------------

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        if profile is None:
            profile = PhaseProfile()
        spec = kind_spec(rule.kind)
        if spec.parallel is None:
            # Shape / predicate / region-algebra rules have no arithmetic
            # worth vectorising; reuse the sequential strategies over the
            # same plan caches.
            return self._fallback().run(rule, profile)
        strategy = getattr(self, f"_run_{spec.parallel}")
        return strategy(rule, profile)

    def stats(self) -> Dict[str, float]:
        """Executor-choice, device-traffic, fusion, and cache counters."""
        counters = self.device.counters()
        store = self.caches.store
        cache = store.counters() if store is not None else {}
        return dict(
            kernels_bruteforce=self.executor_counts["bruteforce"],
            kernels_sweepline=self.executor_counts["sweepline"],
            kernel_launches=counters["kernel_launches"],
            h2d_copies=counters["h2d_copies"],
            h2d_bytes=counters["h2d_bytes"],
            d2h_copies=counters["d2h_copies"],
            fused_launches=self.fusion_stats["fused_launches"],
            fused_segments=self.fusion_stats["fused_segments"],
            pack_cache_hits=self.pack_cache.hits,
            pack_cache_misses=self.pack_cache.misses,
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            cache_corrupt=cache.get("corrupt", 0),
            cache_bytes_read=cache.get("bytes_read", 0),
            cache_bytes_written=cache.get("bytes_written", 0),
            pack_seconds=self.phase_seconds["pack_seconds"],
            kernel_seconds=self.phase_seconds["kernel_seconds"],
        )

    def close(self) -> None:
        """Flush pack-store counter deltas (idempotent; engine calls this)."""
        store = self.caches.store
        if store is not None:
            store.persist_counters()

    # -- strategy entry points (bound by plan.KIND_SPECS) ----------------------

    def _run_spacing(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        return self._spacing(rule.layer, rule.value, profile)

    def _run_width(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        return self._width(rule.layer, rule.value, profile)

    def _run_area(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        return self._area(rule.layer, rule.value, profile)

    def _run_corner(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        return self._corner(rule.layer, rule.value, profile)

    def _run_enclosure(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        return self._enclosure(rule.layer, rule.other_layer, rule.value, profile)

    # -- helpers --------------------------------------------------------------

    def _fallback(self):
        if self._sequential is None:
            from .sequential import SequentialBackend

            self._sequential = SequentialBackend(
                self.layout, tree=self.tree, caches=self.caches
            )
        return self._sequential

    def _stream(self, index: int) -> StreamExecutor:
        return self.executors[index % len(self.executors)]

    # -- phase timing --------------------------------------------------------

    @contextlib.contextmanager
    def _pack_timer(self):
        """Attribute elapsed time to ``pack_seconds`` (outermost scope only).

        Entered strictly inside *cold* build bodies — never around cache
        lookups — so a warm-start run (every artifact served from the memo
        or the pack store) reports exactly zero pack seconds. The depth
        guard keeps nested builds (fused pair -> per-row pairs) from double
        counting.
        """
        self._pack_depth += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self._pack_depth -= 1
            if self._pack_depth == 0:
                self.phase_seconds["pack_seconds"] += time.perf_counter() - start

    @contextlib.contextmanager
    def _kernel_phase(self, profile: PhaseProfile):
        """PHASE_EDGE_CHECKS attribution plus the ``kernel_seconds`` counter."""
        start = time.perf_counter()
        with profile.phase(PHASE_EDGE_CHECKS):
            yield
        self.phase_seconds["kernel_seconds"] += time.perf_counter() - start

    # -- pack-cache plumbing -------------------------------------------------

    def _cached_items(self, layer: int, profile: PhaseProfile) -> List[LevelItem]:
        with profile.phase(PHASE_OTHER):
            return self.caches.level_items(self.tree.top, layer)

    def _cached_partition(
        self, key: Any, mbrs: List[Rect], value: int, profile: PhaseProfile
    ) -> Tuple[List[List[int]], Any]:
        """The plan-level shared partition seam (memo + pack store)."""

        @contextlib.contextmanager
        def cold():
            with self._pack_timer(), profile.phase(PHASE_PARTITION):
                yield

        return self.caches.partition_rows(
            key, mbrs, value, use_rows=self.use_rows, cold_timer=cold
        )

    # -- pack-store plumbing (persistent, content-addressed) ------------------

    def _store_key(self, kind: str, layers: Any, value: int) -> str:
        """Content key: geometry digest(s) + partition parameters.

        ``use_rows`` and the margin fully determine the row membership given
        the geometry, so they (not the raw signature) key the fused buffers;
        the brute-force threshold is launch-time lane policy and deliberately
        not part of the key.
        """
        return store_key(
            kind, self.caches.digest_of(layers), self.use_rows, margin_for_rule(value)
        )

    def _store_load(self, kind: str, layers: Any, value: int, decode: Callable) -> Any:
        store = self.caches.store
        if store is None:
            return None
        return store.load(
            self._store_key(kind, layers, value), lambda a, m: decode(a, m)
        )

    def _store_save(self, kind: str, layers: Any, value: int, arrays, meta) -> None:
        store = self.caches.store
        if store is not None:
            store.save(self._store_key(kind, layers, value), arrays, meta)

    def _edge_packer(self, layer: int) -> HierarchicalEdgePacker:
        return self.pack_cache.get(
            "edge-packer", layer, lambda: HierarchicalEdgePacker(self.tree, layer)
        )

    def _rect_packer(self, layer: int) -> HierarchicalRectPacker:
        return self.pack_cache.get(
            "rect-packer", layer, lambda: HierarchicalRectPacker(self.tree, layer)
        )

    def _cached_row_pair(
        self, layer: int, sig: Any, index: int, row_items: List[LevelItem]
    ) -> EdgeBufferPair:
        def build() -> EdgeBufferPair:
            with self._pack_timer():
                return self._row_edge_buffers(row_items, self._edge_packer(layer))

        return self.pack_cache.get("edge-rows", (layer, sig, index), build)

    def _cached_fused_pair(
        self,
        layer: int,
        sig: Any,
        member_rows: List[List[int]],
        items: List[LevelItem],
        value: int,
    ) -> EdgeBufferPair:
        def build() -> EdgeBufferPair:
            loaded = self._store_load("fused-edges", layer, value, edge_pair_from_arrays)
            if loaded is not None:
                return loaded
            with self._pack_timer():
                pair = concat_segmented(
                    [
                        self._cached_row_pair(layer, sig, i, [items[m] for m in row])
                        for i, row in enumerate(member_rows)
                    ]
                )
            arrays, meta = edge_pair_to_arrays(pair)
            self._store_save("fused-edges", layer, value, arrays, meta)
            return pair

        return self.pack_cache.get("fused-edges", (layer, sig), build)

    def _flatten_items(self, items: Sequence[LevelItem], layer: int) -> List[Polygon]:
        """Materialize all polygons of the given level items (top coords)."""
        polygons: List[Polygon] = []
        for item in items:
            if item.polygon is not None:
                polygons.append(item.polygon)
            else:
                assert item.cell_name is not None and item.placement is not None
                polygons.extend(
                    self.subtree.polygons_in_window(
                        item.cell_name, item.placement, layer, item.mbr
                    )
                )
        return polygons

    def _launch_pair_kernels(
        self,
        polygons: Sequence[Polygon],
        threshold: int,
        *,
        want_width: bool,
        stream: StreamExecutor,
        profile: PhaseProfile,
    ) -> List[PairHits]:
        """Pack, copy, and check one task's edges on the device."""
        host_start = time.perf_counter()
        with self._pack_timer():
            buffers = pack_edges(polygons)
        stream.record_host("pack-edges", time.perf_counter() - host_start)

        hits: List[PairHits] = []
        for buf in (buffers["v"], buffers["h"]):
            if len(buf) < 2:
                continue
            with profile.phase(PHASE_OTHER):
                device_buf = EdgeBuffer(
                    buf.vertical,
                    stream.memcpy_h2d(buf.fixed, name="edges.fixed"),
                    stream.memcpy_h2d(buf.lo, name="edges.lo"),
                    stream.memcpy_h2d(buf.hi, name="edges.hi"),
                    stream.memcpy_h2d(buf.interior, name="edges.interior"),
                    stream.memcpy_h2d(buf.poly, name="edges.poly"),
                )
            with self._kernel_phase(profile):
                if len(buf) <= self.brute_force_threshold:
                    self.executor_counts["bruteforce"] += 1
                    hits.append(
                        stream.launch(
                            "pairs-bruteforce",
                            kernel_pairs_bruteforce,
                            device_buf,
                            threshold,
                            want_width=want_width,
                            items=len(buf),
                        )
                    )
                else:
                    self.executor_counts["sweepline"] += 1
                    hits.append(
                        stream.launch(
                            "pairs-sweepline",
                            kernel_pairs_sweep,
                            device_buf,
                            threshold,
                            want_width=want_width,
                            items=len(buf),
                        )
                    )
        return hits

    def _hits_to_violations(
        self,
        hits: Sequence[PairHits],
        kind: ViolationKind,
        layer: int,
        required: int,
        *,
        other_layer: Optional[int] = None,
    ) -> List[Violation]:
        return pair_hits_to_violations(
            hits, kind, layer, required, other_layer=other_layer
        )

    # -- spacing ---------------------------------------------------------------

    def _spacing(self, layer: int, value: int, profile: PhaseProfile) -> List[Violation]:
        items = self._cached_items(layer, profile)
        member_rows, sig = self._cached_partition(
            layer, [it.mbr for it in items], value, profile
        )
        if self.fuse_rows:
            host_start = time.perf_counter()
            fused = self._cached_fused_pair(layer, sig, member_rows, items, value)
            self.device.record_host("pack-fused", time.perf_counter() - host_start)
            if fused.num_edges < 2:
                return []
            hits = self._launch_fused_kernels(
                fused, value, want_width=False, profile=profile
            )
            return self._hits_to_violations(hits, ViolationKind.SPACING, layer, value)
        violations: List[Violation] = []
        for index, members in enumerate(member_rows):
            stream = self._stream(index)
            host_start = time.perf_counter()
            pair = self._cached_row_pair(layer, sig, index, [items[m] for m in members])
            stream.record_host(
                f"pack-row-{index}", time.perf_counter() - host_start
            )
            if pair.num_edges < 2:
                continue
            hits = self._launch_buffer_kernels(
                pair, value, want_width=False, stream=stream, profile=profile
            )
            violations.extend(
                self._hits_to_violations(hits, ViolationKind.SPACING, layer, value)
            )
        return violations

    def _launch_fused_kernels(
        self,
        pair: EdgeBufferPair,
        threshold: int,
        *,
        want_width: bool,
        profile: PhaseProfile,
    ) -> List[PairHits]:
        """One segmented launch per orientation per lane (fused dispatch).

        Vertical edges ride stream 0 and horizontal edges stream 1, keeping
        both streams busy within the single fused round. The §IV-E executor
        choice survives as a per-segment policy: segments at or below the
        brute-force threshold take the batched brute-force lane, larger
        ones the segmented sweepline lane.
        """
        hits: List[PairHits] = []
        for buf, stream in (
            (pair.vertical, self._stream(0)),
            (pair.horizontal, self._stream(1)),
        ):
            if len(buf) < 2:
                continue
            with profile.phase(PHASE_OTHER):
                device_buf = EdgeBuffer(
                    buf.vertical,
                    stream.memcpy_h2d(buf.fixed, name="edges.fixed"),
                    stream.memcpy_h2d(buf.lo, name="edges.lo"),
                    stream.memcpy_h2d(buf.hi, name="edges.hi"),
                    stream.memcpy_h2d(buf.interior, name="edges.interior"),
                    stream.memcpy_h2d(buf.poly, name="edges.poly"),
                    stream.memcpy_h2d(buf.segment, name="edges.segment")
                    if buf.segment is not None
                    else None,
                )
            seg = (
                buf.segment
                if buf.segment is not None
                else np.zeros(len(buf), dtype=np.int64)
            )
            small = np.bincount(seg)[seg] <= self.brute_force_threshold
            lanes = (
                ("pairs-bruteforce-fused", kernel_pairs_bruteforce_segmented,
                 "bruteforce", small),
                ("pairs-sweepline-fused", kernel_pairs_sweep_segmented,
                 "sweepline", ~small),
            )
            for name, kernel, counter, mask in lanes:
                count = int(mask.sum())
                if count < 2:
                    continue
                lane_buf = device_buf.take(np.flatnonzero(mask))
                with self._kernel_phase(profile):
                    self.executor_counts[counter] += 1
                    self.fusion_stats["fused_launches"] += 1
                    self.fusion_stats["fused_segments"] += int(np.unique(seg[mask]).size)
                    hits.append(
                        stream.launch(
                            name, kernel, lane_buf, threshold,
                            want_width=want_width, items=count,
                        )
                    )
        return hits

    def _row_edge_buffers(
        self, row_items: Sequence[LevelItem], packer: HierarchicalEdgePacker
    ) -> EdgeBufferPair:
        """One row's flat edge buffers, built hierarchically.

        Local polygons of the top cell are packed directly; child instances
        reuse the per-definition buffers via vectorised transforms — host
        preparation scales with definitions, not flat polygon count.
        """
        parts_v = []
        parts_h = []
        local_polys: List[Polygon] = []
        offset = 0
        instances: List[Tuple[str, Transform]] = []
        for item in row_items:
            if item.polygon is not None:
                local_polys.append(item.polygon)
            else:
                assert item.cell_name is not None and item.placement is not None
                instances.append((item.cell_name, item.placement))
        if local_polys:
            packed = pack_edges(local_polys)
            parts_v.append(packed["v"])
            parts_h.append(packed["h"])
            offset = len(local_polys)
        for cell_name, placement in instances:
            pair = packer.instance_buffer(cell_name, placement, offset)
            offset += pair.num_polygons
            if len(pair.vertical):
                parts_v.append(pair.vertical)
            if len(pair.horizontal):
                parts_h.append(pair.horizontal)
        return EdgeBufferPair(
            concat_edge_buffers(parts_v, vertical=True),
            concat_edge_buffers(parts_h, vertical=False),
            offset,
        )

    def _launch_buffer_kernels(
        self,
        pair: EdgeBufferPair,
        threshold: int,
        *,
        want_width: bool,
        stream: StreamExecutor,
        profile: PhaseProfile,
    ) -> List[PairHits]:
        hits: List[PairHits] = []
        for buf in (pair.vertical, pair.horizontal):
            if len(buf) < 2:
                continue
            with profile.phase(PHASE_OTHER):
                device_buf = EdgeBuffer(
                    buf.vertical,
                    stream.memcpy_h2d(buf.fixed, name="edges.fixed"),
                    stream.memcpy_h2d(buf.lo, name="edges.lo"),
                    stream.memcpy_h2d(buf.hi, name="edges.hi"),
                    stream.memcpy_h2d(buf.interior, name="edges.interior"),
                    stream.memcpy_h2d(buf.poly, name="edges.poly"),
                )
            with self._kernel_phase(profile):
                if len(buf) <= self.brute_force_threshold:
                    self.executor_counts["bruteforce"] += 1
                    kernel, name = kernel_pairs_bruteforce, "pairs-bruteforce"
                else:
                    self.executor_counts["sweepline"] += 1
                    kernel, name = kernel_pairs_sweep, "pairs-sweepline"
                hits.append(
                    stream.launch(
                        name, kernel, device_buf, threshold,
                        want_width=want_width, items=len(buf),
                    )
                )
        return hits

    # -- width -------------------------------------------------------------------

    def _width(self, layer: int, value: int, profile: PhaseProfile) -> List[Violation]:
        definitions, instances = self._definition_instances(layer, distance_rule=True)
        if not definitions:
            return []
        with profile.phase(PHASE_OTHER):
            polygons: List[Polygon] = []
            owner: List[int] = []  # definition index per polygon
            for def_index, (cell_name, polys) in enumerate(definitions):
                for polygon in polys:
                    polygons.append(polygon)
                    owner.append(def_index)
        stream = self._stream(0)
        # Polygon ids must be unique per polygon so width stays intra-polygon.
        hits = self._launch_pair_kernels(
            polygons, value, want_width=True, stream=stream, profile=profile
        )
        per_def = self._group_hits_by_definition(hits, owner)
        return self._instantiate(per_def, instances, ViolationKind.WIDTH, layer, value)

    # -- area ---------------------------------------------------------------------

    def _area(self, layer: int, value: int, profile: PhaseProfile) -> List[Violation]:
        definitions, instances = self._definition_instances(layer, distance_rule=False)
        if not definitions:
            return []
        polygons: List[Polygon] = []
        owner: List[int] = []
        for def_index, (cell_name, polys) in enumerate(definitions):
            for polygon in polys:
                polygons.append(polygon)
                owner.append(def_index)
        stream = self._stream(0)
        host_start = time.perf_counter()
        with self._pack_timer():
            buf = pack_vertices(polygons)
        stream.record_host("pack-vertices", time.perf_counter() - host_start)
        with profile.phase(PHASE_OTHER):
            xs = stream.memcpy_h2d(buf.xs, name="verts.x")
            ys = stream.memcpy_h2d(buf.ys, name="verts.y")
            buf.xs, buf.ys = xs, ys
        with self._kernel_phase(profile):
            areas = stream.launch("area", kernel_area, buf, items=len(buf))
        per_def: Dict[int, List[Violation]] = {}
        for poly_index, area in enumerate(areas):
            if int(area) < value:
                polygon = polygons[poly_index]
                per_def.setdefault(owner[poly_index], []).append(
                    Violation(
                        kind=ViolationKind.AREA,
                        layer=layer,
                        region=polygon.mbr,
                        measured=int(area),
                        required=value,
                    )
                )
        return self._instantiate(per_def, instances, ViolationKind.AREA, layer, value)

    # -- corner spacing (roadmap extension) --------------------------------------

    def _cached_fused_corners(
        self,
        layer: int,
        sig: Any,
        member_rows: List[List[int]],
        items: List[LevelItem],
        value: int,
    ) -> CornerBuffer:
        def build() -> CornerBuffer:
            loaded = self._store_load("fused-corners", layer, value, corners_from_arrays)
            if loaded is not None:
                return loaded
            with self._pack_timer():
                parts: List[CornerBuffer] = []
                for index, members in enumerate(member_rows):
                    polygons = self._flatten_items([items[m] for m in members], layer)
                    row_buf = pack_corners(polygons)
                    if len(row_buf):
                        row_buf.segment = np.full(len(row_buf), index, dtype=np.int64)
                        parts.append(row_buf)
                if not parts:
                    buf = pack_corners([])
                else:
                    buf = CornerBuffer(
                        np.concatenate([p.x for p in parts]),
                        np.concatenate([p.y for p in parts]),
                        np.concatenate([p.qx for p in parts]),
                        np.concatenate([p.qy for p in parts]),
                        np.concatenate([p.poly for p in parts]),
                        np.concatenate([p.segment for p in parts]),
                    )
            arrays, meta = corners_to_arrays(buf)
            self._store_save("fused-corners", layer, value, arrays, meta)
            return buf

        return self.pack_cache.get("fused-corners", (layer, sig), build)

    def _corner_hits_to_violations(
        self, hits: CornerHits, layer: int, value: int
    ) -> List[Violation]:
        return corner_hits_to_violations(hits, layer, value)

    def _corner(self, layer: int, value: int, profile: PhaseProfile) -> List[Violation]:
        """Diagonal corner checks: one fused launch, or row-by-row (ablation)."""
        from ..gpu.kernels import kernel_corner_pairs

        items = self._cached_items(layer, profile)
        member_rows, sig = self._cached_partition(
            layer, [it.mbr for it in items], value, profile
        )
        if self.fuse_rows:
            host_start = time.perf_counter()
            buf = self._cached_fused_corners(layer, sig, member_rows, items, value)
            self.device.record_host(
                "pack-corners-fused", time.perf_counter() - host_start
            )
            if len(buf) < 2:
                return []
            stream = self._stream(0)
            with profile.phase(PHASE_OTHER):
                device_buf = CornerBuffer(
                    stream.memcpy_h2d(buf.x, name="corners.x"),
                    stream.memcpy_h2d(buf.y, name="corners.y"),
                    buf.qx,
                    buf.qy,
                    buf.poly,
                    stream.memcpy_h2d(buf.segment, name="corners.segment"),
                )
            with self._kernel_phase(profile):
                self.fusion_stats["fused_launches"] += 1
                self.fusion_stats["fused_segments"] += len(member_rows)
                hits = stream.launch(
                    "corner-pairs-fused",
                    kernel_corner_pairs_segmented,
                    device_buf,
                    value,
                    items=len(buf),
                )
            return self._corner_hits_to_violations(hits, layer, value)
        violations: List[Violation] = []
        for index, members in enumerate(member_rows):
            stream = self._stream(index)
            host_start = time.perf_counter()
            with self._pack_timer():
                polygons = self._flatten_items([items[m] for m in members], layer)
                buf = pack_corners(polygons)
            stream.record_host(
                f"pack-corners-{index}", time.perf_counter() - host_start
            )
            if len(buf) < 2:
                continue
            with profile.phase(PHASE_OTHER):
                device_x = stream.memcpy_h2d(buf.x, name="corners.x")
                device_y = stream.memcpy_h2d(buf.y, name="corners.y")
                buf.x, buf.y = device_x, device_y
            with self._kernel_phase(profile):
                hits = stream.launch(
                    "corner-pairs", kernel_corner_pairs, buf, value, items=len(buf)
                )
            violations.extend(self._corner_hits_to_violations(hits, layer, value))
        return violations

    # -- enclosure -----------------------------------------------------------------

    def _enclosure(
        self, via_layer: int, metal_layer: int, value: int, profile: PhaseProfile
    ) -> List[Violation]:
        via_items = self._cached_items(via_layer, profile)
        metal_items = self._cached_items(metal_layer, profile)
        if not via_items:
            return []
        # Partition rows over both populations together: an instance may
        # appear twice (one MBR per layer), but an enclosing metal always
        # overlaps its via, so overlapping items land in the same row.
        combined = via_items + metal_items
        member_rows, sig = self._cached_partition(
            (via_layer, metal_layer), [it.mbr for it in combined], value, profile
        )
        num_vias = len(via_items)
        if self.fuse_rows:
            return self._enclosure_fused(
                via_layer, metal_layer, value, profile,
                combined, member_rows, sig, num_vias,
            )
        violations: List[Violation] = []
        via_packer = self._rect_packer(via_layer)
        metal_packer = self._rect_packer(metal_layer)
        for index, members in enumerate(member_rows):
            row_vias = [combined[m] for m in members if m < num_vias]
            row_metals = [combined[m] for m in members if m >= num_vias]
            if not row_vias:
                continue
            stream = self._stream(index)
            host_start = time.perf_counter()
            via_buf, metal_buf = self.pack_cache.get(
                "rect-row",
                (via_layer, metal_layer, sig, index),
                lambda rv=row_vias, rm=row_metals: (
                    self._row_rect_buffer(rv, via_packer),
                    self._row_rect_buffer(rm, metal_packer),
                ),
            )
            stream.record_host(
                f"pack-row-{index}", time.perf_counter() - host_start
            )
            if len(via_buf) == 0:
                continue
            if via_buf.all_rect and metal_buf.all_rect:
                violations.extend(
                    self._enclosure_rects(
                        via_buf.rects, metal_buf.rects,
                        via_layer, metal_layer, value, stream, profile,
                    )
                )
            else:
                # Rectilinear (non-rectangle) geometry: exact host fallback.
                vias = self._flatten_items(row_vias, via_layer)
                metals = self._flatten_items(row_metals, metal_layer)
                violations.extend(
                    self._enclosure_row(
                        vias, metals, via_layer, metal_layer, value, stream, profile
                    )
                )
        return violations

    def _enclosure_fused(
        self,
        via_layer: int,
        metal_layer: int,
        value: int,
        profile: PhaseProfile,
        combined: List[LevelItem],
        member_rows: List[List[int]],
        sig: Any,
        num_vias: int,
    ) -> List[Violation]:
        """All-rectangle rows fused into one segmented candidate/measure/reduce
        round; rectilinear rows fall back to the exact per-row host path."""

        host_start = time.perf_counter()
        rect_rows = self._cached_rect_rows(
            via_layer, metal_layer, sig, member_rows, combined, num_vias, value
        )
        self.device.record_host("pack-rects-fused", time.perf_counter() - host_start)

        violations: List[Violation] = []
        fused_vias: List[np.ndarray] = []
        fused_via_seg: List[np.ndarray] = []
        fused_metals: List[np.ndarray] = []
        fused_metal_seg: List[np.ndarray] = []
        for index, (via_buf, metal_buf) in enumerate(rect_rows):
            if len(via_buf) == 0:
                continue
            if via_buf.all_rect and metal_buf.all_rect:
                fused_vias.append(via_buf.rects)
                fused_via_seg.append(np.full(len(via_buf), index, dtype=np.int64))
                if len(metal_buf):
                    fused_metals.append(metal_buf.rects)
                    fused_metal_seg.append(
                        np.full(len(metal_buf), index, dtype=np.int64)
                    )
            else:
                members = member_rows[index]
                vias = self._flatten_items(
                    [combined[m] for m in members if m < num_vias], via_layer
                )
                metals = self._flatten_items(
                    [combined[m] for m in members if m >= num_vias], metal_layer
                )
                violations.extend(
                    self._enclosure_row(
                        vias, metals, via_layer, metal_layer, value,
                        self._stream(index), profile,
                    )
                )
        if fused_vias:
            metal_rects = (
                np.concatenate(fused_metals, axis=0)
                if fused_metals
                else np.zeros((0, 4), dtype=np.int64)
            )
            metal_seg = (
                np.concatenate(fused_metal_seg)
                if fused_metal_seg
                else np.zeros(0, dtype=np.int64)
            )
            self.fusion_stats["fused_launches"] += 1
            self.fusion_stats["fused_segments"] += len(fused_vias)
            violations.extend(
                self._enclosure_rects(
                    np.concatenate(fused_vias, axis=0), metal_rects,
                    via_layer, metal_layer, value, self._stream(0), profile,
                    via_segment=np.concatenate(fused_via_seg),
                    metal_segment=metal_seg,
                )
            )
        return violations

    def _cached_rect_rows(
        self,
        via_layer: int,
        metal_layer: int,
        sig: Any,
        member_rows: List[List[int]],
        combined: List[LevelItem],
        num_vias: int,
        value: int,
    ) -> List[tuple]:
        """Per-row ``(via RectBuffer, metal RectBuffer)`` pairs, cached.

        Shared by the fused enclosure path and the multiprocess shard
        builder, which cuts these rows across worker processes.
        """

        def build() -> List[tuple]:
            loaded = self._store_load(
                "rect-rows", (via_layer, metal_layer), value, rect_rows_from_arrays
            )
            if loaded is not None:
                return [
                    (loaded[i], loaded[i + 1]) for i in range(0, len(loaded), 2)
                ]
            with self._pack_timer():
                via_packer = self._rect_packer(via_layer)
                metal_packer = self._rect_packer(metal_layer)
                rows = [
                    (
                        self._row_rect_buffer(
                            [combined[m] for m in members if m < num_vias], via_packer
                        ),
                        self._row_rect_buffer(
                            [combined[m] for m in members if m >= num_vias],
                            metal_packer,
                        ),
                    )
                    for members in member_rows
                ]
            arrays, meta = rect_rows_to_arrays([buf for pair in rows for buf in pair])
            self._store_save("rect-rows", (via_layer, metal_layer), value, arrays, meta)
            return rows

        return self.pack_cache.get("rect-rows", (via_layer, metal_layer, sig), build)

    def _row_rect_buffer(
        self, row_items: Sequence[LevelItem], packer: HierarchicalRectPacker
    ):
        from ..hierarchy.edgepack import RectBuffer

        parts = []
        all_rect = True
        local: List[Polygon] = []
        for item in row_items:
            if item.polygon is not None:
                local.append(item.polygon)
            else:
                assert item.cell_name is not None and item.placement is not None
                buf = packer.instance_rects(item.cell_name, item.placement)
                all_rect = all_rect and buf.all_rect
                if len(buf):
                    parts.append(buf.rects)
        if local:
            parts.insert(0, np.asarray([tuple(p.mbr) for p in local], dtype=np.int64))
            all_rect = all_rect and all(p.is_rectangle for p in local)
        if parts:
            return RectBuffer(np.concatenate(parts, axis=0), all_rect)
        return RectBuffer.empty()

    def _enclosure_rects(
        self,
        via_rects: np.ndarray,
        metal_rects: np.ndarray,
        via_layer: int,
        metal_layer: int,
        value: int,
        stream: StreamExecutor,
        profile: PhaseProfile,
        *,
        via_segment: Optional[np.ndarray] = None,
        metal_segment: Optional[np.ndarray] = None,
    ) -> List[Violation]:
        """All-rectangle enclosure on the device: pair, measure, reduce.

        With segment arrays, one fused round evaluates every row at once
        (cross-segment candidates are masked in the candidate kernel)."""
        with profile.phase(PHASE_OTHER):
            via_dev = stream.memcpy_h2d(via_rects, name="via.rects")
            metal_dev = (
                stream.memcpy_h2d(metal_rects, name="metal.rects")
                if len(metal_rects)
                else metal_rects
            )
            if via_segment is not None:
                via_segment = stream.memcpy_h2d(via_segment, name="via.segment")
            if metal_segment is not None and len(metal_segment):
                metal_segment = stream.memcpy_h2d(metal_segment, name="metal.segment")
        with profile.phase(PHASE_SWEEPLINE):
            pair_via, pair_metal = stream.launch(
                "enclosure-candidates",
                _candidate_pairs_kernel,
                via_dev,
                metal_dev,
                value,
                via_segment=via_segment,
                metal_segment=metal_segment,
                items=len(via_rects),
            )
        with self._kernel_phase(profile):
            margins = stream.launch(
                "enclosure-margins",
                kernel_enclosure_margins,
                via_dev, metal_dev, pair_via, pair_metal,
                items=len(pair_via),
            )
            best = stream.launch(
                "enclosure-reduce",
                reduce_enclosure_best,
                len(via_rects), pair_via, margins,
                items=len(via_rects),
            )
        return enclosure_margins_to_violations(
            via_rects, best, via_layer, metal_layer, value
        )

    def _enclosure_row(
        self,
        vias: List[Polygon],
        metals: List[Polygon],
        via_layer: int,
        metal_layer: int,
        value: int,
        stream: StreamExecutor,
        profile: PhaseProfile,
    ) -> List[Violation]:
        all_rect = all(p.is_rectangle for p in vias) and all(
            p.is_rectangle for p in metals
        )
        with profile.phase(PHASE_SWEEPLINE):
            via_windows = [v.mbr.inflated(value) for v in vias]
            metal_rects = [m.mbr for m in metals]
            pairs = list(iter_bipartite_overlaps(via_windows, metal_rects))
        if not all_rect:
            # Host fallback: exact edge-based margins for rectilinear shapes.
            candidates: List[List[Polygon]] = [[] for _ in vias]
            for i, j in pairs:
                candidates[i].append(metals[j])
            out: List[Violation] = []
            with self._kernel_phase(profile):
                for via, cands in zip(vias, candidates):
                    out.extend(
                        enclosure_pair_violations(
                            via, cands, via_layer, metal_layer, value
                        )
                    )
            return out

        host_start = time.perf_counter()
        via_arr = np.asarray([tuple(v.mbr) for v in vias], dtype=np.int64)
        if metal_rects:
            metal_arr = np.asarray([tuple(m) for m in metal_rects], dtype=np.int64)
        else:
            metal_arr = np.zeros((0, 4), dtype=np.int64)
        pair_via = np.asarray([i for i, _ in pairs], dtype=np.int64)
        pair_metal = np.asarray([j for _, j in pairs], dtype=np.int64)
        stream.record_host("pack-enclosure", time.perf_counter() - host_start)
        with profile.phase(PHASE_OTHER):
            via_dev = stream.memcpy_h2d(via_arr, name="via.rects")
            metal_dev = (
                stream.memcpy_h2d(metal_arr, name="metal.rects")
                if len(metal_arr)
                else metal_arr
            )
        with self._kernel_phase(profile):
            margins = stream.launch(
                "enclosure-margins",
                kernel_enclosure_margins,
                via_dev,
                metal_dev,
                pair_via,
                pair_metal,
                items=len(pair_via),
            )
            best = stream.launch(
                "enclosure-reduce",
                reduce_enclosure_best,
                len(vias),
                pair_via,
                margins,
                items=len(vias),
            )
        out = []
        for via_index, margin in enumerate(best):
            if int(margin) >= value:
                continue
            out.append(
                Violation(
                    kind=ViolationKind.ENCLOSURE,
                    layer=via_layer,
                    other_layer=metal_layer,
                    region=vias[via_index].mbr.inflated(value),
                    measured=max(int(margin), 0),
                    required=value,
                )
            )
        return out

    # -- definition/instance machinery for intra rules ------------------------------

    def _definition_instances(
        self, layer: int, *, distance_rule: bool
    ) -> Tuple[List[Tuple[str, List[Polygon]]], Dict[int, List[Transform]]]:
        """Unique checked definitions plus the transforms instantiating each.

        Placements that break the rule's invariance (magnification) get a
        dedicated definition with pre-transformed polygons and an identity
        instance, so the kernels still see every instance exactly once.
        Cached per (layer, invariance class) across the deck's rules.
        """
        return self.pack_cache.get(
            "definitions",
            (layer, distance_rule),
            lambda: self._build_definition_instances(layer, distance_rule=distance_rule),
        )

    def _build_definition_instances(
        self, layer: int, *, distance_rule: bool
    ) -> Tuple[List[Tuple[str, List[Polygon]]], Dict[int, List[Transform]]]:
        definitions: List[Tuple[str, List[Polygon]]] = []
        def_index_of: Dict[str, int] = {}
        instances: Dict[int, List[Transform]] = {}
        for cell, transform in self.tree.iter_instances(layer=layer):
            polys = cell.polygons(layer)
            if not polys:
                continue
            invariant = transform.preserves_distances if distance_rule else (
                transform.area_scale == 1
            )
            if invariant:
                index = def_index_of.get(cell.name)
                if index is None:
                    index = len(definitions)
                    def_index_of[cell.name] = index
                    definitions.append((cell.name, polys))
                    instances[index] = []
                instances[index].append(transform)
            else:
                index = len(definitions)
                definitions.append(
                    (f"{cell.name}@{transform}", [p.transformed(transform) for p in polys])
                )
                instances[index] = [IDENTITY]
        return definitions, instances

    def _group_hits_by_definition(
        self, hits: Sequence[PairHits], owner: List[int]
    ) -> Dict[int, List[Tuple[Rect, int]]]:
        # Width hits carry poly ids == global polygon indices; map to owners.
        grouped: Dict[int, List[Tuple[Rect, int]]] = {}
        batch = PairHits.concatenate(list(hits))
        if len(batch) == 0:
            return grouped
        owners = np.asarray(owner, dtype=np.int64)[batch.poly_a]
        regions = np.stack([batch.xlo, batch.ylo, batch.xhi, batch.yhi], axis=1)
        for own, coords, measured in zip(
            owners.tolist(), regions.tolist(), batch.measured.tolist()
        ):
            grouped.setdefault(own, []).append((Rect(*coords), measured))
        return grouped

    def _instantiate(
        self,
        per_def,
        instances: Dict[int, List[Transform]],
        kind: ViolationKind,
        layer: int,
        required: int,
    ) -> List[Violation]:
        out: List[Violation] = []
        for def_index, found in per_def.items():
            for transform in instances.get(def_index, []):
                for item in found:
                    if isinstance(item, Violation):
                        out.append(item.transformed(transform))
                    else:
                        region, measured = item
                        out.append(
                            Violation(
                                kind=kind,
                                layer=layer,
                                region=transform.apply_rect(region),
                                measured=measured,
                                required=required,
                            )
                        )
        return out


#: Backwards-compatible name from before the Backend protocol existed.
ParallelChecker = ParallelBackend
