"""Multi-core sharded execution: a process-parallel backend over the rows.

Every other backend in this reproduction models parallelism on one OS core;
this one uses the machine's. A compiled :class:`~repro.core.plan.CheckPlan`
is cut two ways across a pool of worker processes:

* **Row shards** — for intra-layer rules (spacing, corner spacing,
  enclosure) the rows of the adaptive partition (paper §IV-B) are the shard
  unit: cross-row pairs are provably beyond the rule distance, so whole rows
  can be checked on different cores with no communication. Rows are packed
  into shards by the greedy LPT assignment
  (:func:`~repro.core.scheduler.greedy_balanced_shards`), oversubscribed so
  the pool's shared task queue acts as a work-stealing deque: a worker that
  finishes a light shard steals the next pending one instead of idling
  behind a skewed row (the paper's row-skew problem, now across cores).
* **Rule tasks** — every other rule kind becomes one pool task, submitted
  eagerly by :meth:`MultiprocessBackend.prefetch` so workers run ahead of
  the engine's serial per-rule drive.

Workers live in a :class:`~repro.core.workerpool.WorkerPool` — generic,
deck-free processes that pre-import the heavy modules. The layout + rule
deck is spooled to disk once per content digest
(:meth:`~repro.core.workerpool.WorkerPool.ensure_plan`); tasks carry a tiny
:class:`~repro.core.workerpool.PlanRef` and each worker compiles + caches
the plan on first touch, staying warm across rules, checks, and pool
rebuilds. With ``warm_pool`` enabled the pool itself outlives the check
(process-wide registry), so a repeat check of the same deck spawns zero
processes and ships only shard descriptors (``mp_plan_compiles == 0``).
When several backends share one warm pool (concurrent serving), each
submits under its own requester token and the pool's fair dispatcher
interleaves their tasks round-robin, so no request's shard batch starves
another's.

A calibrated :class:`~repro.core.costmodel.CostModel` (enabled by
``EngineOptions.cost_model``) prices every fan-out against the measured
pool dispatch overhead: rules whose estimated compute is below break-even
run inline in the parent (``mp_cost_routed_inline``), and winning rules
get their shard count sized to amortize per-task dispatch. An uncalibrated
model routes nothing — first occurrences always take the status-quo path
and thereby produce the observations that calibrate it.

Packed edge / corner / rect buffers travel through
``multiprocessing.shared_memory`` views (:mod:`repro.gpu.shmem`) rather
than pickled polygon objects. Each
task returns its violation list plus stats-counter deltas and a
:class:`~repro.util.profile.PhaseProfile` dict; the parent merges them in
submission order, and the canonical violation sort in
:class:`~repro.core.results.CheckResult` makes the merged report *equal as
a plain list* to the sequential one, regardless of worker count or
scheduling order.

Rules that cannot cross a process boundary (e.g. ``ensures`` rules with
lambda predicates) are detected by a pickle probe and run inline in the
parent — correctness never depends on picklability.

Fault tolerance (the production posture): every ``get()`` carries a
per-task timeout, failed or timed-out tasks are resubmitted with bounded
exponential backoff, a task that exhausts its retries runs in-process
instead (and its rule stops using the pool), and if the pool itself cannot
be kept alive the whole backend degrades to the sequential backend — the
check always completes with the canonical report; only the
``mp_retries`` / ``mp_timeouts`` / ``mp_inline_fallbacks`` /
``mp_degraded`` counters reveal that recovery happened. Recovery paths run
under :func:`repro.util.faults.suppressed` so injected faults can never
fail the fallback itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import multiprocessing
import pickle
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..checks.base import Violation, ViolationKind
from ..gpu.device import Device
from ..gpu.kernels import (
    CornerBuffer,
    EdgeBuffer,
    PairHits,
    kernel_corner_pairs_segmented,
    kernel_enclosure_margins,
    kernel_pairs_bruteforce_segmented,
    kernel_pairs_sweep_segmented,
    reduce_enclosure_best,
)
from ..gpu.shmem import ArrayRef, ShmArena, file_backed_ref
from ..util import faults
from ..util.logging import get_logger
from ..util.profile import PHASE_EDGE_CHECKS, PHASE_OTHER, PHASE_SWEEPLINE, PhaseProfile
from . import costmodel, workerpool
from .packstore import store_key
from .plan import MODE_PARALLEL, CheckPlan
from .rules import Rule, RuleKind
from .scheduler import greedy_balanced_shards, shard_count
from .workerpool import PlanRef

__all__ = ["MultiprocessBackend", "ROW_SHARDED_KINDS"]

#: Rule kinds sharded at row granularity; everything else fans out per rule.
ROW_SHARDED_KINDS = (RuleKind.SPACING, RuleKind.CORNER_SPACING, RuleKind.ENCLOSURE)

#: Pool teardown-and-rebuild attempts before the backend degrades for good.
MAX_POOL_RESTARTS = 2

#: First retry backoff (seconds); doubles per attempt, capped below.
RETRY_BACKOFF = 0.05
RETRY_BACKOFF_CAP = 1.0

_INT = np.int64

_logger = get_logger("multiproc")


def _rule_picklable(rule: Rule) -> bool:
    try:
        pickle.dumps(rule)
        return True
    except Exception:
        return False


def _predicate_identity(predicate) -> Optional[Tuple[Any, Any]]:
    if predicate is None:
        return None
    return (
        getattr(predicate, "__module__", None),
        getattr(predicate, "__qualname__", repr(predicate)),
    )


def _rule_identity(rule: Rule) -> Tuple[Any, ...]:
    """A value-based identity for the probe memo and cost-model keys.

    Predicates are identified by (module, qualname), which is correct for
    any named function and safe for lambdas — but it cannot see instance
    state, so two callable instances of one class collide. That is
    acceptable *only* here, where a collision changes a routing decision
    (probe result, cost estimate), never a report. Anything that feeds the
    shipped plan digest must use :func:`_rule_ship_identity` instead.
    """
    return (
        rule.name,
        rule.kind.value,
        rule.layer,
        rule.other_layer,
        rule.value,
        _predicate_identity(rule.predicate),
    )


def _rule_ship_identity(rule: Rule) -> Tuple[Any, ...]:
    """Identity of a rule *as it ships to workers* (plan-digest use).

    The plan digest keys the spooled payload: a collision there makes a
    warm pool silently run a previous check's pickled rules, so predicate
    identity must come from the bytes that actually ship. For rules that
    passed the pickle probe that is a content hash of the pickled
    predicate — ``Thresh(5)`` and ``Thresh(10)`` share a qualname but not
    a pickle. Unpicklable predicates never ship, so their qualname
    identity is inert in the digest.
    """
    predicate = rule.predicate
    identity: Any = None
    if predicate is not None:
        try:
            identity = hashlib.sha256(
                pickle.dumps(predicate, protocol=pickle.HIGHEST_PROTOCOL)
            ).hexdigest()
        except Exception:
            identity = _predicate_identity(predicate)
    return (
        rule.name,
        rule.kind.value,
        rule.layer,
        rule.other_layer,
        rule.value,
        identity,
    )


#: Process-wide pickle-probe memo: repeated (warm) checks of a deck skip the
#: probe entirely; ``mp_pickle_probes`` counts only actual probe executions.
_PROBE_CACHE: Dict[Tuple[Any, ...], bool] = {}


# ---------------------------------------------------------------------------
# Buffer transport (ArrayRef payloads for the shard tasks)
# ---------------------------------------------------------------------------


def _share_edges(arena: ShmArena, buf: EdgeBuffer) -> Dict[str, Any]:
    return {
        "vertical": buf.vertical,
        "fixed": arena.stage(buf.fixed),
        "lo": arena.stage(buf.lo),
        "hi": arena.stage(buf.hi),
        "interior": arena.stage(buf.interior),
        "poly": arena.stage(buf.poly),
        "segment": None if buf.segment is None else arena.stage(buf.segment),
    }


def _edges_file_refs(buf: EdgeBuffer) -> Optional[Dict[str, Any]]:
    """Memmap descriptors for a pack-store-backed fused buffer, or ``None``.

    When the fused buffer was served from the persistent pack store, every
    component array is a window of the store's memmap — the shard payload
    can then carry (path, offset) descriptors plus the shard's row ids, and
    each worker maps the same pages instead of copying bytes through shared
    memory. Any non-file-backed component (cold run, `--no-cache`) vetoes
    the whole payload so the ShmArena transport takes over.
    """
    if buf.segment is None:
        return None
    refs: Dict[str, Any] = {"vertical": buf.vertical}
    for name in ("fixed", "lo", "hi", "interior", "poly", "segment"):
        ref = file_backed_ref(getattr(buf, name))
        if ref is None:
            return None
        refs[name] = ref
    return refs


def _resolve_edges(payload: Dict[str, Any]) -> EdgeBuffer:
    segment = payload["segment"]
    buf = EdgeBuffer(
        payload["vertical"],
        payload["fixed"].resolve(),
        payload["lo"].resolve(),
        payload["hi"].resolve(),
        payload["interior"].resolve(),
        payload["poly"].resolve(),
        None if segment is None else segment.resolve(),
    )
    rows = payload.get("rows")
    if rows is not None:
        # Memmap payloads carry the whole fused buffer; cut this shard's
        # rows here (same np.isin select the parent-side arena path does).
        index = np.flatnonzero(np.isin(buf.segment, np.asarray(rows, dtype=_INT)))
        buf = buf.take(index)
    return buf


def _share_corners(arena: ShmArena, buf: CornerBuffer) -> Dict[str, Any]:
    return {
        "x": arena.stage(buf.x),
        "y": arena.stage(buf.y),
        "qx": arena.stage(buf.qx),
        "qy": arena.stage(buf.qy),
        "poly": arena.stage(buf.poly),
        "segment": None if buf.segment is None else arena.stage(buf.segment),
    }


def _corners_file_refs(buf: CornerBuffer) -> Optional[Dict[str, Any]]:
    """Memmap descriptors for a store-backed corner buffer (see edges)."""
    if buf.segment is None:
        return None
    refs: Dict[str, Any] = {}
    for name in ("x", "y", "qx", "qy", "poly", "segment"):
        ref = file_backed_ref(getattr(buf, name))
        if ref is None:
            return None
        refs[name] = ref
    return refs


def _resolve_corners(payload: Dict[str, Any]) -> CornerBuffer:
    segment = payload["segment"]
    buf = CornerBuffer(
        payload["x"].resolve(),
        payload["y"].resolve(),
        payload["qx"].resolve(),
        payload["qy"].resolve(),
        payload["poly"].resolve(),
        None if segment is None else segment.resolve(),
    )
    rows = payload.get("rows")
    if rows is not None:
        index = np.flatnonzero(np.isin(buf.segment, np.asarray(rows, dtype=_INT)))
        buf = buf.take(index)
    return buf


# ---------------------------------------------------------------------------
# Worker-side tasks
# ---------------------------------------------------------------------------
#
# Worker-process state (compiled plan cache, shard device) lives in
# :mod:`repro.core.workerpool` so it survives across checks and is shared
# by every deck a warm pool serves.


def _counter_delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    return {key: after[key] - before.get(key, 0) for key in after}


@dataclasses.dataclass
class _RuleTask:
    """One whole rule, run on the worker's warm backend for ``ref``."""

    rule: Rule
    ref: PlanRef

    def execute(self):
        backend = workerpool.plan_backend(self.ref)
        before = backend.stats()
        profile = PhaseProfile()
        violations = backend.run(self.rule, profile)
        return violations, _counter_delta(before, backend.stats()), profile.to_dict()


@dataclasses.dataclass
class _PairShardTask:
    """A shard of fused segmented rows for a pair rule (spacing)."""

    layer: int
    value: int
    threshold: int
    vertical: Optional[Dict[str, Any]]
    horizontal: Optional[Dict[str, Any]]

    def execute(self):
        from .parallel import pair_hits_to_violations

        device, executors = workerpool.worker_device()
        before = device.counters()
        stats = {
            "kernels_bruteforce": 0, "kernels_sweepline": 0,
            "fused_launches": 0, "fused_segments": 0,
        }
        profile = PhaseProfile()
        hits: List[PairHits] = []
        # Same mixed lane policy as ParallelBackend._launch_fused_kernels:
        # segments at or below the threshold ride the batched brute-force
        # lane, larger ones the segmented sweepline lane. Segment sizes are
        # whole rows, so lane choice matches the unsharded launch exactly.
        for payload, stream in ((self.vertical, executors[0]), (self.horizontal, executors[1])):
            if payload is None:
                continue
            buf = _resolve_edges(payload)
            if len(buf) < 2:
                continue
            with profile.phase(PHASE_OTHER):
                device_buf = EdgeBuffer(
                    buf.vertical,
                    stream.memcpy_h2d(buf.fixed, name="edges.fixed"),
                    stream.memcpy_h2d(buf.lo, name="edges.lo"),
                    stream.memcpy_h2d(buf.hi, name="edges.hi"),
                    stream.memcpy_h2d(buf.interior, name="edges.interior"),
                    stream.memcpy_h2d(buf.poly, name="edges.poly"),
                    stream.memcpy_h2d(buf.segment, name="edges.segment")
                    if buf.segment is not None
                    else None,
                )
            seg = (
                buf.segment
                if buf.segment is not None
                else np.zeros(len(buf), dtype=_INT)
            )
            small = np.bincount(seg)[seg] <= self.threshold
            lanes = (
                ("pairs-bruteforce-fused", kernel_pairs_bruteforce_segmented,
                 "kernels_bruteforce", small),
                ("pairs-sweepline-fused", kernel_pairs_sweep_segmented,
                 "kernels_sweepline", ~small),
            )
            for name, kernel, counter, mask in lanes:
                count = int(mask.sum())
                if count < 2:
                    continue
                lane_buf = device_buf.take(np.flatnonzero(mask))
                with profile.phase(PHASE_EDGE_CHECKS):
                    stats[counter] += 1
                    stats["fused_launches"] += 1
                    stats["fused_segments"] += int(np.unique(seg[mask]).size)
                    hits.append(
                        stream.launch(
                            name, kernel, lane_buf, self.value,
                            want_width=False, items=count,
                        )
                    )
        violations = pair_hits_to_violations(
            hits, ViolationKind.SPACING, self.layer, self.value
        )
        stats.update(_counter_delta(before, device.counters()))
        return violations, stats, profile.to_dict()


@dataclasses.dataclass
class _CornerShardTask:
    """A shard of fused segmented rows for a corner-spacing rule."""

    layer: int
    value: int
    corners: Dict[str, Any]

    def execute(self):
        from .parallel import corner_hits_to_violations

        device, executors = workerpool.worker_device()
        before = device.counters()
        stats = {"fused_launches": 0, "fused_segments": 0}
        profile = PhaseProfile()
        buf = _resolve_corners(self.corners)
        if len(buf) < 2:
            return [], stats, profile.to_dict()
        stream = executors[0]
        with profile.phase(PHASE_OTHER):
            device_buf = CornerBuffer(
                stream.memcpy_h2d(buf.x, name="corners.x"),
                stream.memcpy_h2d(buf.y, name="corners.y"),
                buf.qx,
                buf.qy,
                buf.poly,
                stream.memcpy_h2d(buf.segment, name="corners.segment")
                if buf.segment is not None
                else None,
            )
        with profile.phase(PHASE_EDGE_CHECKS):
            stats["fused_launches"] += 1
            if buf.segment is not None:
                stats["fused_segments"] += int(np.unique(buf.segment).size)
            hits = stream.launch(
                "corner-pairs-fused",
                kernel_corner_pairs_segmented,
                device_buf,
                self.value,
                items=len(buf),
            )
        violations = corner_hits_to_violations(hits, self.layer, self.value)
        stats.update(_counter_delta(before, device.counters()))
        return violations, stats, profile.to_dict()


@dataclasses.dataclass
class _EnclosureShardTask:
    """A shard of all-rectangle rows for an enclosure rule."""

    via_layer: int
    metal_layer: int
    value: int
    via_rects: ArrayRef
    via_segment: ArrayRef
    metal_rects: ArrayRef
    metal_segment: ArrayRef

    def execute(self):
        from .parallel import _candidate_pairs_kernel, enclosure_margins_to_violations

        device, executors = workerpool.worker_device()
        before = device.counters()
        stats = {"fused_launches": 0, "fused_segments": 0}
        profile = PhaseProfile()
        via_rects = self.via_rects.resolve()
        via_seg = self.via_segment.resolve()
        metal_rects = self.metal_rects.resolve()
        metal_seg = self.metal_segment.resolve()
        stream = executors[0]
        with profile.phase(PHASE_OTHER):
            via_dev = stream.memcpy_h2d(via_rects, name="via.rects")
            metal_dev = (
                stream.memcpy_h2d(metal_rects, name="metal.rects")
                if len(metal_rects)
                else metal_rects
            )
            via_seg_dev = stream.memcpy_h2d(via_seg, name="via.segment")
            metal_seg_dev = (
                stream.memcpy_h2d(metal_seg, name="metal.segment")
                if len(metal_seg)
                else metal_seg
            )
        stats["fused_launches"] += 1
        stats["fused_segments"] += int(np.unique(via_seg).size)
        with profile.phase(PHASE_SWEEPLINE):
            pair_via, pair_metal = stream.launch(
                "enclosure-candidates",
                _candidate_pairs_kernel,
                via_dev,
                metal_dev,
                self.value,
                via_segment=via_seg_dev,
                metal_segment=metal_seg_dev,
                items=len(via_rects),
            )
        with profile.phase(PHASE_EDGE_CHECKS):
            margins = stream.launch(
                "enclosure-margins",
                kernel_enclosure_margins,
                via_dev, metal_dev, pair_via, pair_metal,
                items=len(pair_via),
            )
            best = stream.launch(
                "enclosure-reduce",
                reduce_enclosure_best,
                len(via_rects), pair_via, margins,
                items=len(via_rects),
            )
        violations = enclosure_margins_to_violations(
            via_rects, best, self.via_layer, self.metal_layer, self.value
        )
        stats.update(_counter_delta(before, device.counters()))
        return violations, stats, profile.to_dict()


#: Per-backend fault-injection epochs: a warm pool's workers outlive the
#: check, so installing by spec alone would carry budgets a previous check
#: consumed into the next one — unlike the cold path, whose fresh workers
#: re-arm every check. Salting the install with the backend's epoch makes
#: each check re-arm exactly once per worker, cold or warm.
_FAULT_EPOCH = itertools.count(1)


def _run_task(
    task,
    fault: Optional[str] = None,
    spec: Optional[str] = None,
    epoch: Optional[int] = None,
):
    """Pool entry point: dispatch one task in the worker process.

    ``fault`` is the parent-decided injected action ("raise"/"hang"/"die")
    executed before the task body; None on every healthy submission.
    ``spec`` arms the worker-side fault sites (shm attach, pack-store
    reads). Workers are generic and outlive checks, so the spec rides on
    every task; installation is idempotent by (spec, epoch), preserving
    budgets within a check while re-arming between checks.
    """
    faults.install(spec, token=epoch)
    if fault is not None:
        faults.act(fault)
    return task.execute()


@dataclasses.dataclass
class _Pending:
    """One submitted task plus what is needed to retry or run it inline."""

    task: Any
    rule: Rule
    result: Any  # multiprocessing AsyncResult
    attempts: int = 1


# ---------------------------------------------------------------------------
# The parent-side backend
# ---------------------------------------------------------------------------


class MultiprocessBackend:
    """Shards a compiled plan across a pool of worker processes.

    ``jobs == 1`` degrades to the in-process fused backend (exact parity —
    the honest baseline for the scaling benchmark). With a window, rules fan
    out at rule granularity only (windowed gathering has no row partition).
    """

    def __init__(
        self,
        plan: CheckPlan,
        *,
        device: Optional[Device] = None,
        window=None,
    ) -> None:
        self.plan = plan
        self.window = window
        self.options = plan.options
        self.jobs = self.options.jobs
        self.task_timeout = self.options.task_timeout
        self.max_retries = self.options.max_retries
        self.device = device if device is not None else Device()
        self._pool: Optional[workerpool.WorkerPool] = None
        self._owns_pool = not workerpool.warm_pool_enabled(self.options)
        self._pool_restarts = 0
        self._closed = False
        self._prefetched: Dict[str, _Pending] = {}
        self._inline_rules: set = set()
        self._totals: Dict[str, float] = {}
        self._arenas: List[ShmArena] = []
        self._mp_counters: Dict[str, float] = {
            "mp_rule_tasks": 0,
            "mp_shard_tasks": 0,
            "mp_shm_bytes": 0,
            "mp_mmap_bytes": 0,
            "mp_retries": 0,
            "mp_timeouts": 0,
            "mp_inline_fallbacks": 0,
            "mp_degraded": 0,
            "mp_plan_compiles": 0,
            "mp_pickle_probes": 0,
            "mp_cost_routed_inline": 0,
        }
        self._local = None
        self._fallback = None
        self._model: Optional[costmodel.CostModel] = (
            costmodel.model_for(plan.caches.store)
            if getattr(self.options, "cost_model", True)
            else None
        )
        #: Rules the cost model routed inline (distinct from `_inline_rules`,
        #: which records pickle failures and recovery fallbacks).
        self._cost_inline: set = set()
        #: Rule name -> accumulated worker compute seconds (calibration).
        self._compute_seconds: Dict[str, float] = {}
        self._cost_keys: Dict[str, str] = {}
        self._plan_payload_ref: Optional[PlanRef] = None
        #: Distinguishes this check's fault-injection installs from those of
        #: earlier checks served by the same warm workers (see _FAULT_EPOCH).
        self._fault_epoch = next(_FAULT_EPOCH)
        #: The (jobs, start_method) registry key of the shared warm pool this
        #: backend actually used, or None; Engine.close() releases every key
        #: its checks touched, not just the one its current options select.
        self.warm_pool_key: Optional[Tuple[int, Optional[str]]] = None

    # -- backend protocol ---------------------------------------------------

    def run(self, rule: Rule, profile: Optional[PhaseProfile] = None) -> List[Violation]:
        if profile is None:
            profile = PhaseProfile()
        self._closed = False
        pending = self._prefetched.pop(rule.name, None)
        if pending is not None:
            violations = self._collect(pending, profile)
            self._observe_rule_cost(rule)
            return violations
        if self._degraded:
            return self._degraded_run(rule, profile)
        if self.jobs == 1 or rule.name in self._inline_rules:
            return self._local_backend().run(rule, profile)
        if rule.name in self._cost_inline:
            return self._timed_local_run(rule, profile)
        if self.window is None and rule.kind in ROW_SHARDED_KINDS:
            return self._run_sharded(rule, profile)
        if not self._probe(rule):
            self._inline_rules.add(rule.name)
            return self._local_backend().run(rule, profile)
        if self._route_rule_inline(rule):
            return self._timed_local_run(rule, profile)
        self._mp_counters["mp_rule_tasks"] += 1
        try:
            pending = self._submit(_RuleTask(rule, self._plan_ref()), rule)
        except Exception as error:
            self._degrade(f"cannot submit to the worker pool: {error!r}")
            return self._degraded_run(rule, profile)
        violations = self._collect(pending, profile)
        self._observe_rule_cost(rule)
        return violations

    def stats(self) -> Dict[str, float]:
        merged = dict(self._totals)
        others = [b for b in (self._local, self._fallback) if b is not None]
        for backend in others:
            for key, value in backend.stats().items():
                merged[key] = merged.get(key, 0) + value
        for key, value in self._mp_counters.items():
            merged[key] = merged.get(key, 0) + value
        merged["mp_jobs"] = self.jobs
        return merged

    # -- pool lifecycle -----------------------------------------------------

    def prefetch(self) -> None:
        """Submit every rule-granular task now, ahead of the serial drive.

        Rule executions are independent pure functions of the plan (the
        dependency edges only order *results*), so workers can run rule N+5
        while the parent is still merging rule N.
        """
        if self.jobs == 1 or self._degraded:
            return
        self._closed = False
        for compiled in self.plan.compiled:
            rule = compiled.rule
            if self.window is None and rule.kind in ROW_SHARDED_KINDS:
                continue
            if rule.name in self._inline_rules or rule.name in self._cost_inline:
                continue
            if not self._probe(rule):
                self._inline_rules.add(rule.name)
                continue
            if self._route_rule_inline(rule):
                # Below break-even: run() serves it inline in the parent.
                continue
            self._mp_counters["mp_rule_tasks"] += 1
            try:
                self._prefetched[rule.name] = self._submit(
                    _RuleTask(rule, self._plan_ref()), rule
                )
            except Exception as error:
                self._mp_counters["mp_rule_tasks"] -= 1
                self._degrade(f"cannot prefetch to the worker pool: {error!r}")
                return

    def close(self) -> None:
        """Release pool + shared memory and flush counters (idempotent)."""
        self._close(persist=True)

    def _close(self, persist: bool) -> None:
        if self._closed:
            return
        self._closed = True
        self._prefetched.clear()
        # Calibrate the dispatch overhead against the live, already-warm
        # workers — measuring here (not at spawn) means cold checks never
        # block on worker boot, and the constant lands in the persisted
        # model for the next check. A pool that timed out or degraded is
        # suspect: skip it rather than risk stalling on a wedged worker.
        if (
            persist
            and self._model is not None
            and self._pool is not None
            and self.jobs > 1
            and not self._degraded
            and not self._mp_counters["mp_timeouts"]
        ):
            seconds = self._pool.dispatch_seconds(measure=True)
            if seconds:
                self._model.observe_dispatch(seconds)
        # Unlink live shared-memory arenas *before* terminating the pool:
        # a pool torn down mid-rule still references them, and terminate()
        # alone would leave the /dev/shm segments behind for good.
        for arena in list(self._arenas):
            arena.dispose()
        self._arenas.clear()
        self._teardown_pool()
        if persist:
            store = self.plan.caches.store
            if store is not None:
                store.persist_counters()
            if self._model is not None:
                self._model.save()

    def __del__(self) -> None:  # pragma: no cover - safety net
        # On the interpreter-teardown path skip counter persistence: the
        # explicit close() already flushed (or the run never had a store),
        # and half-torn-down modules make file I/O unreliable here.
        try:
            finalizing = bool(sys.is_finalizing())
        except Exception:
            finalizing = True
        try:
            self._close(persist=not finalizing)
        except Exception:
            pass

    def _teardown_pool(self, *, broken: bool = False) -> None:
        pool = self._pool
        if pool is None:
            return
        if broken:
            # Restart-ladder semantics: terminate the worker processes but
            # keep the pool object and its spooled plans — the next
            # submission respawns a generation that re-warms from the spool
            # without a reship (and in-flight PlanRefs stay valid).
            pool.rebuild()
            return
        self._pool = None
        if self._owns_pool:
            pool.close()
        elif self._mp_counters["mp_timeouts"]:
            # A check that saw timeouts may be leaving wedged workers behind
            # — a private pool terminates them in close(), but a shared pool
            # outlives this backend, so recycle its workers now. The spool
            # survives, so the next check still ships nothing.
            pool.rebuild()
        # A shared warm pool just loses this backend's reference and stays
        # alive for the next check; Engine.close() / atexit reclaims it.

    def _ensure_pool(self) -> workerpool.WorkerPool:
        if self._pool is None:
            if self._owns_pool:
                self._pool = workerpool.WorkerPool(
                    self.jobs, start_method=self.options.mp_start_method
                )
            else:
                self._pool = workerpool.get_pool(
                    self.jobs, self.options.mp_start_method
                )
                self.warm_pool_key = (self.jobs, self.options.mp_start_method)
        self._pool.ensure()
        return self._pool

    def _plan_ref(self) -> PlanRef:
        """The spooled-payload handle rule tasks carry (ships at most once).

        ``mp_plan_compiles`` counts actual payload builds: the second check
        of a deck against a warm pool finds its digest spooled and reports
        zero.
        """
        if self._plan_payload_ref is None:
            pool = self._ensure_pool()
            shippable = [r for r in self.plan.rules if self._probe(r)]
            worker_options = dataclasses.replace(
                self.options, jobs=1, mode=MODE_PARALLEL
            )
            digest = self._plan_digest(shippable, worker_options)

            def make_payload() -> bytes:
                return pickle.dumps(
                    (self.plan.layout, shippable, worker_options, self.window),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )

            path, shipped = pool.ensure_plan(digest, make_payload)
            if shipped:
                self._mp_counters["mp_plan_compiles"] += 1
            self._plan_payload_ref = PlanRef(digest=digest, path=path)
        return self._plan_payload_ref

    def _plan_digest(self, shippable: List[Rule], worker_options) -> str:
        """Content digest of everything a worker's compiled plan depends on.

        Shippable rules are identified by :func:`_rule_ship_identity`
        (pickle content hash) because they are literally part of the
        spooled payload; the rest only gate which names ship, so their
        qualname identity is enough.
        """
        caches = self.plan.caches
        layers = set()
        wildcard = False
        for rule in self.plan.rules:
            if rule.layer is None:
                wildcard = True
            else:
                layers.add(rule.layer)
            if rule.other_layer is not None:
                layers.add(rule.other_layer)
        if wildcard:
            layers.update(self.plan.layout.layers())
        geometry = tuple(
            (layer, caches.layer_digest(layer)) for layer in sorted(layers)
        )
        shippable_names = {rule.name for rule in shippable}
        return store_key(
            "mp-plan",
            self.plan.layout.name,
            self.plan.tree.top.name,
            geometry,
            tuple(
                _rule_ship_identity(rule)
                if rule.name in shippable_names
                else _rule_identity(rule)
                for rule in self.plan.rules
            ),
            tuple(rule.name for rule in shippable),
            repr(worker_options),
            repr(self.window),
        )

    # -- helpers ------------------------------------------------------------

    def _probe(self, rule: Rule) -> bool:
        """Pickle-probe one rule, memoized process-wide by rule identity.

        Repeat checks of a deck (warm pools, fix loops) skip the probe —
        ``mp_pickle_probes`` counts only actual executions and stays flat
        across re-checks.
        """
        key = _rule_identity(rule)
        cached = _PROBE_CACHE.get(key)
        if cached is None:
            cached = _rule_picklable(rule)
            _PROBE_CACHE[key] = cached
            self._mp_counters["mp_pickle_probes"] += 1
        return cached

    # -- cost-model routing ---------------------------------------------------

    def _rule_cost_key(self, rule: Rule) -> str:
        """Geometry-qualified cost key: estimates never cross layouts."""
        key = self._cost_keys.get(rule.name)
        if key is None:
            caches = self.plan.caches
            if rule.layer is None:
                geometry = tuple(
                    caches.layer_digest(layer)
                    for layer in self.plan.layout.layers()
                )
            elif rule.other_layer is not None:
                geometry = (
                    caches.layer_digest(rule.layer),
                    caches.layer_digest(rule.other_layer),
                )
            else:
                geometry = caches.layer_digest(rule.layer)
            key = store_key("rule-cost", geometry, _rule_identity(rule))
            self._cost_keys[rule.name] = key
        return key

    def _route_rule_inline(self, rule: Rule) -> bool:
        """True when the model prices this rule below pool break-even."""
        if self._model is None:
            return False
        estimate = self._model.estimate_rule(self._rule_cost_key(rule))
        if estimate is None or self._model.worth_pooling(estimate, self.jobs):
            return False
        self._cost_inline.add(rule.name)
        self._mp_counters["mp_cost_routed_inline"] += 1
        return True

    def _timed_local_run(
        self, rule: Rule, profile: PhaseProfile
    ) -> List[Violation]:
        """Run a routed-inline rule in the parent, feeding the calibration."""
        start = time.perf_counter()
        violations = self._local_backend().run(rule, profile)
        if self._model is not None:
            self._model.observe_rule(
                self._rule_cost_key(rule), time.perf_counter() - start
            )
        return violations

    def _observe_rule_cost(self, rule: Rule) -> None:
        """Fold one pooled rule's worker compute into the model."""
        seconds = self._compute_seconds.pop(rule.name, None)
        if seconds and self._model is not None:
            self._model.observe_rule(self._rule_cost_key(rule), seconds)

    def _observe_shard_cost(self, rule: Rule, weight: float) -> None:
        """Fold one sharded rule's worker compute into the per-kind rate."""
        seconds = self._compute_seconds.pop(rule.name, None)
        if seconds and self._model is not None:
            self._model.observe_kind(rule.kind.value, weight, seconds)

    def _shard_plan(
        self, rule: Rule, weight: float, num_items: int
    ) -> Optional[int]:
        """Shard count for one row-sharded rule, or None to run it inline.

        Uncalibrated (no per-kind rate yet) keeps the status-quo
        oversubscribed count — the resulting pooled run is what produces
        the first observation.
        """
        if self._model is None:
            return shard_count(num_items, self.jobs)
        estimate = self._model.estimate_kind(rule.kind.value, weight)
        if estimate is None:
            return shard_count(num_items, self.jobs)
        # A sharded fan-out issues ~jobs dispatches; bill them all.
        if not self._model.worth_pooling(estimate, self.jobs, tasks=self.jobs):
            return None
        return self._model.plan_shards(estimate, num_items, self.jobs)

    def _timed_sharded_inline(
        self, rule: Rule, weight: float, profile: PhaseProfile
    ) -> List[Violation]:
        """Run a routed-inline sharded rule locally, feeding the rate EWMA."""
        self._mp_counters["mp_cost_routed_inline"] += 1
        start = time.perf_counter()
        violations = self._local_backend().run(rule, profile)
        if self._model is not None and weight > 0:
            self._model.observe_kind(
                rule.kind.value, weight, time.perf_counter() - start
            )
        return violations

    def _local_backend(self):
        """In-process fallback/packer: fused GPU backend (or windowed)."""
        if self._local is None:
            if self.window is not None:
                from .incremental import WindowedBackend

                self._local = WindowedBackend(self.plan, self.window)
            else:
                from .parallel import ParallelBackend

                self._local = ParallelBackend(self.plan, device=self.device)
        return self._local

    def _merge_stats(self, delta: Dict[str, float]) -> None:
        for key, value in delta.items():
            self._totals[key] = self._totals.get(key, 0) + value

    # -- fault tolerance ----------------------------------------------------

    @property
    def _degraded(self) -> bool:
        return bool(self._mp_counters["mp_degraded"])

    def _degrade(self, reason: str) -> None:
        """Give up on process parallelism for the rest of this backend."""
        if not self._degraded:
            self._mp_counters["mp_degraded"] = 1
            _logger.warning(
                "multiprocess backend degraded to in-process execution: %s",
                reason,
            )
        # Pending results belong to a dead pool; their rules re-run through
        # the degraded path instead of waiting out a timeout each.
        self._prefetched.clear()
        self._teardown_pool(broken=True)

    def _degraded_run(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        """Complete a rule without the pool (canonical report regardless)."""
        with faults.suppressed():
            if self.window is not None:
                return self._local_backend().run(rule, profile)
            return self._sequential_backend().run(rule, profile)

    def _sequential_backend(self):
        if self._fallback is None:
            from .sequential import SequentialBackend

            self._fallback = SequentialBackend(self.plan)
        return self._fallback

    def _submit(self, task, rule: Rule) -> _Pending:
        """Submit one task, restarting a dead pool up to the restart budget.

        The submission also draws the parent-side injected worker fault for
        this task (``worker_raise`` / ``worker_hang`` / ``worker_die``) —
        deciding here keeps fault firing deterministic in plan order.
        """
        if self._degraded:
            raise RuntimeError("multiprocess backend already degraded")
        spec = faults.resolve_spec(self.options)
        while True:
            try:
                pool = self._ensure_pool()
                fault = None
                if not faults.is_suppressed():
                    plan = faults.active()
                    if plan is not None:
                        fault = plan.worker_fault(rule.name)
                # A shared warm pool may be multiplexed across concurrent
                # backends: submissions carry this backend's requester token
                # so the pool's fair dispatcher interleaves round-robin
                # across requests instead of letting a big shard batch
                # starve a small concurrent check. A private pool has one
                # requester by construction — direct submission.
                return _Pending(
                    task=task,
                    rule=rule,
                    result=pool.apply_async(
                        _run_task,
                        (task, fault, spec, self._fault_epoch),
                        requester=None if self._owns_pool else self._fault_epoch,
                    ),
                )
            except Exception:
                self._teardown_pool(broken=True)
                if self._pool_restarts >= MAX_POOL_RESTARTS:
                    raise
                self._pool_restarts += 1
                _logger.warning(
                    "worker pool unusable; rebuilding (%d/%d)",
                    self._pool_restarts, MAX_POOL_RESTARTS,
                )

    def _collect(self, pending: _Pending, profile: PhaseProfile) -> List[Violation]:
        """Await one task, retrying with backoff; inline after the budget."""
        while True:
            if self._degraded:
                # The pool died under another task; this result will never
                # arrive — don't wait out a timeout for it.
                return self._run_inline(pending, profile)
            try:
                violations, stats_delta, profile_dict = pending.result.get(
                    self.task_timeout
                )
            except multiprocessing.TimeoutError:
                # Hung worker — or a worker that died and took the task
                # with it (the pool repopulates the process, but the result
                # is lost; the timeout is what detects that).
                self._mp_counters["mp_timeouts"] += 1
                _logger.warning(
                    "task for rule %r timed out after %.1fs (attempt %d)",
                    pending.rule.name, self.task_timeout, pending.attempts,
                )
            except Exception as error:
                _logger.warning(
                    "task for rule %r failed in the worker (attempt %d): %r",
                    pending.rule.name, pending.attempts, error,
                )
            else:
                self._merge_stats(stats_delta)
                profile.add_dict(profile_dict)
                # Worker compute seconds feed the cost-model calibration.
                self._compute_seconds[pending.rule.name] = self._compute_seconds.get(
                    pending.rule.name, 0.0
                ) + sum(profile_dict.values())
                return violations
            if pending.attempts > self.max_retries:
                return self._run_inline(pending, profile)
            time.sleep(
                min(RETRY_BACKOFF * (2 ** (pending.attempts - 1)), RETRY_BACKOFF_CAP)
            )
            try:
                retry = self._submit(pending.task, pending.rule)
            except Exception as error:
                self._degrade(f"cannot resubmit to the worker pool: {error!r}")
                return self._run_inline(pending, profile)
            pending.result = retry.result
            pending.attempts += 1
            self._mp_counters["mp_retries"] += 1

    def _run_inline(self, pending: _Pending, profile: PhaseProfile) -> List[Violation]:
        """Last resort for one task: execute it in this process.

        Runs under fault suppression — recovery must never be re-faulted —
        and marks the rule inline so its later tasks skip the pool.
        """
        self._mp_counters["mp_inline_fallbacks"] += 1
        self._inline_rules.add(pending.rule.name)
        with faults.suppressed():
            if isinstance(pending.task, _RuleTask):
                return self._local_backend().run(pending.rule, profile)
            violations, stats_delta, profile_dict = pending.task.execute()
        self._merge_stats(stats_delta)
        profile.add_dict(profile_dict)
        return violations

    def _execute_shard_locally(self, task, profile: PhaseProfile) -> List[Violation]:
        """Run one shard task in the parent (no pool round trip).

        Shard tasks are pure functions of their (sealed) buffers, so a
        failed first attempt — e.g. an injected attach fault firing in
        this process — can safely re-execute under suppression.
        """
        try:
            violations, stats_delta, profile_dict = task.execute()
        except Exception:
            with faults.suppressed():
                violations, stats_delta, profile_dict = task.execute()
        self._merge_stats(stats_delta)
        profile.add_dict(profile_dict)
        return violations

    # -- arena bookkeeping ---------------------------------------------------

    def _new_arena(self) -> ShmArena:
        arena = ShmArena()
        self._arenas.append(arena)
        return arena

    def _release_arena(self, arena: ShmArena) -> None:
        arena.dispose()
        try:
            self._arenas.remove(arena)
        except ValueError:  # pragma: no cover - already released by close()
            pass

    def _gather_shards(
        self, rule: Rule, arena: ShmArena, tasks: List[Any], profile: PhaseProfile
    ) -> List[Violation]:
        """Seal, fan out, and merge one rule's shard tasks (in order)."""
        if not tasks:
            self._release_arena(arena)
            return []
        arena.seal()
        if len(tasks) == 1:
            # A degenerate single-shard plan (row filtering, tiny layouts)
            # would pay a full pool round trip for zero parallelism — run
            # the task right here instead. ``mp_shard_tasks`` counts pool
            # traffic only, so it stays honest.
            try:
                return self._execute_shard_locally(tasks[0], profile)
            finally:
                self._release_arena(arena)
        self._mp_counters["mp_shard_tasks"] += len(tasks)
        self._mp_counters["mp_shm_bytes"] += arena.nbytes
        violations: List[Violation] = []
        try:
            pending: List[_Pending] = []
            for task in tasks:
                try:
                    pending.append(self._submit(task, rule))
                except Exception as error:
                    self._degrade(f"cannot submit shard: {error!r}")
                    violations.extend(
                        self._run_inline(
                            _Pending(task=task, rule=rule, result=None), profile
                        )
                    )
            for item in pending:
                violations.extend(self._collect(item, profile))
        finally:
            self._release_arena(arena)
        return violations

    # -- row sharding -------------------------------------------------------

    def _run_sharded(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        if rule.kind is RuleKind.SPACING:
            return self._shard_spacing(rule, profile)
        if rule.kind is RuleKind.CORNER_SPACING:
            return self._shard_corners(rule, profile)
        return self._shard_enclosure(rule, profile)

    def _shard_spacing(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        local = self._local_backend()
        items = local._cached_items(rule.layer, profile)
        member_rows, sig = local._cached_partition(
            rule.layer, [it.mbr for it in items], rule.value, profile
        )
        if len(member_rows) < 2:
            return local.run(rule, profile)
        host_start = time.perf_counter()
        fused = local._cached_fused_pair(
            rule.layer, sig, member_rows, items, rule.value
        )
        self.device.record_host("pack-fused", time.perf_counter() - host_start)
        if fused.num_edges < 2:
            return []
        num_rows = len(member_rows)
        weight = float(fused.num_edges)
        num_shards = self._shard_plan(rule, weight, num_rows)
        if num_shards is None:
            return self._timed_sharded_inline(rule, weight, profile)
        weights = np.zeros(num_rows, dtype=_INT)
        for buf in (fused.vertical, fused.horizontal):
            if len(buf):
                seg = self._segments(buf)
                weights += np.bincount(seg, minlength=num_rows)
        shards = greedy_balanced_shards(weights.tolist(), num_shards)
        if len(shards) < 2:
            return local.run(rule, profile)
        arena = self._new_arena()
        tasks: List[_PairShardTask] = []
        for rows in shards:
            rowset = np.asarray(rows, dtype=_INT)
            payloads = []
            for buf in (fused.vertical, fused.horizontal):
                sub = None
                if len(buf):
                    index = np.flatnonzero(np.isin(self._segments(buf), rowset))
                    if len(index) >= 2:
                        refs = _edges_file_refs(buf)
                        if refs is not None:
                            # Store-served buffer: ship memmap descriptors
                            # plus this shard's row ids — workers map the
                            # same pack-store pages, zero bytes copied.
                            refs["rows"] = rowset.tolist()
                            sub = refs
                            self._mp_counters["mp_mmap_bytes"] += buf.nbytes
                        else:
                            sub = _share_edges(arena, buf.take(index))
                payloads.append(sub)
            if payloads[0] is None and payloads[1] is None:
                continue
            tasks.append(
                _PairShardTask(
                    layer=rule.layer,
                    value=rule.value,
                    threshold=self.options.brute_force_threshold,
                    vertical=payloads[0],
                    horizontal=payloads[1],
                )
            )
        violations = self._gather_shards(rule, arena, tasks, profile)
        self._observe_shard_cost(rule, weight)
        return violations

    def _shard_corners(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        local = self._local_backend()
        items = local._cached_items(rule.layer, profile)
        member_rows, sig = local._cached_partition(
            rule.layer, [it.mbr for it in items], rule.value, profile
        )
        if len(member_rows) < 2:
            return local.run(rule, profile)
        host_start = time.perf_counter()
        fused = local._cached_fused_corners(
            rule.layer, sig, member_rows, items, rule.value
        )
        self.device.record_host("pack-corners-fused", time.perf_counter() - host_start)
        if len(fused) < 2:
            return []
        weight = float(len(fused))
        num_shards = self._shard_plan(rule, weight, len(member_rows))
        if num_shards is None:
            return self._timed_sharded_inline(rule, weight, profile)
        seg = self._segments(fused)
        weights = np.bincount(seg, minlength=len(member_rows))
        shards = greedy_balanced_shards(weights.tolist(), num_shards)
        if len(shards) < 2:
            return local.run(rule, profile)
        arena = self._new_arena()
        tasks: List[_CornerShardTask] = []
        for rows in shards:
            rowset = np.asarray(rows, dtype=_INT)
            index = np.flatnonzero(np.isin(seg, rowset))
            if len(index) < 2:
                continue
            refs = _corners_file_refs(fused)
            if refs is not None:
                refs["rows"] = rowset.tolist()
                payload = refs
                self._mp_counters["mp_mmap_bytes"] += sum(
                    getattr(fused, name).nbytes
                    for name in ("x", "y", "qx", "qy", "poly", "segment")
                )
            else:
                payload = _share_corners(arena, fused.take(index))
            tasks.append(
                _CornerShardTask(
                    layer=rule.layer,
                    value=rule.value,
                    corners=payload,
                )
            )
        violations = self._gather_shards(rule, arena, tasks, profile)
        self._observe_shard_cost(rule, weight)
        return violations

    def _shard_enclosure(self, rule: Rule, profile: PhaseProfile) -> List[Violation]:
        local = self._local_backend()
        via_layer, metal_layer, value = rule.layer, rule.other_layer, rule.value
        via_items = local._cached_items(via_layer, profile)
        metal_items = local._cached_items(metal_layer, profile)
        if not via_items:
            return []
        combined = via_items + metal_items
        member_rows, sig = local._cached_partition(
            (via_layer, metal_layer), [it.mbr for it in combined], value, profile
        )
        num_vias = len(via_items)
        host_start = time.perf_counter()
        rect_rows = local._cached_rect_rows(
            via_layer, metal_layer, sig, member_rows, combined, num_vias, value
        )
        self.device.record_host("pack-rects-fused", time.perf_counter() - host_start)
        rect_ids = [
            index
            for index, (via_buf, metal_buf) in enumerate(rect_rows)
            if len(via_buf) and via_buf.all_rect and metal_buf.all_rect
        ]
        if len(rect_ids) < 2:
            return local.run(rule, profile)
        weights = [
            len(rect_rows[i][0]) + len(rect_rows[i][1]) for i in rect_ids
        ]
        weight = float(sum(weights))
        # Route before anything executes: an inline decision must cover the
        # whole rule (non-rectangle rows included) in one local run.
        num_shards = self._shard_plan(rule, weight, len(rect_ids))
        if num_shards is None:
            return self._timed_sharded_inline(rule, weight, profile)
        # Rectilinear (non-rectangle) rows keep the exact host fallback, in
        # the parent — identical to the fused in-process path.
        violations: List[Violation] = []
        for index, (via_buf, metal_buf) in enumerate(rect_rows):
            if len(via_buf) == 0 or index in rect_ids:
                continue
            members = member_rows[index]
            vias = local._flatten_items(
                [combined[m] for m in members if m < num_vias], via_layer
            )
            metals = local._flatten_items(
                [combined[m] for m in members if m >= num_vias], metal_layer
            )
            violations.extend(
                local._enclosure_row(
                    vias, metals, via_layer, metal_layer, value,
                    local._stream(index), profile,
                )
            )
        shards = greedy_balanced_shards(weights, num_shards)
        arena = self._new_arena()
        tasks: List[_EnclosureShardTask] = []
        for shard in shards:
            via_parts, via_segs, metal_parts, metal_segs = [], [], [], []
            for position in shard:
                row_id = rect_ids[position]
                via_buf, metal_buf = rect_rows[row_id]
                via_parts.append(via_buf.rects)
                via_segs.append(np.full(len(via_buf), row_id, dtype=_INT))
                if len(metal_buf):
                    metal_parts.append(metal_buf.rects)
                    metal_segs.append(np.full(len(metal_buf), row_id, dtype=_INT))
            tasks.append(
                _EnclosureShardTask(
                    via_layer=via_layer,
                    metal_layer=metal_layer,
                    value=value,
                    via_rects=arena.stage(np.concatenate(via_parts, axis=0)),
                    via_segment=arena.stage(np.concatenate(via_segs)),
                    metal_rects=arena.stage(
                        np.concatenate(metal_parts, axis=0)
                        if metal_parts
                        else np.zeros((0, 4), dtype=_INT)
                    ),
                    metal_segment=arena.stage(
                        np.concatenate(metal_segs)
                        if metal_segs
                        else np.zeros(0, dtype=_INT)
                    ),
                )
            )
        violations.extend(self._gather_shards(rule, arena, tasks, profile))
        self._observe_shard_cost(rule, weight)
        return violations

    @staticmethod
    def _segments(buf) -> np.ndarray:
        return (
            buf.segment
            if buf.segment is not None
            else np.zeros(len(buf), dtype=_INT)
        )
