"""Exception hierarchy for the repro (OpenDRC reproduction) package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (non-rectilinear polygon, degenerate edge, ...)."""


class GdsiiError(ReproError):
    """Malformed GDSII stream data or an unsupported record."""


class LayoutError(ReproError):
    """Inconsistent layout database (missing cell, reference cycle, ...)."""


class RuleError(ReproError):
    """Ill-formed design rule (missing predicate, bad layer, ...)."""


class DeviceError(ReproError):
    """Misuse of the simulated GPU device (bad stream, freed buffer, ...)."""
