"""Violation model shared by every checker in the repository.

All five checkers (OpenDRC sequential/parallel, the KLayout-like baselines,
and the X-Check reimplementation) report violations in this one vocabulary so
that results are directly set-comparable — the cross-validation tests rely
on exact equality of violation sets.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..geometry import Rect


class ViolationKind(enum.Enum):
    """What a violation is an instance of."""

    WIDTH = "width"
    SPACING = "spacing"
    ENCLOSURE = "enclosure"
    AREA = "area"
    SHAPE = "shape"
    PREDICATE = "predicate"
    CORNER = "corner"
    OVERLAP = "overlap"
    COLOR = "color"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One design-rule violation.

    ``region`` is the canonical marker geometry: the strip between the two
    offending edges for distance rules, the polygon MBR for area/shape/
    predicate rules. ``measured``/``required`` carry the failing quantity
    (distance in dbu, or area in dbu^2).
    """

    kind: ViolationKind
    layer: int
    region: Rect
    measured: int
    required: int
    other_layer: Optional[int] = None
    #: Set by waiver application (:func:`repro.core.markers.apply_waivers`).
    #: Excluded from equality/hash/ordering so a waived violation is still
    #: the *same* violation — splices, diffs, and cross-backend set
    #: comparisons are oblivious to waiver state by construction.
    waived: bool = dataclasses.field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.region.is_empty:
            raise ValueError("violation region must be non-empty")

    @property
    def deficit(self) -> int:
        """How far below the requirement the measurement fell."""
        return self.required - self.measured

    def waive(self) -> "Violation":
        """A copy marked waived (retained in reports, never blocking)."""
        return dataclasses.replace(self, waived=True)

    def translated(self, dx: int, dy: int) -> "Violation":
        return dataclasses.replace(self, region=self.region.translated(dx, dy))

    def transformed(self, transform) -> "Violation":
        return dataclasses.replace(self, region=transform.apply_rect(self.region))

    def __str__(self) -> str:
        target = f"L{self.layer}"
        if self.other_layer is not None:
            target += f"/L{self.other_layer}"
        return (
            f"{self.kind.value} on {target} at {self.region!r}: "
            f"{self.measured} < {self.required}"
        )


def violation_set(violations: Sequence[Violation]) -> FrozenSet[Violation]:
    """Deduplicated, order-free view used for cross-checker comparison."""
    return frozenset(violations)


def violation_sort_key(v: Violation):
    """Canonical total order over violations.

    The key covers every field, so two deduplicated violation lists are
    equal as *lists* exactly when they are equal as sets — backend
    equivalence tests compare ``CheckResult.violations`` directly instead
    of building multisets.
    """
    return (
        v.layer,
        v.kind.value,
        v.region,
        -1 if v.other_layer is None else v.other_layer,
        v.measured,
        v.required,
    )


def sort_violations(violations: Sequence[Violation]) -> List[Violation]:
    """Canonical report order (see :func:`violation_sort_key`)."""
    return sorted(violations, key=violation_sort_key)


# ---------------------------------------------------------------------------
# Flat per-kind check registry
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FlatCheck:
    """Flat (pre-gathered geometry) check procedure of one rule kind.

    ``run(rule, layout, gather)`` receives the rule, the layout (for
    all-layer rules), and a *gather* callable with the signature
    ``gather(layer, margin) -> List[Polygon]`` plus ``gather.rect(layer,
    rect)`` and ``gather.window`` attributes, and returns the violations of
    the gathered sub-population. This is the windowed backend's executable
    form of a rule kind; the hierarchical backends attach their own
    strategies to the same kind in :mod:`repro.core.plan`.
    """

    kind: str
    run: Callable


class CheckRegistry:
    """Kind-indexed registry of check procedures.

    Keys are :class:`~repro.core.rules.RuleKind` values (their ``.value``
    strings, so this module needs no import of the rule DSL). This registry
    plus the strategy table in :mod:`repro.core.plan` replace the three
    per-checker dispatch tables the sequential, parallel, and incremental
    paths used to maintain independently.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, FlatCheck] = {}

    @staticmethod
    def _key(kind) -> str:
        return getattr(kind, "value", kind)

    def register(self, kind, run: Callable) -> None:
        key = self._key(kind)
        if key in self._entries:
            raise ValueError(f"check for kind {key!r} already registered")
        self._entries[key] = FlatCheck(key, run)

    def get(self, kind) -> FlatCheck:
        _ensure_default_checks()
        try:
            return self._entries[self._key(kind)]
        except KeyError:
            raise NotImplementedError(
                f"no flat check registered for rule kind {self._key(kind)!r}"
            ) from None

    def __contains__(self, kind) -> bool:
        _ensure_default_checks()
        return self._key(kind) in self._entries

    def kinds(self) -> List[str]:
        _ensure_default_checks()
        return sorted(self._entries)


#: The flat checks every windowed/flat execution path dispatches through.
FLAT_CHECKS = CheckRegistry()


def _layers_of(rule, layout) -> List[int]:
    return [rule.layer] if rule.layer is not None else layout.layers()


def _flat_width(rule, layout, gather):
    from .width import check_width

    return check_width(gather(rule.layer, 0), rule.layer, rule.value)


def _flat_area(rule, layout, gather):
    from .area import check_area

    return check_area(gather(rule.layer, 0), rule.layer, rule.value)


def _flat_spacing(rule, layout, gather):
    from .spacing import check_spacing

    return check_spacing(gather(rule.layer, rule.value), rule.layer, rule.value)


def _flat_corner_spacing(rule, layout, gather):
    from .corner import check_corner_spacing

    return check_corner_spacing(
        gather(rule.layer, rule.value), rule.layer, rule.value
    )


def _flat_enclosure(rule, layout, gather):
    from .enclosure import check_enclosure

    return check_enclosure(
        gather(rule.layer, rule.value),
        gather(rule.other_layer, rule.value),
        rule.layer,
        rule.other_layer,
        rule.value,
    )


def _flat_min_overlap(rule, layout, gather):
    from ..geometry import union_all
    from .overlap import check_min_overlap

    tops = gather(rule.layer, 0)
    # Base partners only matter where they intersect a gathered top polygon,
    # which can extend beyond the window: gather the base layer over the
    # union of the window and every gathered top MBR.
    reach = union_all([gather.window] + [p.mbr for p in tops])
    bases = gather.rect(rule.other_layer, reach)
    return check_min_overlap(tops, bases, rule.layer, rule.other_layer, rule.value)


def _flat_rectilinear(rule, layout, gather):
    from .rectilinear import check_rectilinear

    out: List[Violation] = []
    for layer in _layers_of(rule, layout):
        out.extend(check_rectilinear(gather(layer, 0), layer))
    return out


def _flat_ensures(rule, layout, gather):
    from .ensure import check_ensures

    out: List[Violation] = []
    for layer in _layers_of(rule, layout):
        out.extend(check_ensures(gather(layer, 0), layer, rule.predicate))
    return out


def _flat_coloring(rule, layout, gather):
    """Windowed coloring via conflict-component closure.

    Coloring is a global graph property, but conflict edges are shorter
    than the rule distance, so growing the gather window by the rule value
    until no new polygon appears captures *complete* conflict components —
    on that closed sub-population the 2-coloring verdict (and every odd-
    cycle marker overlapping the original window) matches the full check.
    """
    from .coloring import check_two_colorable

    window = gather.window.inflated(rule.value)
    while True:
        polygons = gather.rect(rule.layer, window)
        grown = window
        for p in polygons:
            grown = grown.union(p.mbr.inflated(rule.value))
        if grown == window:
            break
        window = grown
    polygons.sort(key=lambda p: (p.mbr, p.canonical_vertices()))
    return check_two_colorable(polygons, rule.layer, rule.value)


_DEFAULTS_REGISTERED = False


def _ensure_default_checks() -> None:
    global _DEFAULTS_REGISTERED
    if _DEFAULTS_REGISTERED:
        return
    _DEFAULTS_REGISTERED = True
    FLAT_CHECKS.register("width", _flat_width)
    FLAT_CHECKS.register("area", _flat_area)
    FLAT_CHECKS.register("spacing", _flat_spacing)
    FLAT_CHECKS.register("corner_spacing", _flat_corner_spacing)
    FLAT_CHECKS.register("enclosure", _flat_enclosure)
    FLAT_CHECKS.register("min_overlap", _flat_min_overlap)
    FLAT_CHECKS.register("rectilinear", _flat_rectilinear)
    FLAT_CHECKS.register("ensures", _flat_ensures)
    FLAT_CHECKS.register("coloring", _flat_coloring)
