"""Violation model shared by every checker in the repository.

All five checkers (OpenDRC sequential/parallel, the KLayout-like baselines,
and the X-Check reimplementation) report violations in this one vocabulary so
that results are directly set-comparable — the cross-validation tests rely
on exact equality of violation sets.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, List, Optional, Sequence

from ..geometry import Rect


class ViolationKind(enum.Enum):
    """What a violation is an instance of."""

    WIDTH = "width"
    SPACING = "spacing"
    ENCLOSURE = "enclosure"
    AREA = "area"
    SHAPE = "shape"
    PREDICATE = "predicate"
    CORNER = "corner"
    OVERLAP = "overlap"
    COLOR = "color"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One design-rule violation.

    ``region`` is the canonical marker geometry: the strip between the two
    offending edges for distance rules, the polygon MBR for area/shape/
    predicate rules. ``measured``/``required`` carry the failing quantity
    (distance in dbu, or area in dbu^2).
    """

    kind: ViolationKind
    layer: int
    region: Rect
    measured: int
    required: int
    other_layer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.region.is_empty:
            raise ValueError("violation region must be non-empty")

    @property
    def deficit(self) -> int:
        """How far below the requirement the measurement fell."""
        return self.required - self.measured

    def translated(self, dx: int, dy: int) -> "Violation":
        return dataclasses.replace(self, region=self.region.translated(dx, dy))

    def transformed(self, transform) -> "Violation":
        return dataclasses.replace(self, region=transform.apply_rect(self.region))

    def __str__(self) -> str:
        target = f"L{self.layer}"
        if self.other_layer is not None:
            target += f"/L{self.other_layer}"
        return (
            f"{self.kind.value} on {target} at {self.region!r}: "
            f"{self.measured} < {self.required}"
        )


def violation_set(violations: Sequence[Violation]) -> FrozenSet[Violation]:
    """Deduplicated, order-free view used for cross-checker comparison."""
    return frozenset(violations)


def sort_violations(violations: Sequence[Violation]) -> List[Violation]:
    """Stable, human-friendly report order."""
    return sorted(
        violations,
        key=lambda v: (v.layer, v.kind.value, v.region, v.measured),
    )
