"""Edge-pair primitives behind all distance rules (paper §IV-D).

Every distance rule reduces to classifying pairs of parallel edges by which
sides of them are polygon interior:

* **width** pair — the interiors face each other (the strip between the
  edges is inside the polygon): both ``e1.faces(e2)`` and ``e2.faces(e1)``;
* **spacing** pair — the exteriors face each other (the strip between the
  edges is outside both polygons): neither faces the other, with a strictly
  positive gap. A zero gap means the shapes abut, which this engine (like
  merged-region checkers) treats as connected rather than violating.

Both classifications additionally require a positive common projection; pure
corner-to-corner proximity is out of scope for the reproduced rule set (the
paper's roadmap defers "general geometric shapes").
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..geometry import Edge, Polygon, Rect


def is_width_pair(e1: Edge, e2: Edge) -> bool:
    """True if the strip between two parallel edges is polygon interior."""
    if e1.orientation is not e2.orientation:
        return False
    if e1.projection_overlap(e2) <= 0:
        return False
    return e1.faces(e2) and e2.faces(e1)


def is_spacing_pair(e1: Edge, e2: Edge) -> bool:
    """True if the strip between two parallel edges is exterior to both."""
    if e1.orientation is not e2.orientation:
        return False
    if e1.projection_overlap(e2) <= 0:
        return False
    if e1.separation(e2) == 0:
        return False  # collinear edges: abutting shapes, treated as connected
    return not e1.faces(e2) and not e2.faces(e1)


def width_violation_regions(polygon: Polygon, min_width: int) -> List[Tuple[Rect, int]]:
    """All interior strips of ``polygon`` narrower than ``min_width``.

    Returns ``(region, measured_distance)`` per violating edge pair.
    """
    return _facing_pairs(polygon.edges(), polygon.edges(), min_width, want_width=True, skip=True)


def spacing_violation_regions(
    edges_a: Sequence[Edge],
    edges_b: Sequence[Edge],
    min_space: int,
    *,
    same_object: bool = False,
) -> List[Tuple[Rect, int]]:
    """Exterior strips between two edge sets narrower than ``min_space``.

    With ``same_object=True`` both sequences are the same polygon's edges and
    only unordered pairs are inspected (notch detection).
    """
    return _facing_pairs(edges_a, edges_b, min_space, want_width=False, skip=same_object)


def _edge_row(edge: Edge) -> Tuple[bool, int, int, int, int]:
    """(is_horizontal, fixed, lo, hi, interior-sign) of one edge.

    The interior sign is the +/-1 component of the interior normal along
    the perpendicular axis — the only classification input the pair loops
    need. Precomputing it sidesteps per-pair property calls.
    """
    x1, y1 = edge.start
    x2, y2 = edge.end
    if y1 == y2:  # horizontal; EAST travel has interior south (-1)
        sign = -1 if x2 > x1 else 1
        return (True, y1, min(x1, x2), max(x1, x2), sign)
    sign = 1 if y2 > y1 else -1  # vertical; NORTH travel has interior east
    return (False, x1, min(y1, y2), max(y1, y2), sign)


def _facing_pairs(
    edges_a: Sequence[Edge],
    edges_b: Sequence[Edge],
    threshold: int,
    *,
    want_width: bool,
    skip: bool,
) -> List[Tuple[Rect, int]]:
    rows_a = [_edge_row(e) for e in edges_a]
    rows_b = rows_a if skip else [_edge_row(e) for e in edges_b]
    # Width pairs need the near edge's interior normal pointing at the far
    # edge (sign +1 toward greater coordinates); spacing pairs the opposite.
    near_sign = 1 if want_width else -1
    results: List[Tuple[Rect, int]] = []
    for i, (h1, f1, lo1, hi1, s1) in enumerate(rows_a):
        start = i + 1 if skip else 0
        for h2, f2, lo2, hi2, s2 in rows_b[start:]:
            if h1 != h2:
                continue
            delta = f2 - f1
            if delta >= 0:
                distance = delta
                sign_near, sign_far = s1, s2
            else:
                distance = -delta
                sign_near, sign_far = s2, s1
            if distance == 0 or distance >= threshold:
                continue
            if sign_near != near_sign or sign_far != -near_sign:
                continue
            lo = lo1 if lo1 > lo2 else lo2
            hi = hi1 if hi1 < hi2 else hi2
            if hi <= lo:
                continue
            c1, c2 = (f1, f2) if f1 < f2 else (f2, f1)
            region = Rect(lo, c1, hi, c2) if h1 else Rect(c1, lo, c2, hi)
            results.append((region, distance))
    return results


def polygon_spacing_violations(
    p: Polygon, q: Polygon, min_space: int
) -> List[Tuple[Rect, int]]:
    """Spacing violations between two distinct polygons."""
    return spacing_violation_regions(p.edges(), q.edges(), min_space)


def polygon_notch_violations(p: Polygon, min_space: int) -> List[Tuple[Rect, int]]:
    """Spacing violations of a polygon against itself (notches)."""
    return spacing_violation_regions(p.edges(), p.edges(), min_space, same_object=True)


def iter_parallel_pairs(
    edges_a: Sequence[Edge], edges_b: Sequence[Edge]
) -> Iterator[Tuple[Edge, Edge]]:
    """All parallel edge pairs with a positive common projection."""
    for e1 in edges_a:
        for e2 in edges_b:
            if e1.orientation is e2.orientation and e1.projection_overlap(e2) > 0:
                yield e1, e2
