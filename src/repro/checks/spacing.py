"""Minimum spacing check (inter-polygon, intra-layer distance rule).

Candidate pairs come from the MBR machinery (sweepline in the sequential
engine, row buffers in the parallel engine); this module holds the shared
edge-level decision so every checker flags exactly the same regions.
Notches (a polygon too close to itself across an exterior gap) are included,
matching common space-rule semantics.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..geometry import Polygon
from ..spatial.sweepline import iter_overlapping_pairs
from .base import Violation, ViolationKind
from .edges import polygon_notch_violations, polygon_spacing_violations


def spacing_pair_violations(
    p: Polygon, q: Polygon, layer: int, min_space: int
) -> List[Violation]:
    """Spacing violations between two distinct polygons."""
    return [
        _make(layer, region, distance, min_space)
        for region, distance in polygon_spacing_violations(p, q, min_space)
    ]


def spacing_notch_violations(polygon: Polygon, layer: int, min_space: int) -> List[Violation]:
    """Spacing violations of a polygon against itself."""
    return [
        _make(layer, region, distance, min_space)
        for region, distance in polygon_notch_violations(polygon, min_space)
    ]


def check_spacing(
    polygons: Sequence[Polygon], layer: int, min_space: int
) -> List[Violation]:
    """Spacing check over a flat polygon collection.

    Uses the MBR sweepline (inflated by the rule margin) to restrict the
    quadratic edge work to nearby pairs; this is the reference semantics the
    hierarchical and GPU paths must reproduce.
    """
    violations: List[Violation] = []
    for polygon in polygons:
        violations.extend(spacing_notch_violations(polygon, layer, min_space))
    inflated = [p.mbr.inflated(_candidate_margin(min_space)) for p in polygons]
    for i, j in iter_overlapping_pairs(inflated):
        violations.extend(spacing_pair_violations(polygons[i], polygons[j], layer, min_space))
    return violations


def check_spacing_pairs(
    pairs: Iterable[Tuple[Polygon, Polygon]], layer: int, min_space: int
) -> List[Violation]:
    """Spacing check over explicit candidate pairs (hierarchical engine path)."""
    violations: List[Violation] = []
    for p, q in pairs:
        violations.extend(spacing_pair_violations(p, q, layer, min_space))
    return violations


def _candidate_margin(min_space: int) -> int:
    """Per-MBR inflation making closed MBR overlap a complete candidate filter."""
    return (min_space + 1) // 2


def _make(layer: int, region, distance: int, min_space: int) -> Violation:
    return Violation(
        kind=ViolationKind.SPACING,
        layer=layer,
        region=region,
        measured=distance,
        required=min_space,
    )


class SpacingProcedures:
    """Edge-based exterior spacing (paper §IV-D check procedures).

    The pairwise-procedure objects the hierarchical sweeps call; registered
    per rule kind in :mod:`repro.core.plan`.
    """

    def self_violations(self, polygon: Polygon, layer: int, value: int):
        return spacing_notch_violations(polygon, layer, value)

    def cross_violations(self, pa: Polygon, pb: Polygon, layer: int, value: int):
        return spacing_pair_violations(pa, pb, layer, value)

    def flat_check(self, polygons, layer: int, value: int):
        return check_spacing(polygons, layer, value)
