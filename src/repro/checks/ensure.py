"""User-defined predicate rule (paper Listing 1, rule 3: ``ensures()``).

``ensures`` takes any callable over a polygon; a falsy result flags the
polygon. This is the extensibility hook the paper's general programming
interface exposes to researchers.
"""

from __future__ import annotations

from typing import Callable, List

from ..geometry import Polygon
from .base import Violation, ViolationKind


def check_ensures(
    polygons, layer: int, predicate: Callable[[Polygon], bool]
) -> List[Violation]:
    """Flag every polygon for which ``predicate`` returns falsy."""
    violations: List[Violation] = []
    for polygon in polygons:
        if not predicate(polygon):
            violations.append(
                Violation(
                    kind=ViolationKind.PREDICATE,
                    layer=layer,
                    region=polygon.mbr,
                    measured=0,
                    required=1,
                )
            )
    return violations
