"""Minimum overlapping-area check (inter-layer).

The paper's introduction lists "minimum overlapping area constraints"
between layers among the modern rules DRC must handle. The rule here:
every polygon on layer A must overlap the union of layer B's polygons with
at least ``min_area`` of area (e.g. a via must land on enough metal, a
contact on enough diffusion).

The overlap area is computed exactly with the boolean region substrate:
``area(A_polygon AND union(candidate B polygons))``. Candidates come from a
bipartite MBR sweep — only B polygons overlapping the A polygon's MBR can
contribute.
"""

from __future__ import annotations

from typing import List, Sequence

from ..geometry import Polygon
from ..geometry.booleans import intersect_regions, union_polygons
from ..spatial.sweepline import iter_bipartite_overlaps
from .base import Violation, ViolationKind


def overlap_area(polygon: Polygon, others: Sequence[Polygon]) -> int:
    """Exact area of ``polygon`` AND the union of ``others``."""
    if not others:
        return 0
    return intersect_regions(
        union_polygons([polygon]), union_polygons(others)
    ).area


class OverlapProcedures:
    """Minimum overlapping area between layers (paper §I motivation).

    The cross-layer procedure object the hierarchical pending-object
    resolution calls; registered per rule kind in :mod:`repro.core.plan`.
    """

    def satisfied(self, polygon: Polygon, bases, value: int) -> bool:
        return overlap_area(polygon, bases) >= value

    def violations(self, polygon, bases, top_layer, base_layer, value):
        area = overlap_area(polygon, bases)
        if area >= value:
            return []
        return [
            Violation(
                kind=ViolationKind.OVERLAP,
                layer=top_layer,
                other_layer=base_layer,
                region=polygon.mbr,
                measured=area,
                required=value,
            )
        ]


def check_min_overlap(
    top_polys: Sequence[Polygon],
    base_polys: Sequence[Polygon],
    top_layer: int,
    base_layer: int,
    min_area: int,
) -> List[Violation]:
    """Flag every top-layer polygon overlapping base geometry by < min_area."""
    candidates: List[List[Polygon]] = [[] for _ in top_polys]
    top_rects = [p.mbr for p in top_polys]
    base_rects = [p.mbr for p in base_polys]
    for i, j in iter_bipartite_overlaps(top_rects, base_rects):
        candidates[i].append(base_polys[j])

    violations: List[Violation] = []
    for polygon, cands in zip(top_polys, candidates):
        area = overlap_area(polygon, cands)
        if area >= min_area:
            continue
        violations.append(
            Violation(
                kind=ViolationKind.OVERLAP,
                layer=top_layer,
                other_layer=base_layer,
                region=polygon.mbr,
                measured=area,
                required=min_area,
            )
        )
    return violations
