"""Shape rule: all polygons must be rectilinear (paper Listing 1, rule 1)."""

from __future__ import annotations

from typing import List

from ..geometry import Polygon
from .base import Violation, ViolationKind


def check_polygon_rectilinear(polygon: Polygon, layer: int) -> List[Violation]:
    """Flag a polygon with any non-axis-parallel edge."""
    if polygon.is_rectilinear:
        return []
    return [
        Violation(
            kind=ViolationKind.SHAPE,
            layer=layer,
            region=polygon.mbr,
            measured=0,
            required=1,
        )
    ]


def check_rectilinear(polygons, layer: int) -> List[Violation]:
    """Rectilinearity check over a polygon collection."""
    violations: List[Violation] = []
    for polygon in polygons:
        violations.extend(check_polygon_rectilinear(polygon, layer))
    return violations
