"""Multi-patterning coloring check (paper §II: "multi-color design rules
for multi-patterning lithography").

Double-patterning (LELE) prints one layer with two masks; shapes closer
than the same-mask spacing must land on different masks. That is exactly
2-colorability of the *conflict graph* — nodes are shapes, edges connect
pairs closer than the color spacing. The layer is manufacturable iff the
graph is bipartite; every odd cycle is a coloring conflict.

The check builds the conflict graph from the same candidate machinery as
the spacing rule (rule-inflated MBR sweep, exterior-facing edge pairs) and
BFS-2-colors each component. For a non-bipartite component it reports the
conflict edges whose endpoints received equal colors — the markers a
designer must break to make the layer decomposable. A successful check also
yields the color assignment (:func:`two_color`), usable downstream.

Because conflict edges require distance < spacing, the conflict graph never
crosses adaptive-partition rows — components, and therefore colorability,
are decided row-locally, so the engine's row machinery applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Polygon, Rect
from ..spatial.sweepline import iter_overlapping_pairs
from .base import Violation, ViolationKind
from .edges import polygon_spacing_violations


def conflict_edges(
    polygons: Sequence[Polygon], color_spacing: int
) -> List[Tuple[int, int, Rect, int]]:
    """All shape pairs closer than ``color_spacing``: (i, j, region, distance).

    The region/distance come from the closest exterior-facing edge pair, the
    same measurement the spacing rule reports.
    """
    margin = (color_spacing + 1) // 2
    inflated = [p.mbr.inflated(margin) for p in polygons]
    out: List[Tuple[int, int, Rect, int]] = []
    for i, j in iter_overlapping_pairs(inflated):
        hits = polygon_spacing_violations(polygons[i], polygons[j], color_spacing)
        if not hits:
            continue
        region, distance = min(hits, key=lambda h: h[1])
        out.append((i, j, region, distance))
    return out


def two_color(
    polygons: Sequence[Polygon], color_spacing: int
) -> Tuple[Optional[List[int]], List[Tuple[int, int, Rect, int]]]:
    """BFS 2-coloring of the conflict graph.

    Returns ``(colors, conflicts)``: a 0/1 color per polygon and the list of
    conflict edges whose endpoints could not be separated (empty when the
    layer is decomposable; ``colors`` is then a valid assignment). When
    conflicts exist, ``colors`` still holds the best-effort BFS assignment.
    """
    edges = conflict_edges(polygons, color_spacing)
    adjacency: Dict[int, List[int]] = {}
    for i, j, _, _ in edges:
        adjacency.setdefault(i, []).append(j)
        adjacency.setdefault(j, []).append(i)

    colors: List[int] = [-1] * len(polygons)
    for start in range(len(polygons)):
        if colors[start] != -1:
            continue
        colors[start] = 0
        queue = [start]
        while queue:
            node = queue.pop()
            for neighbour in adjacency.get(node, ()):
                if colors[neighbour] == -1:
                    colors[neighbour] = 1 - colors[node]
                    queue.append(neighbour)

    conflicts = [
        (i, j, region, distance)
        for i, j, region, distance in edges
        if colors[i] == colors[j]
    ]
    return colors, conflicts


def check_two_colorable(
    polygons: Sequence[Polygon], layer: int, color_spacing: int
) -> List[Violation]:
    """Flag every conflict edge that defeats the 2-coloring.

    A clean report means the layer decomposes into two masks with all
    same-mask distances >= ``color_spacing``.
    """
    _, conflicts = two_color(polygons, color_spacing)
    return [
        Violation(
            kind=ViolationKind.COLOR,
            layer=layer,
            region=region,
            measured=distance,
            required=color_spacing,
        )
        for _, _, region, distance in conflicts
    ]
