"""Minimum enclosure check (inter-layer distance rule).

``enclosure(via_layer, metal_layer, value)`` requires every polygon on the
via layer to lie inside some single polygon of the metal layer with at least
``value`` of margin on every side (layer misalignment protection, paper §II).

Margins are computed edge-wise: for each via edge, the nearest parallel
metal edge on the via's outward side with a positive common projection bounds
the margin in that direction. This is exact for the rectangle vias and
rectilinear landing shapes fabricated layouts (and our workloads) use.

A via contained by *no* candidate metal polygon is flagged with measured
margin equal to the best (possibly negative-clamped-to-zero) achievable one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..geometry import Polygon
from ..spatial.sweepline import iter_bipartite_overlaps
from .base import Violation, ViolationKind


def enclosure_margin(via: Polygon, metal: Polygon) -> Optional[int]:
    """Smallest per-side margin of ``via`` inside ``metal``.

    Returns ``None`` when ``metal`` does not enclose ``via`` at all (some
    via edge finds no outward metal boundary, or the via pokes out).
    """
    if not metal.mbr.contains_rect(via.mbr):
        return None
    metal_edges = metal.edges()
    worst: Optional[int] = None
    for via_edge in via.edges():
        # Outward direction of a via edge = its exterior normal.
        nx, ny = via_edge.interior_side
        out_x, out_y = -nx, -ny
        best: Optional[int] = None
        for metal_edge in metal_edges:
            if metal_edge.orientation is not via_edge.orientation:
                continue
            if via_edge.projection_overlap(metal_edge) <= 0:
                continue
            delta = metal_edge.fixed_coordinate - via_edge.fixed_coordinate
            signed = delta * (out_x + out_y)
            if signed < 0:
                continue  # metal edge on the inward side
            if best is None or signed < best:
                best = signed
        if best is None:
            return None  # no metal boundary outward of this via edge
        if worst is None or best < worst:
            worst = best
    # Sanity: all via corners must actually be inside the metal polygon —
    # edge margins alone cannot see a notch carved between two metal edges.
    for vertex in via.vertices:
        if not metal.contains_point(vertex):
            return None
    return worst


def enclosure_pair_violations(
    via: Polygon,
    metals: Sequence[Polygon],
    via_layer: int,
    metal_layer: int,
    min_enclosure: int,
) -> List[Violation]:
    """Violations of one via against its candidate metal polygons.

    The via passes if *any* candidate encloses it with margin >=
    ``min_enclosure``; otherwise the best achieved margin is reported.
    """
    best = -1
    for metal in metals:
        margin = enclosure_margin(via, metal)
        if margin is None:
            continue
        if margin >= min_enclosure:
            return []
        best = max(best, margin)
    return [
        Violation(
            kind=ViolationKind.ENCLOSURE,
            layer=via_layer,
            other_layer=metal_layer,
            region=via.mbr.inflated(min_enclosure),
            measured=max(best, 0),
            required=min_enclosure,
        )
    ]


def check_enclosure(
    vias: Sequence[Polygon],
    metals: Sequence[Polygon],
    via_layer: int,
    metal_layer: int,
    min_enclosure: int,
) -> List[Violation]:
    """Enclosure check over flat via/metal collections.

    Candidates are paired with one bipartite MBR sweep: a metal polygon can
    only satisfy a via if its MBR contains the via's MBR inflated by the
    rule value, so sweeping via-MBRs (inflated) against metal-MBRs finds
    every possible satisfier.
    """
    candidates: List[List[Polygon]] = [[] for _ in vias]
    via_rects = [v.mbr.inflated(min_enclosure) for v in vias]
    metal_rects = [m.mbr for m in metals]
    for i, j in iter_bipartite_overlaps(via_rects, metal_rects):
        candidates[i].append(metals[j])

    violations: List[Violation] = []
    for via, cands in zip(vias, candidates):
        violations.extend(
            enclosure_pair_violations(via, cands, via_layer, metal_layer, min_enclosure)
        )
    return violations


class EnclosureProcedures:
    """Via-in-metal enclosure (paper Table II right half).

    The cross-layer procedure object the hierarchical pending-object
    resolution calls; registered per rule kind in :mod:`repro.core.plan`.
    """

    def satisfied(self, via: Polygon, metals, value: int) -> bool:
        for metal in metals:
            margin = enclosure_margin(via, metal)
            if margin is not None and margin >= value:
                return True
        return False

    def violations(self, via, metals, via_layer, metal_layer, value):
        return enclosure_pair_violations(via, metals, via_layer, metal_layer, value)


def best_margin(via: Polygon, metals: Sequence[Polygon]) -> Tuple[int, bool]:
    """(best margin, enclosed-at-all) across candidates; helper for reports."""
    best = -1
    enclosed = False
    for metal in metals:
        margin = enclosure_margin(via, metal)
        if margin is not None:
            enclosed = True
            best = max(best, margin)
    return best, enclosed
