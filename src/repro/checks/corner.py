"""Corner-to-corner (Euclidean) spacing — roadmap extension.

The reproduced rule set measures parallel edges with overlapping
projections, which is what the paper's benchmarks cover; the paper defers
"supports for general geometric shapes" to its roadmap. This module takes
the first step: diagonal corner-to-corner spacing, the classic rule that
edge-projection checks cannot see (two rectangles offset diagonally can
pass edge spacing while their corners nearly touch).

A *convex* corner of a clockwise rectilinear polygon is a vertex whose two
edges turn right; its **exterior quadrant** is the diagonal direction
pointing away from both edges' interiors. Two corners violate when each
lies inside the other's exterior quadrant strictly diagonally (both axis
offsets nonzero — axis-aligned proximity belongs to the edge-based spacing
rule) and their Euclidean distance is below the rule value. Distances stay
exact: the comparison is on squared integers, and the reported measurement
is the floor of the true distance.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

from ..geometry import Polygon, Rect
from ..spatial.sweepline import iter_overlapping_pairs
from .base import Violation, ViolationKind


@dataclasses.dataclass(frozen=True)
class Corner:
    """One convex corner: position plus exterior-quadrant signs (+/-1)."""

    x: int
    y: int
    qx: int
    qy: int


def convex_corners(polygon: Polygon) -> List[Corner]:
    """All convex corners of a rectilinear polygon with their quadrants."""
    corners: List[Corner] = []
    vertices = polygon.vertices
    n = len(vertices)
    for i in range(n):
        prev = vertices[(i - 1) % n]
        cur = vertices[i]
        nxt = vertices[(i + 1) % n]
        d1 = (cur.x - prev.x, cur.y - prev.y)
        d2 = (nxt.x - cur.x, nxt.y - cur.y)
        cross = d1[0] * d2[1] - d1[1] * d2[0]
        # Clockwise orientation: a right turn (convex corner) has cross < 0.
        if cross >= 0:
            continue
        # Interior normals of the incident edges; exterior quadrant is the
        # opposite of their (axis-aligned, orthogonal) sum.
        n1 = (d1[1], -d1[0])
        n2 = (d2[1], -d2[0])
        ex = -_sign(n1[0] + n2[0])
        ey = -_sign(n1[1] + n2[1])
        corners.append(Corner(cur.x, cur.y, ex, ey))
    return corners


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


def corner_pair_violations(
    corners_a: Sequence[Corner],
    corners_b: Sequence[Corner],
    layer: int,
    min_space: int,
) -> List[Violation]:
    """Diagonal corner violations between two corner sets."""
    limit = min_space * min_space
    out: List[Violation] = []
    for ca in corners_a:
        for cb in corners_b:
            dx = cb.x - ca.x
            dy = cb.y - ca.y
            if dx == 0 or dy == 0:
                continue  # axis-aligned: the edge-based spacing rule's job
            if dx * dx + dy * dy >= limit:
                continue
            # Each corner must open toward the other.
            if _sign(dx) != ca.qx or _sign(dy) != ca.qy:
                continue
            if _sign(-dx) != cb.qx or _sign(-dy) != cb.qy:
                continue
            out.append(_make(ca, cb, layer, min_space))
    return out


def _make(ca: Corner, cb: Corner, layer: int, min_space: int) -> Violation:
    distance = math.isqrt((cb.x - ca.x) ** 2 + (cb.y - ca.y) ** 2)
    region = Rect(
        min(ca.x, cb.x), min(ca.y, cb.y), max(ca.x, cb.x), max(ca.y, cb.y)
    )
    return Violation(
        kind=ViolationKind.CORNER,
        layer=layer,
        region=region,
        measured=distance,
        required=min_space,
    )


def check_corner_spacing(
    polygons: Sequence[Polygon], layer: int, min_space: int
) -> List[Violation]:
    """Flat corner-spacing check over a polygon collection.

    Candidates come from the same rule-inflated MBR sweep the edge spacing
    check uses; same-polygon corner pairs (concave shapes folding back on
    themselves) are included.
    """
    corner_sets = [convex_corners(p) for p in polygons]
    margin = (min_space + 1) // 2
    violations: List[Violation] = []
    for corners in corner_sets:
        violations.extend(
            corner_pair_violations(corners, corners, layer, min_space)
        )
    inflated = [p.mbr.inflated(margin) for p in polygons]
    for i, j in iter_overlapping_pairs(inflated):
        violations.extend(
            corner_pair_violations(corner_sets[i], corner_sets[j], layer, min_space)
        )
    return violations


class CornerProcedures:
    """Diagonal corner-to-corner spacing (roadmap extension).

    The pairwise-procedure object the hierarchical sweeps call; registered
    per rule kind in :mod:`repro.core.plan`.
    """

    def self_violations(self, polygon: Polygon, layer: int, value: int):
        corners = convex_corners(polygon)
        return corner_pair_violations(corners, corners, layer, value)

    def cross_violations(self, pa: Polygon, pb: Polygon, layer: int, value: int):
        return corner_pair_violations(
            convex_corners(pa), convex_corners(pb), layer, value
        )

    def flat_check(self, polygons, layer: int, value: int):
        return check_corner_spacing(polygons, layer, value)
