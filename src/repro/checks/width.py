"""Minimum width check (intra-polygon distance rule)."""

from __future__ import annotations

from typing import List

from ..geometry import Polygon
from .base import Violation, ViolationKind
from .edges import width_violation_regions


def check_polygon_width(polygon: Polygon, layer: int, min_width: int) -> List[Violation]:
    """Width violations of one polygon: interior strips narrower than ``min_width``."""
    return [
        Violation(
            kind=ViolationKind.WIDTH,
            layer=layer,
            region=region,
            measured=distance,
            required=min_width,
        )
        for region, distance in width_violation_regions(polygon, min_width)
    ]


def check_width(polygons, layer: int, min_width: int) -> List[Violation]:
    """Width violations over a polygon collection."""
    violations: List[Violation] = []
    for polygon in polygons:
        violations.extend(check_polygon_width(polygon, layer, min_width))
    return violations
