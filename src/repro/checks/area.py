"""Minimum area check (intra-polygon, Shoelace Theorem — paper §IV-D).

X-Check cannot perform this rule (its evaluation column is empty in the
paper's Table I); OpenDRC adds it, and so do we.
"""

from __future__ import annotations

from typing import List

from ..geometry import Polygon
from .base import Violation, ViolationKind


def check_polygon_area(polygon: Polygon, layer: int, min_area: int) -> List[Violation]:
    """Flag ``polygon`` if its Shoelace area is below ``min_area``."""
    area = polygon.area
    if area >= min_area:
        return []
    return [
        Violation(
            kind=ViolationKind.AREA,
            layer=layer,
            region=polygon.mbr,
            measured=area,
            required=min_area,
        )
    ]


def check_area(polygons, layer: int, min_area: int) -> List[Violation]:
    """Area violations over a polygon collection."""
    violations: List[Violation] = []
    for polygon in polygons:
        violations.extend(check_polygon_area(polygon, layer, min_area))
    return violations
