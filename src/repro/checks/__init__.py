"""Design-rule check procedures (the paper's algorithm layer).

Each module implements one rule family over explicit geometry; candidate
generation (hierarchy, sweepline, rows, GPU buffers) lives elsewhere so that
every checker shares these exact decision procedures.
"""

from .area import check_area, check_polygon_area
from .base import Violation, ViolationKind, sort_violations, violation_set
from .corner import (
    check_corner_spacing,
    convex_corners,
    corner_pair_violations,
)
from .edges import (
    is_spacing_pair,
    is_width_pair,
    polygon_notch_violations,
    polygon_spacing_violations,
    spacing_violation_regions,
    width_violation_regions,
)
from .enclosure import check_enclosure, enclosure_margin, enclosure_pair_violations
from .ensure import check_ensures
from .rectilinear import check_polygon_rectilinear, check_rectilinear
from .spacing import (
    check_spacing,
    check_spacing_pairs,
    spacing_notch_violations,
    spacing_pair_violations,
)
from .width import check_polygon_width, check_width

__all__ = [
    "Violation",
    "ViolationKind",
    "check_area",
    "check_corner_spacing",
    "check_enclosure",
    "convex_corners",
    "corner_pair_violations",
    "check_ensures",
    "check_polygon_area",
    "check_polygon_rectilinear",
    "check_polygon_width",
    "check_rectilinear",
    "check_spacing",
    "check_spacing_pairs",
    "check_width",
    "enclosure_margin",
    "enclosure_pair_violations",
    "is_spacing_pair",
    "is_width_pair",
    "polygon_notch_violations",
    "polygon_spacing_violations",
    "sort_violations",
    "spacing_notch_violations",
    "spacing_pair_violations",
    "spacing_violation_regions",
    "violation_set",
    "width_violation_regions",
]
