"""Thin HTTP client for a ``repro serve`` daemon (stdlib ``urllib`` only).

The CLI's ``repro check --server URL`` path, the benchmarks, and the tests
all talk to the daemon through :class:`ServeClient`. Responses are plain
JSON dicts; the ``report`` member of a check response is the exact payload
of :meth:`~repro.core.results.CheckReport.to_json`, so
:func:`report_json_to_csv` / re-dumping with ``json.dumps(obj, indent=2,
sort_keys=True)`` reproduce the local CLI's output byte for byte.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from .errors import ReproError
from .reporting import (
    apply_waivers_payload,
    csv_from_payload,
    summary_from_payload,
)

__all__ = [
    "ClientError",
    "ServeClient",
    "apply_waivers_payload",
    "report_json_summary",
    "report_json_to_csv",
]


class ClientError(ReproError):
    """A failed request to the serve daemon (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """JSON-over-HTTP client of one daemon."""

    def __init__(self, url: str, *, timeout: float = 300.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        *,
        json_body: Optional[Dict[str, Any]] = None,
        data: Optional[bytes] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = self.url + path
        if query:
            pairs = []
            for key, value in query.items():
                if value is None:
                    continue
                if isinstance(value, (list, tuple)):
                    pairs.extend((key, str(v)) for v in value)
                else:
                    pairs.append((key, str(value)))
            if pairs:
                url += "?" + urllib.parse.urlencode(pairs)
        headers = {"Accept": "application/json"}
        body = None
        if data is not None:
            body = data
            headers["Content-Type"] = "application/octet-stream"
        elif json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=body, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = ""
            raise ClientError(
                detail or f"{method} {path} failed: HTTP {error.code}",
                status=error.code,
            ) from None
        except (urllib.error.URLError, OSError) as error:
            raise ClientError(f"cannot reach {self.url}: {error}") from None
        return payload

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def wait_ready(
        self,
        timeout: float = 30.0,
        *,
        interval: float = 0.05,
        max_interval: float = 1.0,
    ) -> Dict[str, Any]:
        """Poll ``/health`` until the daemon answers; returns its payload.

        The canonical "daemon just forked, is it up yet?" helper — the CI
        smoke jobs and the serve benchmarks all start a daemon and need to
        block until the socket accepts. Polls with exponential backoff
        (``interval`` doubling up to ``max_interval``) and raises
        :class:`ClientError` if the daemon is still unreachable after
        ``timeout`` seconds. Only connection failures are retried; an HTTP
        error (the daemon is up but unhappy) propagates immediately.
        """
        deadline = time.monotonic() + timeout
        delay = max(0.001, interval)
        last_error: Optional[ClientError] = None
        while True:
            try:
                return self.health()
            except ClientError as error:
                if error.status:  # reachable but failing: not a startup race
                    raise
                last_error = error
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClientError(
                    f"daemon at {self.url} not ready after {timeout:g}s: "
                    f"{last_error}"
                )
            time.sleep(min(delay, remaining))
            delay = min(delay * 2, max_interval)

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def sessions(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/sessions")["sessions"]

    def create_session(
        self,
        *,
        path: Optional[str] = None,
        data: Optional[bytes] = None,
        top: Optional[str] = None,
        deck: Optional[str] = None,
        severities: Optional[Dict[str, str]] = None,
        default_severity: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Load a layout into the daemon; returns the session info dict.

        ``data`` uploads raw GDSII stream bytes; ``path`` names a file the
        *server* can read (handy when client and daemon share a machine).
        Raw uploads carry their options in the query string, which has no
        encoding for the per-rule ``severities`` mapping — combining it
        with ``data`` raises rather than silently dropping it.
        """
        if data is not None:
            if severities:
                raise ValueError(
                    "severities cannot be combined with a raw GDS upload "
                    "(query-string options only); use path= (JSON body) to "
                    "set per-rule severities"
                )
            return self._request(
                "POST",
                "/sessions",
                data=data,
                query={"top": top, "deck": deck, "default_severity": default_severity},
            )
        body: Dict[str, Any] = {"path": path}
        if top is not None:
            body["top"] = top
        if deck is not None:
            body["deck"] = deck
        if severities is not None:
            body["severities"] = severities
        if default_severity is not None:
            body["default_severity"] = default_severity
        return self._request("POST", "/sessions", json_body=body)

    def session(self, sid: str) -> Dict[str, Any]:
        return self._request("GET", f"/sessions/{sid}")

    def delete_session(self, sid: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/sessions/{sid}")

    def check(self, sid: str) -> Dict[str, Any]:
        """Run the session's deck; ``{"report": ..., "meta": ...}``."""
        return self._request("POST", f"/sessions/{sid}/check")

    def check_window(
        self, sid: str, windows: Sequence[Sequence[int]]
    ) -> Dict[str, Any]:
        return self._request(
            "POST",
            f"/sessions/{sid}/check-window",
            json_body={"windows": [list(w) for w in windows]},
        )

    def recheck(
        self,
        sid: str,
        *,
        path: Optional[str] = None,
        data: Optional[bytes] = None,
        top: Optional[str] = None,
        verify: bool = False,
    ) -> Dict[str, Any]:
        query = {"top": top, "verify": "1" if verify else None}
        if data is not None:
            return self._request(
                "POST", f"/sessions/{sid}/recheck", data=data, query=query
            )
        body: Dict[str, Any] = {"path": path, "verify": verify}
        if top is not None:
            body["top"] = top
        return self._request("POST", f"/sessions/{sid}/recheck", json_body=body)

    def violations(
        self,
        sid: str,
        *,
        severity: Optional[str] = None,
        rules: Optional[Sequence[str]] = None,
        bbox: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        query: Dict[str, Any] = {"severity": severity}
        if rules:
            query["rule"] = list(rules)
        if bbox is not None:
            query["bbox"] = ",".join(str(c) for c in bbox)
        return self._request("GET", f"/sessions/{sid}/violations", query=query)

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")


# ---------------------------------------------------------------------------
# Rendering served reports without Rule objects
# ---------------------------------------------------------------------------


def report_json_to_csv(
    payload: Dict[str, Any], *, expand_instances: bool = False
) -> str:
    """CSV markers from a ``to_json`` report payload.

    Byte-identical to :meth:`CheckReport.to_csv` of the same report by
    construction: both delegate to
    :func:`repro.reporting.csv_from_payload`, and the serialized results
    preserve deck order and the canonical violation sort, so no Rule
    objects are needed to reproduce the dump.
    """
    return csv_from_payload(payload, expand_instances=expand_instances)


def report_json_summary(payload: Dict[str, Any]) -> str:
    """Human summary of a ``to_json`` report payload (CLI default format).

    Same delegation story as :func:`report_json_to_csv` — one
    implementation (:func:`repro.reporting.summary_from_payload`) renders
    both local and served summaries.
    """
    return summary_from_payload(payload)
