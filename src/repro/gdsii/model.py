"""Raw stream-level GDSII object model.

This mirrors the recursive grammar of the paper's Fig. 2: a *library* is a
list of *structures*, a structure is a list of *elements*, and an element is
a boundary, path, structure reference (SREF), or array reference (AREF).
The model stores exactly what the stream stores — no geometry semantics; the
layout database (:mod:`repro.layout`) is built from it by
:mod:`repro.layout.builder`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..errors import GdsiiError

DEFAULT_TIMESTAMP = (2023, 1, 1, 0, 0, 0)


@dataclasses.dataclass
class GdsStrans:
    """Decoded STRANS/MAG/ANGLE group of a reference or text element."""

    mirror_x: bool = False
    magnification: float = 1.0
    angle: float = 0.0

    @property
    def is_identity(self) -> bool:
        return not self.mirror_x and self.magnification == 1.0 and self.angle == 0.0


@dataclasses.dataclass
class GdsBoundary:
    """BOUNDARY element: a filled polygon on (layer, datatype)."""

    layer: int
    datatype: int
    xy: List[Tuple[int, int]]
    properties: Dict[int, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class GdsPath:
    """PATH element: a wire with a width on (layer, datatype)."""

    layer: int
    datatype: int
    width: int
    xy: List[Tuple[int, int]]
    pathtype: int = 0
    properties: Dict[int, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class GdsSref:
    """SREF element: one placement of another structure."""

    sname: str
    origin: Tuple[int, int]
    strans: GdsStrans = dataclasses.field(default_factory=GdsStrans)
    properties: Dict[int, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class GdsAref:
    """AREF element: a ``columns x rows`` array of placements.

    ``xy`` holds the three GDSII reference points: the array origin, the
    point ``origin + columns * column_step``, and ``origin + rows * row_step``.
    """

    sname: str
    columns: int
    rows: int
    xy: List[Tuple[int, int]]
    strans: GdsStrans = dataclasses.field(default_factory=GdsStrans)
    properties: Dict[int, str] = dataclasses.field(default_factory=dict)

    @property
    def origin(self) -> Tuple[int, int]:
        return self.xy[0]

    @property
    def column_step(self) -> Tuple[int, int]:
        ox, oy = self.xy[0]
        cx, cy = self.xy[1]
        if self.columns == 0:
            raise GdsiiError("AREF with zero columns")
        return ((cx - ox) // self.columns, (cy - oy) // self.columns)

    @property
    def row_step(self) -> Tuple[int, int]:
        ox, oy = self.xy[0]
        rx, ry = self.xy[2]
        if self.rows == 0:
            raise GdsiiError("AREF with zero rows")
        return ((rx - ox) // self.rows, (ry - oy) // self.rows)


GdsElement = (GdsBoundary, GdsPath, GdsSref, GdsAref)


@dataclasses.dataclass
class GdsStructure:
    """BGNSTR..ENDSTR block: a named list of elements."""

    name: str
    elements: List[object] = dataclasses.field(default_factory=list)
    timestamp: Tuple[int, ...] = DEFAULT_TIMESTAMP


@dataclasses.dataclass
class GdsLibrary:
    """BGNLIB..ENDLIB block: the whole stream file."""

    name: str = "LIB"
    user_unit: float = 1e-3  # database units per user unit
    meters_per_unit: float = 1e-9  # meters per database unit
    structures: List[GdsStructure] = dataclasses.field(default_factory=list)
    timestamp: Tuple[int, ...] = DEFAULT_TIMESTAMP

    def structure(self, name: str) -> GdsStructure:
        for s in self.structures:
            if s.name == name:
                return s
        raise GdsiiError(f"no structure named {name!r} in library {self.name!r}")

    def structure_names(self) -> List[str]:
        return [s.name for s in self.structures]

    def top_structures(self) -> List[GdsStructure]:
        """Structures never referenced by any SREF/AREF (the hierarchy roots)."""
        referenced = set()
        for s in self.structures:
            for element in s.elements:
                if isinstance(element, (GdsSref, GdsAref)):
                    referenced.add(element.sname)
        return [s for s in self.structures if s.name not in referenced]

    def validate_references(self) -> None:
        """Raise if any SREF/AREF names a structure not in the library."""
        known = set(self.structure_names())
        for s in self.structures:
            for element in s.elements:
                if isinstance(element, (GdsSref, GdsAref)) and element.sname not in known:
                    raise GdsiiError(
                        f"structure {s.name!r} references undefined structure "
                        f"{element.sname!r}"
                    )


def aref_origins(aref: GdsAref) -> List[Tuple[int, int]]:
    """Expand an AREF into the list of individual placement origins."""
    ox, oy = aref.origin
    csx, csy = aref.column_step
    rsx, rsy = aref.row_step
    origins: List[Tuple[int, int]] = []
    for row in range(aref.rows):
        for col in range(aref.columns):
            origins.append((ox + col * csx + row * rsx, oy + col * csy + row * rsy))
    return origins


def strans_angle_to_rotation(angle: float) -> int:
    """Map a REAL8 ANGLE to the engine's integer multiple-of-90 rotation."""
    rotation = int(round(angle)) % 360
    if abs(angle - round(angle)) > 1e-9 or rotation % 90 != 0:
        raise GdsiiError(f"unsupported rotation angle {angle} (must be a multiple of 90)")
    return rotation


def magnification_scalar(mag: float):
    """Convert a REAL8 MAG to an exact int/Fraction for the engine."""
    from fractions import Fraction

    if mag <= 0:
        raise GdsiiError(f"non-positive magnification {mag}")
    frac = Fraction(mag).limit_denominator(1 << 20)
    if abs(float(frac) - mag) > 1e-12:
        raise GdsiiError(f"magnification {mag} is not representable exactly")
    return int(frac) if frac.denominator == 1 else frac
