"""GDSII stream record grammar.

A GDSII file is a flat sequence of records; each record is a 2-byte
big-endian length (including the 4-byte header), a 1-byte record type, and a
1-byte data type, followed by payload. The recursive structure of Fig. 2 in
the paper (library -> structures -> elements -> structure references) is a
grammar *over* this flat record stream; :mod:`repro.gdsii.reader` implements
that grammar.
"""

from __future__ import annotations

import enum
import struct
from typing import List, NamedTuple, Sequence, Union

from ..errors import GdsiiError
from .real8 import decode_real8, encode_real8


class RecordType(enum.IntEnum):
    """The subset of GDSII record types this codec understands."""

    HEADER = 0x00
    BGNLIB = 0x01
    LIBNAME = 0x02
    UNITS = 0x03
    ENDLIB = 0x04
    BGNSTR = 0x05
    STRNAME = 0x06
    ENDSTR = 0x07
    BOUNDARY = 0x08
    PATH = 0x09
    SREF = 0x0A
    AREF = 0x0B
    TEXT = 0x0C
    LAYER = 0x0D
    DATATYPE = 0x0E
    WIDTH = 0x0F
    XY = 0x10
    ENDEL = 0x11
    SNAME = 0x12
    COLROW = 0x13
    TEXTTYPE = 0x16
    PRESENTATION = 0x17
    STRING = 0x19
    STRANS = 0x1A
    MAG = 0x1B
    ANGLE = 0x1C
    PATHTYPE = 0x21
    PROPATTR = 0x2B
    PROPVALUE = 0x2C


class DataType(enum.IntEnum):
    """GDSII payload data types."""

    NO_DATA = 0x00
    BIT_ARRAY = 0x01
    INT16 = 0x02
    INT32 = 0x03
    REAL4 = 0x04
    REAL8 = 0x05
    ASCII = 0x06


#: Payload data type each record type must carry.
EXPECTED_DATA_TYPE = {
    RecordType.HEADER: DataType.INT16,
    RecordType.BGNLIB: DataType.INT16,
    RecordType.LIBNAME: DataType.ASCII,
    RecordType.UNITS: DataType.REAL8,
    RecordType.ENDLIB: DataType.NO_DATA,
    RecordType.BGNSTR: DataType.INT16,
    RecordType.STRNAME: DataType.ASCII,
    RecordType.ENDSTR: DataType.NO_DATA,
    RecordType.BOUNDARY: DataType.NO_DATA,
    RecordType.PATH: DataType.NO_DATA,
    RecordType.SREF: DataType.NO_DATA,
    RecordType.AREF: DataType.NO_DATA,
    RecordType.TEXT: DataType.NO_DATA,
    RecordType.LAYER: DataType.INT16,
    RecordType.DATATYPE: DataType.INT16,
    RecordType.WIDTH: DataType.INT32,
    RecordType.XY: DataType.INT32,
    RecordType.ENDEL: DataType.NO_DATA,
    RecordType.SNAME: DataType.ASCII,
    RecordType.COLROW: DataType.INT16,
    RecordType.TEXTTYPE: DataType.INT16,
    RecordType.PRESENTATION: DataType.BIT_ARRAY,
    RecordType.STRING: DataType.ASCII,
    RecordType.STRANS: DataType.BIT_ARRAY,
    RecordType.MAG: DataType.REAL8,
    RecordType.ANGLE: DataType.REAL8,
    RecordType.PATHTYPE: DataType.INT16,
    RecordType.PROPATTR: DataType.INT16,
    RecordType.PROPVALUE: DataType.ASCII,
}

Payload = Union[None, bytes, str, List[int], List[float]]


class Record(NamedTuple):
    """One decoded stream record."""

    record_type: RecordType
    data_type: DataType
    payload: Payload

    @property
    def ints(self) -> List[int]:
        if not isinstance(self.payload, list):
            raise GdsiiError(f"{self.record_type.name} carries no integer payload")
        return self.payload  # type: ignore[return-value]

    @property
    def reals(self) -> List[float]:
        if self.data_type is not DataType.REAL8 or not isinstance(self.payload, list):
            raise GdsiiError(f"{self.record_type.name} carries no REAL8 payload")
        return self.payload  # type: ignore[return-value]

    @property
    def text(self) -> str:
        if not isinstance(self.payload, str):
            raise GdsiiError(f"{self.record_type.name} carries no ASCII payload")
        return self.payload


def decode_payload(data_type: DataType, raw: bytes) -> Payload:
    """Decode a record payload according to its data type."""
    if data_type is DataType.NO_DATA:
        if raw:
            raise GdsiiError("NO_DATA record with a non-empty payload")
        return None
    if data_type is DataType.BIT_ARRAY:
        if len(raw) != 2:
            raise GdsiiError(f"BIT_ARRAY payload must be 2 bytes, got {len(raw)}")
        return raw
    if data_type is DataType.INT16:
        if len(raw) % 2:
            raise GdsiiError("INT16 payload length is odd")
        return list(struct.unpack(f">{len(raw) // 2}h", raw))
    if data_type is DataType.INT32:
        if len(raw) % 4:
            raise GdsiiError("INT32 payload length is not a multiple of 4")
        return list(struct.unpack(f">{len(raw) // 4}i", raw))
    if data_type is DataType.REAL8:
        if len(raw) % 8:
            raise GdsiiError("REAL8 payload length is not a multiple of 8")
        return [decode_real8(raw[i : i + 8]) for i in range(0, len(raw), 8)]
    if data_type is DataType.ASCII:
        return raw.rstrip(b"\x00").decode("ascii")
    raise GdsiiError(f"unsupported data type {data_type!r}")


def encode_payload(data_type: DataType, payload: Payload) -> bytes:
    """Encode a record payload; inverse of :func:`decode_payload`."""
    if data_type is DataType.NO_DATA:
        return b""
    if data_type is DataType.BIT_ARRAY:
        assert isinstance(payload, bytes)
        return payload
    if data_type is DataType.INT16:
        assert isinstance(payload, list)
        return struct.pack(f">{len(payload)}h", *payload)
    if data_type is DataType.INT32:
        assert isinstance(payload, list)
        return struct.pack(f">{len(payload)}i", *payload)
    if data_type is DataType.REAL8:
        assert isinstance(payload, list)
        return b"".join(encode_real8(v) for v in payload)
    if data_type is DataType.ASCII:
        assert isinstance(payload, str)
        raw = payload.encode("ascii")
        if len(raw) % 2:
            raw += b"\x00"  # GDSII pads ASCII payloads to even length
        return raw
    raise GdsiiError(f"unsupported data type {data_type!r}")


def pack_record(record: Record) -> bytes:
    """Serialize one record to stream bytes."""
    body = encode_payload(record.data_type, record.payload)
    length = len(body) + 4
    if length > 0xFFFF:
        raise GdsiiError(f"record {record.record_type.name} payload too large ({length} bytes)")
    return struct.pack(">HBB", length, record.record_type, record.data_type) + body


def unpack_records(data: bytes) -> List[Record]:
    """Split stream bytes into decoded records; stops at ENDLIB or end of data."""
    records: List[Record] = []
    offset = 0
    size = len(data)
    while offset + 4 <= size:
        length, rtype_raw, dtype_raw = struct.unpack_from(">HBB", data, offset)
        if length == 0:
            break  # trailing null padding after ENDLIB
        if length < 4 or offset + length > size:
            raise GdsiiError(f"record at offset {offset} has bad length {length}")
        try:
            rtype = RecordType(rtype_raw)
        except ValueError:
            raise GdsiiError(f"unknown record type 0x{rtype_raw:02X} at offset {offset}") from None
        try:
            dtype = DataType(dtype_raw)
        except ValueError:
            raise GdsiiError(f"unknown data type 0x{dtype_raw:02X} at offset {offset}") from None
        expected = EXPECTED_DATA_TYPE[rtype]
        if dtype is not expected:
            raise GdsiiError(
                f"{rtype.name} record carries {dtype.name} payload, expected {expected.name}"
            )
        payload = decode_payload(dtype, data[offset + 4 : offset + length])
        records.append(Record(rtype, dtype, payload))
        offset += length
        if rtype is RecordType.ENDLIB:
            break
    return records


def make_record(rtype: RecordType, payload: Payload = None) -> Record:
    """Build a record with the data type mandated for ``rtype``."""
    return Record(rtype, EXPECTED_DATA_TYPE[rtype], payload)


def xy_record(points: Sequence) -> Record:
    """Build an XY record from a point sequence (closing point NOT added)."""
    flat: List[int] = []
    for p in points:
        flat.append(int(p[0]))
        flat.append(int(p[1]))
    return make_record(RecordType.XY, flat)
