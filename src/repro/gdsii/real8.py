"""GDSII 8-byte real (excess-64, base-16) conversion.

GDSII predates IEEE-754: a REAL8 is one sign bit, a 7-bit excess-64 base-16
exponent, and a 56-bit mantissa interpreted as a fraction in [1/16, 1), so

    value = (-1)^sign * (mantissa / 2^56) * 16^(exponent - 64)

The UNITS record stores two REAL8 values, so every stream file round-trips
through this module.
"""

from __future__ import annotations

_MANTISSA_BITS = 56
_MANTISSA_SCALE = 1 << _MANTISSA_BITS
_EXPONENT_EXCESS = 64


def decode_real8(data: bytes) -> float:
    """Decode 8 bytes of excess-64 real data to a Python float."""
    if len(data) != 8:
        raise ValueError(f"REAL8 needs exactly 8 bytes, got {len(data)}")
    word = int.from_bytes(data, "big")
    sign = -1.0 if word >> 63 else 1.0
    exponent = ((word >> _MANTISSA_BITS) & 0x7F) - _EXPONENT_EXCESS
    mantissa = word & (_MANTISSA_SCALE - 1)
    if mantissa == 0:
        return 0.0
    return sign * (mantissa / _MANTISSA_SCALE) * (16.0 ** exponent)


def encode_real8(value: float) -> bytes:
    """Encode a Python float as 8 bytes of excess-64 real data.

    Values too large for the 7-bit exponent raise ``OverflowError``; values
    too small flush to zero (matching common GDSII writer behaviour).
    """
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 1
        value = -value

    # Normalize so that mantissa-fraction is in [1/16, 1).
    exponent = 0
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1

    biased = exponent + _EXPONENT_EXCESS
    mantissa = int(round(value * _MANTISSA_SCALE))
    if mantissa >= _MANTISSA_SCALE:  # rounding overflowed the fraction
        mantissa //= 16
        biased += 1
    if not 0 <= biased <= 0x7F:
        if biased < 0:
            return b"\x00" * 8
        raise OverflowError(f"value {value} out of REAL8 exponent range")

    word = (sign << 63) | (biased << _MANTISSA_BITS) | mantissa
    return word.to_bytes(8, "big")
