"""GDSII stream writer.

Serializes a :class:`~repro.gdsii.model.GdsLibrary` back to stream bytes.
``read(write(lib)) == lib`` up to payload normalization, which the test suite
asserts via round-trip properties.
"""

from __future__ import annotations

import os
from typing import List, Union

from ..errors import GdsiiError
from .model import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
)
from .records import Record, RecordType, make_record, pack_record, xy_record

_GDSII_VERSION = 600  # "GDSII 6.0", the ubiquitous stream version


def write(library: GdsLibrary, path: Union[str, "os.PathLike"]) -> None:
    """Write a library to a stream file."""
    with open(path, "wb") as f:
        f.write(write_bytes(library))


def write_bytes(library: GdsLibrary) -> bytes:
    """Serialize a library to in-memory stream bytes."""
    library.validate_references()
    records: List[Record] = [make_record(RecordType.HEADER, [_GDSII_VERSION])]
    stamp = _timestamp12(library.timestamp)
    records.append(make_record(RecordType.BGNLIB, stamp))
    records.append(make_record(RecordType.LIBNAME, library.name))
    records.append(make_record(RecordType.UNITS, [library.user_unit, library.meters_per_unit]))
    for structure in library.structures:
        records.extend(_structure_records(structure))
    records.append(make_record(RecordType.ENDLIB))
    return b"".join(pack_record(r) for r in records)


def _structure_records(structure: GdsStructure) -> List[Record]:
    records = [make_record(RecordType.BGNSTR, _timestamp12(structure.timestamp))]
    records.append(make_record(RecordType.STRNAME, structure.name))
    for element in structure.elements:
        records.extend(_element_records(element))
    records.append(make_record(RecordType.ENDSTR))
    return records


def _element_records(element) -> List[Record]:
    if isinstance(element, GdsBoundary):
        records = [
            make_record(RecordType.BOUNDARY),
            make_record(RecordType.LAYER, [element.layer]),
            make_record(RecordType.DATATYPE, [element.datatype]),
            xy_record(list(element.xy) + [element.xy[0]]),
        ]
    elif isinstance(element, GdsPath):
        records = [
            make_record(RecordType.PATH),
            make_record(RecordType.LAYER, [element.layer]),
            make_record(RecordType.DATATYPE, [element.datatype]),
        ]
        if element.pathtype:
            records.append(make_record(RecordType.PATHTYPE, [element.pathtype]))
        if element.width:
            records.append(make_record(RecordType.WIDTH, [element.width]))
        records.append(xy_record(element.xy))
    elif isinstance(element, GdsSref):
        records = [make_record(RecordType.SREF), make_record(RecordType.SNAME, element.sname)]
        records.extend(_strans_records(element.strans))
        records.append(xy_record([element.origin]))
    elif isinstance(element, GdsAref):
        records = [make_record(RecordType.AREF), make_record(RecordType.SNAME, element.sname)]
        records.extend(_strans_records(element.strans))
        records.append(make_record(RecordType.COLROW, [element.columns, element.rows]))
        records.append(xy_record(element.xy))
    else:
        raise GdsiiError(f"cannot serialize element of type {type(element).__name__}")

    for attr, value in sorted(element.properties.items()):
        records.append(make_record(RecordType.PROPATTR, [attr]))
        records.append(make_record(RecordType.PROPVALUE, value))
    records.append(make_record(RecordType.ENDEL))
    return records


def _strans_records(strans: GdsStrans) -> List[Record]:
    if strans.is_identity:
        return []
    flags = 0x8000 if strans.mirror_x else 0x0000
    records = [make_record(RecordType.STRANS, flags.to_bytes(2, "big"))]
    if strans.magnification != 1.0:
        records.append(make_record(RecordType.MAG, [strans.magnification]))
    if strans.angle != 0.0:
        records.append(make_record(RecordType.ANGLE, [strans.angle]))
    return records


def _timestamp12(stamp) -> List[int]:
    """BGNLIB/BGNSTR hold modification + access times: 12 int16 values."""
    values = list(stamp)[:6]
    values += [0] * (6 - len(values))
    return values + values
