"""GDSII stream reader.

Parses the flat record stream into the raw object model of
:mod:`repro.gdsii.model`, enforcing the recursive grammar of the paper's
Fig. 2 (library -> structure* -> element*). The reader is strict: malformed
nesting, missing mandatory records, or unknown record types raise
:class:`~repro.errors.GdsiiError` with the offending context.
"""

from __future__ import annotations

import os
from typing import List, Union

from ..errors import GdsiiError
from .model import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
)
from .records import Record, RecordType, unpack_records


def read(path: Union[str, "os.PathLike"]) -> GdsLibrary:
    """Read a GDSII stream file into a :class:`GdsLibrary`."""
    with open(path, "rb") as f:
        return read_bytes(f.read())


def read_bytes(data: bytes) -> GdsLibrary:
    """Parse in-memory GDSII stream bytes."""
    records = unpack_records(data)
    if not records:
        raise GdsiiError("empty GDSII stream")
    return _Parser(records).parse_library()


class _Parser:
    """Recursive-descent parser over the decoded record list."""

    def __init__(self, records: List[Record]) -> None:
        self._records = records
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Record:
        if self._pos >= len(self._records):
            raise GdsiiError("unexpected end of GDSII stream")
        return self._records[self._pos]

    def _next(self) -> Record:
        record = self._peek()
        self._pos += 1
        return record

    def _expect(self, rtype: RecordType) -> Record:
        record = self._next()
        if record.record_type is not rtype:
            raise GdsiiError(
                f"expected {rtype.name} record, found {record.record_type.name} "
                f"(record #{self._pos - 1})"
            )
        return record

    def _accept(self, rtype: RecordType):
        if self._pos < len(self._records) and self._peek().record_type is rtype:
            return self._next()
        return None

    # -- grammar -------------------------------------------------------------

    def parse_library(self) -> GdsLibrary:
        self._expect(RecordType.HEADER)
        bgnlib = self._expect(RecordType.BGNLIB)
        name = self._expect(RecordType.LIBNAME).text
        units = self._expect(RecordType.UNITS).reals
        if len(units) != 2:
            raise GdsiiError(f"UNITS record must hold 2 reals, got {len(units)}")
        library = GdsLibrary(
            name=name,
            user_unit=units[0],
            meters_per_unit=units[1],
            timestamp=tuple(bgnlib.ints[:6]),
        )
        while True:
            record = self._next()
            if record.record_type is RecordType.ENDLIB:
                break
            if record.record_type is not RecordType.BGNSTR:
                raise GdsiiError(
                    f"expected BGNSTR or ENDLIB at library level, found "
                    f"{record.record_type.name}"
                )
            library.structures.append(self._parse_structure(record))
        library.validate_references()
        return library

    def _parse_structure(self, bgnstr: Record) -> GdsStructure:
        name = self._expect(RecordType.STRNAME).text
        structure = GdsStructure(name=name, timestamp=tuple(bgnstr.ints[:6]))
        while True:
            record = self._next()
            rtype = record.record_type
            if rtype is RecordType.ENDSTR:
                break
            if rtype is RecordType.BOUNDARY:
                structure.elements.append(self._parse_boundary())
            elif rtype is RecordType.PATH:
                structure.elements.append(self._parse_path())
            elif rtype is RecordType.SREF:
                structure.elements.append(self._parse_sref())
            elif rtype is RecordType.AREF:
                structure.elements.append(self._parse_aref())
            elif rtype is RecordType.TEXT:
                self._skip_element()  # texts carry no DRC geometry
            else:
                raise GdsiiError(
                    f"unexpected {rtype.name} record inside structure {name!r}"
                )
        return structure

    # -- elements -----------------------------------------------------------

    def _parse_boundary(self) -> GdsBoundary:
        layer = self._expect(RecordType.LAYER).ints[0]
        datatype = self._expect(RecordType.DATATYPE).ints[0]
        xy = self._parse_xy()
        if len(xy) < 4:
            raise GdsiiError("BOUNDARY with fewer than 4 points")
        if xy[0] != xy[-1]:
            raise GdsiiError("BOUNDARY XY list must repeat the first point")
        properties = self._parse_properties()
        self._expect(RecordType.ENDEL)
        return GdsBoundary(layer=layer, datatype=datatype, xy=xy[:-1], properties=properties)

    def _parse_path(self) -> GdsPath:
        layer = self._expect(RecordType.LAYER).ints[0]
        datatype = self._expect(RecordType.DATATYPE).ints[0]
        pathtype_rec = self._accept(RecordType.PATHTYPE)
        pathtype = pathtype_rec.ints[0] if pathtype_rec else 0
        width_rec = self._accept(RecordType.WIDTH)
        width = width_rec.ints[0] if width_rec else 0
        xy = self._parse_xy()
        if len(xy) < 2:
            raise GdsiiError("PATH with fewer than 2 points")
        properties = self._parse_properties()
        self._expect(RecordType.ENDEL)
        return GdsPath(
            layer=layer,
            datatype=datatype,
            width=width,
            xy=xy,
            pathtype=pathtype,
            properties=properties,
        )

    def _parse_sref(self) -> GdsSref:
        sname = self._expect(RecordType.SNAME).text
        strans = self._parse_strans()
        xy = self._parse_xy()
        if len(xy) != 1:
            raise GdsiiError(f"SREF XY must hold exactly 1 point, got {len(xy)}")
        properties = self._parse_properties()
        self._expect(RecordType.ENDEL)
        return GdsSref(sname=sname, origin=xy[0], strans=strans, properties=properties)

    def _parse_aref(self) -> GdsAref:
        sname = self._expect(RecordType.SNAME).text
        strans = self._parse_strans()
        colrow = self._expect(RecordType.COLROW).ints
        if len(colrow) != 2:
            raise GdsiiError("COLROW must hold exactly 2 int16 values")
        xy = self._parse_xy()
        if len(xy) != 3:
            raise GdsiiError(f"AREF XY must hold exactly 3 points, got {len(xy)}")
        properties = self._parse_properties()
        self._expect(RecordType.ENDEL)
        return GdsAref(
            sname=sname,
            columns=colrow[0],
            rows=colrow[1],
            xy=xy,
            strans=strans,
            properties=properties,
        )

    # -- shared pieces --------------------------------------------------------

    def _parse_strans(self) -> GdsStrans:
        strans = GdsStrans()
        record = self._accept(RecordType.STRANS)
        if record is None:
            return strans
        assert isinstance(record.payload, bytes)
        strans.mirror_x = bool(record.payload[0] & 0x80)
        mag = self._accept(RecordType.MAG)
        if mag is not None:
            strans.magnification = mag.reals[0]
        angle = self._accept(RecordType.ANGLE)
        if angle is not None:
            strans.angle = angle.reals[0]
        return strans

    def _parse_xy(self):
        flat = self._expect(RecordType.XY).ints
        if len(flat) % 2:
            raise GdsiiError("XY record with an odd coordinate count")
        return [(flat[i], flat[i + 1]) for i in range(0, len(flat), 2)]

    def _parse_properties(self):
        properties = {}
        while True:
            attr = self._accept(RecordType.PROPATTR)
            if attr is None:
                return properties
            value = self._expect(RecordType.PROPVALUE)
            properties[attr.ints[0]] = value.text

    def _skip_element(self) -> None:
        while self._next().record_type is not RecordType.ENDEL:
            pass
