"""GDSII stream format codec (interface layer).

A from-scratch reader/writer for the GDSII stream format: flat record codec
(:mod:`.records`), excess-64 REAL8 floats (:mod:`.real8`), the raw object
model mirroring the paper's Fig. 2 grammar (:mod:`.model`), and the
recursive-descent reader / writer pair (:mod:`.reader`, :mod:`.writer`).

The convenience :func:`read_layout` goes straight from a stream file to the
hierarchical layout database, matching the paper's Listing 1 usage
(``odrc::gdsii::read("path-to-gdsii")``).
"""

from .model import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
    aref_origins,
)
from .reader import read, read_bytes
from .records import DataType, Record, RecordType, pack_record, unpack_records
from .writer import write, write_bytes

__all__ = [
    "DataType",
    "GdsAref",
    "GdsBoundary",
    "GdsLibrary",
    "GdsPath",
    "GdsSref",
    "GdsStrans",
    "GdsStructure",
    "Record",
    "RecordType",
    "aref_origins",
    "pack_record",
    "read",
    "read_bytes",
    "read_layout",
    "unpack_records",
    "write",
    "write_bytes",
]


def read_layout(path):
    """Read a GDSII file directly into a :class:`repro.layout.Layout`."""
    from ..layout.builder import layout_from_gdsii

    return layout_from_gdsii(read(path))
