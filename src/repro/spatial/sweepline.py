"""Sweepline MBR-overlap reporting (paper §IV-D, Fig. 3).

A conceptual horizontal line moves top-to-bottom across the plane, visiting
the top and bottom sides of all MBRs in descending y. At a top side, the
rect's x-interval is queried against the interval-tree status (reporting all
currently-open overlapping MBRs) and then inserted; at a bottom side it is
removed. Overlap is *closed*: the engine inflates MBRs by the rule distance
first, so boundary contact must be reported.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..geometry import Rect
from .interval_tree import IntervalTree

_ENTER = 0  # top side — processed first at equal y so touching rects pair up
_EXIT = 1  # bottom side


def iter_overlapping_pairs(rects: Sequence[Rect]) -> Iterator[Tuple[int, int]]:
    """Yield index pairs ``(i, j)``, ``i < j``, of rects whose closed regions overlap.

    Empty rects never participate. Each pair is reported exactly once.
    """
    events = _build_events(rects)
    keys = [r.xlo for r in rects if not r.is_empty]
    tree: IntervalTree[int] = IntervalTree(keys or [0])
    for _, kind, index in events:
        rect = rects[index]
        if kind == _ENTER:
            for other in tree.query(rect.xlo, rect.xhi):
                yield (other, index) if other < index else (index, other)
            tree.insert(rect.xlo, rect.xhi, index)
        else:
            tree.remove(rect.xlo, rect.xhi, index)


def report_overlapping_pairs(rects: Sequence[Rect]) -> List[Tuple[int, int]]:
    """Materialized :func:`iter_overlapping_pairs`."""
    return list(iter_overlapping_pairs(rects))


def iter_bipartite_overlaps(
    left: Sequence[Rect], right: Sequence[Rect]
) -> Iterator[Tuple[int, int]]:
    """Yield ``(i, j)`` with ``left[i]`` overlapping ``right[j]`` (closed).

    One sweep over both populations; used for inter-layer checks (e.g. via
    enclosure candidates) where only cross pairs matter.
    """
    sides = [left, right]
    events: List[Tuple[int, int, int, int]] = []  # (-y, kind, side, index)
    for side, rects in enumerate(sides):
        for index, rect in enumerate(rects):
            if rect.is_empty:
                continue
            events.append((-rect.yhi, _ENTER, side, index))
            events.append((-rect.ylo, _EXIT, side, index))
    events.sort()
    keys = [r.xlo for rects in sides for r in rects if not r.is_empty]
    tree: IntervalTree[Tuple[int, int]] = IntervalTree(keys or [0])
    for _, kind, side, index in events:
        rect = sides[side][index]
        if kind == _ENTER:
            for other_side, other_index in tree.query(rect.xlo, rect.xhi):
                if other_side != side:
                    if side == 0:
                        yield (index, other_index)
                    else:
                        yield (other_index, index)
            tree.insert(rect.xlo, rect.xhi, (side, index))
        else:
            tree.remove(rect.xlo, rect.xhi, (side, index))


def brute_force_pairs(rects: Sequence[Rect]) -> List[Tuple[int, int]]:
    """Quadratic reference implementation used to validate the sweepline."""
    out: List[Tuple[int, int]] = []
    for i, a in enumerate(rects):
        for j in range(i + 1, len(rects)):
            if a.overlaps(rects[j]):
                out.append((i, j))
    return out


def sweep(
    rects: Sequence[Rect],
    on_pair: Callable[[int, int], None],
    *,
    prune: Optional[Callable[[int, int], bool]] = None,
) -> int:
    """Run the sweep calling ``on_pair`` per overlap; returns the pair count.

    ``prune(i, j) -> True`` suppresses a pair before the callback — this is
    where the engine plugs in the paper's §IV-C elimination conditions.
    """
    pairs = 0
    for i, j in iter_overlapping_pairs(rects):
        if prune is not None and prune(i, j):
            continue
        on_pair(i, j)
        pairs += 1
    return pairs


def _build_events(rects: Sequence[Rect]) -> List[Tuple[int, int, int]]:
    events: List[Tuple[int, int, int]] = []
    for index, rect in enumerate(rects):
        if rect.is_empty:
            continue
        # Sort key -y gives descending y; ENTER(0) < EXIT(1) keeps touching
        # rects (one's bottom at another's top) paired.
        events.append((-rect.yhi, _ENTER, index))
        events.append((-rect.ylo, _EXIT, index))
    events.sort()
    return events
