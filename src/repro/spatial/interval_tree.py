"""Centered interval tree (paper §IV-D).

The paper's sequential mode uses an interval tree as the status structure of
the MBR sweepline "instead of segment trees for implementation simplicity".
As described there, an interval is stored in the highest node whose key lies
inside it, and every node keeps its intervals in two lists — one sorted by
left endpoints, one by right endpoints — which is exactly what makes the
three-way overlap query efficient:

* query right of the node key: only intervals whose **right** endpoint
  reaches back to the query can overlap — walk the right-sorted list;
* query left of the node key: symmetric on **left** endpoints;
* query straddling the key: every interval at the node overlaps.

The skeleton is built once over the (sorted, de-duplicated) candidate keys —
the sweepline knows all interval endpoints up front — so no rebalancing is
needed; ``insert``/``remove`` only touch node lists.
"""

from __future__ import annotations

import bisect
from typing import Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class _Node(Generic[T]):
    __slots__ = ("key", "left", "right", "by_lo", "by_hi", "size")

    def __init__(self, key: int) -> None:
        self.key = key
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None
        # by_lo: (lo, hi, item) ascending by lo; by_hi: (-hi, lo, item) so the
        # list is *descending* in hi while bisect still works ascending.
        self.by_lo: List[Tuple[int, int, T]] = []
        self.by_hi: List[Tuple[int, int, T]] = []
        self.size = 0  # intervals stored in this subtree


class IntervalTree(Generic[T]):
    """Static-skeleton interval tree over a known key domain.

    Parameters
    ----------
    keys:
        Candidate keys; every interval later inserted must contain at least
        one of them (inserting an interval ``[lo, hi]`` whose ``lo`` was
        passed as a key always satisfies this).
    """

    def __init__(self, keys: Sequence[int]) -> None:
        unique = sorted(set(keys))
        self._root = self._build(unique, 0, len(unique))
        self._count = 0

    @classmethod
    def for_intervals(cls, intervals: Sequence[Tuple[int, int]]) -> "IntervalTree[T]":
        """Skeleton sized for a known interval population (uses left endpoints)."""
        return cls([lo for lo, _ in intervals])

    def _build(self, keys: Sequence[int], lo: int, hi: int) -> Optional[_Node[T]]:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        node: _Node[T] = _Node(keys[mid])
        node.left = self._build(keys, lo, mid)
        node.right = self._build(keys, mid + 1, hi)
        return node

    def __len__(self) -> int:
        return self._count

    # -- updates -------------------------------------------------------------

    def insert(self, lo: int, hi: int, item: T) -> None:
        """Store ``item`` with closed interval ``[lo, hi]``."""
        if lo > hi:
            raise ValueError(f"inverted interval [{lo}, {hi}]")
        node = self._root
        while node is not None:
            node.size += 1
            if hi < node.key:
                node = node.left
            elif lo > node.key:
                node = node.right
            else:
                bisect.insort(node.by_lo, (lo, hi, item))
                bisect.insort(node.by_hi, (-hi, lo, item))
                self._count += 1
                return
        raise ValueError(f"interval [{lo}, {hi}] contains no key of this tree's skeleton")

    def remove(self, lo: int, hi: int, item: T) -> None:
        """Remove a previously inserted interval; raises KeyError if absent."""
        node = self._root
        path: List[_Node[T]] = []
        while node is not None:
            path.append(node)
            if hi < node.key:
                node = node.left
            elif lo > node.key:
                node = node.right
            else:
                self._remove_from_node(node, lo, hi, item)
                for visited in path:
                    visited.size -= 1
                self._count -= 1
                return
        raise KeyError(f"interval [{lo}, {hi}] ({item!r}) not in tree")

    @staticmethod
    def _remove_from_node(node: _Node[T], lo: int, hi: int, item: T) -> None:
        entry_lo = (lo, hi, item)
        i = bisect.bisect_left(node.by_lo, entry_lo)
        if i >= len(node.by_lo) or node.by_lo[i] != entry_lo:
            raise KeyError(f"interval [{lo}, {hi}] ({item!r}) not in tree")
        node.by_lo.pop(i)
        entry_hi = (-hi, lo, item)
        j = bisect.bisect_left(node.by_hi, entry_hi)
        node.by_hi.pop(j)

    # -- queries -------------------------------------------------------------

    def query(self, qlo: int, qhi: int) -> List[T]:
        """All items whose intervals overlap the closed query ``[qlo, qhi]``."""
        if qlo > qhi:
            raise ValueError(f"inverted query [{qlo}, {qhi}]")
        out: List[T] = []
        self._query(self._root, qlo, qhi, out)
        return out

    def _query(self, node: Optional[_Node[T]], qlo: int, qhi: int, out: List[T]) -> None:
        while node is not None and node.size > 0:
            if qhi < node.key:
                # Only intervals reaching left to qhi can match: lo <= qhi.
                for lo, _, item in node.by_lo:
                    if lo > qhi:
                        break
                    out.append(item)
                node = node.left
            elif qlo > node.key:
                # Only intervals reaching right to qlo can match: hi >= qlo.
                for neg_hi, _, item in node.by_hi:
                    if -neg_hi < qlo:
                        break
                    out.append(item)
                node = node.right
            else:
                # Node key inside the query: every stored interval overlaps.
                out.extend(item for _, _, item in node.by_lo)
                self._query(node.left, qlo, qhi, out)
                node = node.right

    def stab(self, value: int) -> List[T]:
        """All items whose intervals contain ``value``."""
        return self.query(value, value)

    def items(self) -> List[Tuple[int, int, T]]:
        """All stored ``(lo, hi, item)`` triples (no particular order)."""
        out: List[Tuple[int, int, T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None or node.size == 0:
                continue
            out.extend(node.by_lo)
            stack.append(node.left)
            stack.append(node.right)
        return out
