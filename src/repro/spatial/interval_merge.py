"""Interval merging for adaptive layout partition (paper §IV-B, Algorithm 1).

The row partition reduces to merging the y-extents of all cell instances into
a disjoint cover. The paper solves it with a *pigeonhole array* in
``Θ(k + N)`` — ``k`` merges (one per cell), ``N`` domain values — arguing
that in real layouts ``k ≫ N`` (many cells, few distinct row coordinates)
and that a flat array has far better locality than sorting. The sort-based
``Ω(k log k)`` alternative the paper mentions is implemented alongside for
the ablation benchmark.

The pigeonhole array is indexed by *coordinate-compressed* endpoints
("discretization assumed" in the paper): ``A[i]`` holds the furthest right
endpoint of any interval starting at or before domain value ``i`` seen so
far, initialized to ``i`` itself; a single left-to-right scan then emits the
disjoint cover.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..geometry import Interval, Rect, coalesce


def merge_intervals_pigeonhole(intervals: Sequence[Interval]) -> List[Interval]:
    """Algorithm 1: pigeonhole-array interval merging.

    Returns the disjoint, sorted cover of the input intervals. Touching
    closed intervals (``[0, 5]`` and ``[5, 9]``) merge; integer-adjacent
    ones (``[0, 5]`` and ``[6, 9]``) do not.
    """
    if not intervals:
        return []

    # Discretize: the pigeonhole array is indexed by compressed endpoints.
    domain = _compress_endpoints(intervals)
    values, index_of = domain
    array = list(range(len(values)))  # step 1: A[i] = i

    # Step 2: one O(1) update per merge — A[l] <- max(A[l], r).
    for interval in intervals:
        lo_idx = index_of[interval.lo]
        hi_idx = index_of[interval.hi]
        if array[lo_idx] < hi_idx:
            array[lo_idx] = hi_idx

    # Step 3: scan A once, emitting a new interval whenever the running end
    # is exceeded by the scan position.
    result: List[Interval] = []
    end = -1
    start = -1
    for i, reach in enumerate(array):
        if i > end:
            if end >= 0:
                result.append(Interval(values[start], values[end]))
            start = i
            end = i
        if reach > end:
            end = reach
    if end >= 0:
        result.append(Interval(values[start], values[end]))
    return result


def merge_intervals_sorted(intervals: Sequence[Interval]) -> List[Interval]:
    """Sort-based Ω(k log k) merging — the baseline the paper compares against."""
    return coalesce(intervals)


def _compress_endpoints(
    intervals: Sequence[Interval],
) -> Tuple[List[int], Dict[int, int]]:
    values = sorted({v for iv in intervals for v in (iv.lo, iv.hi)})
    return values, {v: i for i, v in enumerate(values)}


def coalesce_rects(rects: Sequence[Rect]) -> List[Rect]:
    """Exact disjoint-cover of a union of closed rects (multi-window plans).

    The incremental engine merges overlapping/touching dirty windows into a
    canonical region set before gathering. The cover is *exact*: a point
    lies in some output rect iff it lies in some input rect, so overlap
    tests against the cover equal overlap tests against the input union.

    Built on the same interval merging as the row partition: the y-extents
    slice the plane into slabs, the x-intervals of the rects spanning each
    slab merge via :func:`merge_intervals_pigeonhole`, and columns with one
    x-span coalesce vertically the same way.
    """
    live = [r for r in rects if not r.is_empty]
    if not live:
        return []
    flat = [r for r in live if r.ylo < r.yhi]
    # Degenerate (zero-height) rects span no slab; merge them per scanline.
    lines: Dict[int, List[Interval]] = {}
    for r in live:
        if r.ylo == r.yhi:
            lines.setdefault(r.ylo, []).append(Interval(r.xlo, r.xhi))

    cover: List[Rect] = []
    ys = sorted({y for r in flat for y in (r.ylo, r.yhi)})
    for ylo, yhi in zip(ys, ys[1:]):
        spans = [
            Interval(r.xlo, r.xhi) for r in flat if r.ylo <= ylo and r.yhi >= yhi
        ]
        for iv in merge_intervals_pigeonhole(spans):
            cover.append(Rect(iv.lo, ylo, iv.hi, yhi))
    for y, spans in lines.items():
        for iv in merge_intervals_pigeonhole(spans):
            cover.append(Rect(iv.lo, y, iv.hi, y))

    # Vertically coalesce stacked slab rects sharing one x-span (adjacent
    # slabs touch at their shared y, so the closed-interval merge glues them).
    columns: Dict[Tuple[int, int], List[Interval]] = {}
    for r in cover:
        columns.setdefault((r.xlo, r.xhi), []).append(Interval(r.ylo, r.yhi))
    merged: List[Rect] = []
    for (xlo, xhi), spans in columns.items():
        for iv in merge_intervals_pigeonhole(spans):
            merged.append(Rect(xlo, iv.lo, xhi, iv.hi))
    return sorted(merged)
