"""Interval merging for adaptive layout partition (paper §IV-B, Algorithm 1).

The row partition reduces to merging the y-extents of all cell instances into
a disjoint cover. The paper solves it with a *pigeonhole array* in
``Θ(k + N)`` — ``k`` merges (one per cell), ``N`` domain values — arguing
that in real layouts ``k ≫ N`` (many cells, few distinct row coordinates)
and that a flat array has far better locality than sorting. The sort-based
``Ω(k log k)`` alternative the paper mentions is implemented alongside for
the ablation benchmark.

The pigeonhole array is indexed by *coordinate-compressed* endpoints
("discretization assumed" in the paper): ``A[i]`` holds the furthest right
endpoint of any interval starting at or before domain value ``i`` seen so
far, initialized to ``i`` itself; a single left-to-right scan then emits the
disjoint cover.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..geometry import Interval, coalesce


def merge_intervals_pigeonhole(intervals: Sequence[Interval]) -> List[Interval]:
    """Algorithm 1: pigeonhole-array interval merging.

    Returns the disjoint, sorted cover of the input intervals. Touching
    closed intervals (``[0, 5]`` and ``[5, 9]``) merge; integer-adjacent
    ones (``[0, 5]`` and ``[6, 9]``) do not.
    """
    if not intervals:
        return []

    # Discretize: the pigeonhole array is indexed by compressed endpoints.
    domain = _compress_endpoints(intervals)
    values, index_of = domain
    array = list(range(len(values)))  # step 1: A[i] = i

    # Step 2: one O(1) update per merge — A[l] <- max(A[l], r).
    for interval in intervals:
        lo_idx = index_of[interval.lo]
        hi_idx = index_of[interval.hi]
        if array[lo_idx] < hi_idx:
            array[lo_idx] = hi_idx

    # Step 3: scan A once, emitting a new interval whenever the running end
    # is exceeded by the scan position.
    result: List[Interval] = []
    end = -1
    start = -1
    for i, reach in enumerate(array):
        if i > end:
            if end >= 0:
                result.append(Interval(values[start], values[end]))
            start = i
            end = i
        if reach > end:
            end = reach
    if end >= 0:
        result.append(Interval(values[start], values[end]))
    return result


def merge_intervals_sorted(intervals: Sequence[Interval]) -> List[Interval]:
    """Sort-based Ω(k log k) merging — the baseline the paper compares against."""
    return coalesce(intervals)


def _compress_endpoints(
    intervals: Sequence[Interval],
) -> Tuple[List[int], Dict[int, int]]:
    values = sorted({v for iv in intervals for v in (iv.lo, iv.hi)})
    return values, {v: i for i, v in enumerate(values)}
