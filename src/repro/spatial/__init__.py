"""Spatial index structures (infrastructure layer).

The interval tree and sweepline implement the paper's sequential candidate
search (§IV-D, Fig. 3); interval merging implements Algorithm 1 behind the
adaptive row partition (§IV-B).
"""

from .interval_merge import (
    coalesce_rects,
    merge_intervals_pigeonhole,
    merge_intervals_sorted,
)
from .interval_tree import IntervalTree
from .regions import RegionSet
from .rtree import RTree
from .sweepline import (
    brute_force_pairs,
    iter_bipartite_overlaps,
    iter_overlapping_pairs,
    report_overlapping_pairs,
    sweep,
)

__all__ = [
    "IntervalTree",
    "RTree",
    "RegionSet",
    "brute_force_pairs",
    "coalesce_rects",
    "iter_bipartite_overlaps",
    "iter_overlapping_pairs",
    "merge_intervals_pigeonhole",
    "merge_intervals_sorted",
    "report_overlapping_pairs",
    "sweep",
]
