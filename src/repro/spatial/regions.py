"""Canonical multi-window region sets for incremental re-checking.

A :class:`RegionSet` is the engine's first-class "where to re-check"
object: one or more closed rects, normalised into the exact disjoint cover
:func:`~repro.spatial.interval_merge.coalesce_rects` produces. Overlap
tests against the set equal overlap tests against the union of the input
windows, so a windowed check filtered by a region set is exactly the full
check filtered to "overlaps any window".

The type is immutable, hashable, picklable (it rides inside multiprocess
task payloads), and has a deterministic ``repr`` (it is hashed into warm-
pool plan digests).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence, Tuple, Union

from ..geometry import EMPTY_RECT, Rect
from .interval_merge import coalesce_rects

__all__ = ["RegionSet", "WindowsLike"]

#: Anything coercible into a region set: one rect, many, or a set already.
WindowsLike = Union[Rect, Sequence[Rect], "RegionSet"]


@dataclasses.dataclass(frozen=True)
class RegionSet:
    """A canonical set of closed rect windows (the exact union cover)."""

    rects: Tuple[Rect, ...]

    @classmethod
    def of(cls, windows: WindowsLike) -> "RegionSet":
        """Coerce a rect, an iterable of rects, or a region set."""
        if isinstance(windows, RegionSet):
            return windows
        if isinstance(windows, Rect):
            windows = [windows]
        return cls(tuple(coalesce_rects(list(windows))))

    def __post_init__(self) -> None:
        bounds = EMPTY_RECT
        for rect in self.rects:
            bounds = bounds.union(rect)
        object.__setattr__(self, "_bounds", bounds)

    @property
    def is_empty(self) -> bool:
        return not self.rects

    @property
    def bounds(self) -> Rect:
        """MBR of the whole set (pruning; coloring/overlap gather reach)."""
        return self._bounds  # type: ignore[attr-defined]

    def overlaps(self, rect: Rect) -> bool:
        """True iff ``rect`` shares a point with any window (exact)."""
        if not self._bounds.overlaps(rect):  # type: ignore[attr-defined]
            return False
        return any(r.overlaps(rect) for r in self.rects)

    def inflated(self, margin: int) -> "RegionSet":
        """Every window grown by ``margin``, re-coalesced."""
        if margin == 0:
            return self
        return RegionSet.of([r.inflated(margin) for r in self.rects])

    def union(self, other: "RegionSet") -> "RegionSet":
        return RegionSet.of(list(self.rects) + list(other.rects))

    def __iter__(self) -> Iterable[Rect]:
        return iter(self.rects)

    def __len__(self) -> int:
        return len(self.rects)
