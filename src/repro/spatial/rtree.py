"""STR-packed R-tree (paper §I: "hierarchies of bounding volumes like
r-tree and its variants").

A static bulk-loaded R-tree using Sort-Tile-Recursive packing: entries are
sorted by x-center into vertical slices, each slice sorted by y-center and
cut into nodes of ``fanout`` entries. Queries descend the tree, pruning
nodes whose MBR misses the window — the same BVH idea the engine's
hierarchy tree applies to the *design* hierarchy, here applied to an
arbitrary rectangle population. Used by the spatial-index ablation and
available as a general query structure.
"""

from __future__ import annotations

import math
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from ..geometry import EMPTY_RECT, Rect, union_all

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("mbr", "children", "entries")

    def __init__(self) -> None:
        self.mbr: Rect = EMPTY_RECT
        self.children: List["_Node[T]"] = []
        self.entries: List[Tuple[Rect, T]] = []  # leaves only

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTree(Generic[T]):
    """Static R-tree over ``(rect, item)`` pairs, STR bulk-loaded."""

    def __init__(
        self, entries: Sequence[Tuple[Rect, T]], *, fanout: int = 16
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.fanout = fanout
        clean = [(rect, item) for rect, item in entries if not rect.is_empty]
        self._size = len(clean)
        self._root = self._build_leaves(clean)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 0
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.children[0]
            height += 1
        return height + 1 if node is not None else 0

    # -- construction (Sort-Tile-Recursive) ---------------------------------

    def _build_leaves(self, entries: List[Tuple[Rect, T]]) -> Optional[_Node[T]]:
        if not entries:
            return None
        leaves: List[_Node[T]] = []
        for block in _str_tiles(entries, self.fanout, key=lambda e: e[0]):
            leaf: _Node[T] = _Node()
            leaf.entries = block
            leaf.mbr = union_all(rect for rect, _ in block)
            leaves.append(leaf)
        return self._pack_upward(leaves)

    def _pack_upward(self, nodes: List[_Node[T]]) -> _Node[T]:
        while len(nodes) > 1:
            parents: List[_Node[T]] = []
            for block in _str_tiles(nodes, self.fanout, key=lambda n: n.mbr):
                parent: _Node[T] = _Node()
                parent.children = block
                parent.mbr = union_all(child.mbr for child in block)
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # -- queries ---------------------------------------------------------------

    def query(self, window: Rect) -> List[T]:
        """All items whose rects overlap the closed ``window``."""
        out: List[T] = []
        if self._root is None or window.is_empty:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.mbr.overlaps(window):
                continue
            if node.is_leaf:
                out.extend(item for rect, item in node.entries if rect.overlaps(window))
            else:
                stack.extend(node.children)
        return out

    def query_count(self, window: Rect) -> Tuple[int, int]:
        """(hits, nodes visited) — instrumentation for the ablation."""
        if self._root is None or window.is_empty:
            return 0, 0
        hits = 0
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if not node.mbr.overlaps(window):
                continue
            if node.is_leaf:
                hits += sum(1 for rect, _ in node.entries if rect.overlaps(window))
            else:
                stack.extend(node.children)
        return hits, visited

    def overlapping_pairs(self) -> List[Tuple[T, T]]:
        """All overlapping item pairs via per-entry window queries.

        The R-tree alternative to the sweepline's pair reporting; each
        unordered pair appears once (items must be orderable).
        """
        pairs: List[Tuple[T, T]] = []
        if self._root is None:
            return pairs
        for rect, item in self._iter_entries(self._root):
            for other in self.query(rect):
                if other > item:
                    pairs.append((item, other))
        return pairs

    def _iter_entries(self, node: _Node[T]):
        if node.is_leaf:
            yield from node.entries
        else:
            for child in node.children:
                yield from self._iter_entries(child)


def _str_tiles(items: list, fanout: int, *, key) -> List[list]:
    """Sort-Tile-Recursive grouping of items into blocks of <= fanout."""
    n = len(items)
    num_blocks = math.ceil(n / fanout)
    slices = math.ceil(math.sqrt(num_blocks))
    per_slice = slices * fanout
    by_x = sorted(items, key=lambda it: key(it).center.x)
    blocks: List[list] = []
    for s in range(0, n, per_slice):
        chunk = sorted(by_x[s : s + per_slice], key=lambda it: key(it).center.y)
        for b in range(0, len(chunk), fanout):
            blocks.append(chunk[b : b + fanout])
    return blocks
