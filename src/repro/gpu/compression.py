"""Device-buffer compression (paper roadmap: "data compression techniques
for memory footprint reduction").

Edge buffers dominate the parallel mode's device footprint. Two lossless
techniques are implemented, matching what GPU geometry engines deploy:

* **dtype narrowing** — coordinates are stored in the smallest signed
  integer type that holds their range (most layouts fit comfortably in
  int32; small cells in int16), and the +/-1 interior signs in int8;
* **delta encoding** — the ``fixed`` coordinate array is sorted by the
  sweepline executor anyway, so it is stored sorted as a base value plus
  per-element deltas, which are tiny (track pitches) and narrow further.

Compression is lossless: ``decompress`` reproduces the original arrays
exactly (sweep order for ``fixed``), and the compressed form knows both
footprints so the saving is measurable per rule.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from .kernels import EdgeBuffer

_SIGNED_TYPES = (np.int8, np.int16, np.int32, np.int64)


def narrowest_signed_dtype(lo: int, hi: int) -> np.dtype:
    """Smallest signed integer dtype covering the closed range [lo, hi]."""
    for dtype in _SIGNED_TYPES:
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    raise OverflowError(f"range [{lo}, {hi}] exceeds int64")


def _narrow(array: np.ndarray) -> np.ndarray:
    if len(array) == 0:
        return array.astype(np.int8)
    dtype = narrowest_signed_dtype(int(array.min()), int(array.max()))
    return array.astype(dtype)


@dataclasses.dataclass
class CompressedEdgeBuffer:
    """Losslessly compressed edge buffer (sweep-sorted order)."""

    vertical: bool
    count: int
    fixed_base: int
    fixed_deltas: np.ndarray  # narrowed; cumsum + base reconstructs fixed
    lo: np.ndarray
    hi_minus_lo: np.ndarray  # span lengths are small; narrower than hi
    interior: np.ndarray  # int8
    poly: np.ndarray

    @property
    def nbytes(self) -> int:
        return (
            self.fixed_deltas.nbytes
            + self.lo.nbytes
            + self.hi_minus_lo.nbytes
            + self.interior.nbytes
            + self.poly.nbytes
        )

    def decompress(self) -> EdgeBuffer:
        """Reconstruct the exact int64 buffer (in fixed-sorted order)."""
        fixed = self.fixed_base + np.cumsum(
            self.fixed_deltas.astype(np.int64), dtype=np.int64
        )
        lo = self.lo.astype(np.int64)
        return EdgeBuffer(
            self.vertical,
            fixed,
            lo,
            lo + self.hi_minus_lo.astype(np.int64),
            self.interior.astype(np.int64),
            self.poly.astype(np.int64),
        )


def compress_edge_buffer(buffer: EdgeBuffer) -> CompressedEdgeBuffer:
    """Compress an edge buffer (sorting by the fixed coordinate first)."""
    sorted_buf = buffer.sorted_by_fixed()
    n = len(sorted_buf)
    if n == 0:
        empty8 = np.zeros(0, dtype=np.int8)
        return CompressedEdgeBuffer(
            buffer.vertical, 0, 0, empty8, empty8, empty8, empty8, empty8
        )
    fixed = sorted_buf.fixed
    deltas = np.diff(fixed, prepend=fixed[0])
    deltas[0] = 0
    return CompressedEdgeBuffer(
        vertical=buffer.vertical,
        count=n,
        fixed_base=int(fixed[0]),
        fixed_deltas=_narrow(deltas),
        lo=_narrow(sorted_buf.lo),
        hi_minus_lo=_narrow(sorted_buf.hi - sorted_buf.lo),
        interior=sorted_buf.interior.astype(np.int8),
        poly=_narrow(sorted_buf.poly),
    )


@dataclasses.dataclass
class CompressionReport:
    """Footprint accounting across one rule's buffers."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    buffers: int = 0

    @property
    def ratio(self) -> float:
        """Compression factor (raw / compressed); 1.0 when nothing packed."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    def add(self, buffer: EdgeBuffer, compressed: CompressedEdgeBuffer) -> None:
        self.raw_bytes += buffer.nbytes
        self.compressed_bytes += compressed.nbytes
        self.buffers += 1


def measure_compression(buffers: Dict[str, EdgeBuffer]) -> CompressionReport:
    """Compress a pair of packed buffers and report the footprint saving."""
    report = CompressionReport()
    for buffer in buffers.values():
        if len(buffer):
            report.add(buffer, compress_edge_buffer(buffer))
    return report
