"""Data-parallel check kernels (paper §IV-E) as NumPy array programs.

Before checking, the engine packs the edges of the relevant polygons into
flattened arrays (:func:`pack_edges`) that are copied to the simulated
device. Two executors are provided per the paper:

* the **brute-force** executor enumerates all edge pairs of a task at once —
  right for smaller tasks;
* the **sweepline** executor mirrors X-Check's two-kernel design: a first
  parallel pass (sort + scan) determines each edge's *check range* — the
  slice of edges within the rule distance — and a second pass checks every
  edge against exactly the edges in its range. The two passes are separate
  functions, as the paper separates the two kernel launches.

Fused (segmented) execution: after the adaptive row partition, every row is
an independent task, but launching one kernel per row wastes the device on
launch latency and tiny grids. The segmented kernel variants
(:func:`kernel_pairs_bruteforce_segmented`, :func:`kernel_pairs_sweep_segmented`,
:func:`kernel_corner_pairs_segmented`) take buffers carrying a ``segment``
(row-id) array and evaluate *all* rows in a single launch, masking
cross-segment pairs, so R rows cost one kernel and one copy set instead of
R of each.

Edge classification matches :mod:`repro.checks.edges` bit for bit: an edge
carries the sign of its interior normal along the perpendicular axis, and

* a *width* pair has interiors facing: ``interior[a] = +1``,
  ``interior[b] = -1`` with ``fixed[b] > fixed[a]`` and the same polygon;
* a *spacing* pair has exteriors facing: ``interior[a] = -1``,
  ``interior[b] = +1`` with ``fixed[b] > fixed[a]``, any polygons (the
  same-polygon case is a notch).

All kernels return a :class:`PairHits` batch of violation strips; the engine
converts them to :class:`~repro.checks.base.Violation` objects on the host.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Polygon

_INT = np.int64


@dataclasses.dataclass
class EdgeBuffer:
    """Flattened edges of one orientation.

    ``fixed`` is the supporting-line coordinate (x for vertical edges, y for
    horizontal); ``lo``/``hi`` the span along the other axis; ``interior``
    the +/-1 sign of the interior normal along the perpendicular axis;
    ``poly`` the owning polygon id. ``segment`` (optional) carries the
    row-partition id of each edge; the segmented kernels never pair edges
    from different segments.
    """

    vertical: bool
    fixed: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    interior: np.ndarray
    poly: np.ndarray
    segment: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.fixed)

    @property
    def nbytes(self) -> int:
        total = self.fixed.nbytes + self.lo.nbytes + self.hi.nbytes + (
            self.interior.nbytes + self.poly.nbytes
        )
        if self.segment is not None:
            total += self.segment.nbytes
        return total

    def take(self, order: np.ndarray) -> "EdgeBuffer":
        """Reindexed copy (device-side gather)."""
        return EdgeBuffer(
            self.vertical,
            self.fixed[order],
            self.lo[order],
            self.hi[order],
            self.interior[order],
            self.poly[order],
            None if self.segment is None else self.segment[order],
        )

    def sorted_by_fixed(self) -> "EdgeBuffer":
        """Stable-sorted copy by supporting-line coordinate (sweep pass 1a)."""
        return self.take(np.argsort(self.fixed, kind="stable"))


@dataclasses.dataclass
class PairHits:
    """Violation strips found by a pair kernel (device-side result arrays)."""

    xlo: np.ndarray
    ylo: np.ndarray
    xhi: np.ndarray
    yhi: np.ndarray
    measured: np.ndarray
    poly_a: np.ndarray
    poly_b: np.ndarray

    def __len__(self) -> int:
        return len(self.measured)

    @classmethod
    def empty(cls) -> "PairHits":
        z = np.zeros(0, dtype=_INT)
        return cls(z, z, z, z, z, z, z)

    @classmethod
    def concatenate(cls, batches: Sequence["PairHits"]) -> "PairHits":
        real = [b for b in batches if len(b)]
        if not real:
            return cls.empty()
        return cls(*[np.concatenate([getattr(b, f.name) for b in real])
                     for f in dataclasses.fields(cls)])


def pack_edges(
    polygons: Sequence[Polygon], poly_ids: Optional[Sequence[int]] = None
) -> Dict[str, EdgeBuffer]:
    """Pack polygon edges into per-orientation flattened arrays.

    Returns ``{"v": vertical_buffer, "h": horizontal_buffer}``. ``poly_ids``
    defaults to the polygon's index in the sequence.

    Fully vectorised: vertices are flattened once, successors computed with
    a wrap-around index array (as in :func:`kernel_area`), and the two
    orientations split with boolean masks — no per-edge Python tuples.
    """
    counts = np.fromiter(
        (len(p.vertices) for p in polygons), dtype=_INT, count=len(polygons)
    )
    total = int(counts.sum())
    if total == 0:
        z = np.zeros(0, dtype=_INT)
        return {
            "v": EdgeBuffer(True, z, z, z, z, z),
            "h": EdgeBuffer(False, z, z, z, z, z),
        }
    xs = np.fromiter(
        (v.x for p in polygons for v in p.vertices), dtype=_INT, count=total
    )
    ys = np.fromiter(
        (v.y for p in polygons for v in p.vertices), dtype=_INT, count=total
    )
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(_INT)
    nxt = np.arange(total, dtype=_INT) + 1
    nxt[offsets + counts - 1] = offsets  # each polygon's last edge wraps
    x2, y2 = xs[nxt], ys[nxt]
    if poly_ids is not None:
        pid = np.repeat(np.asarray(poly_ids, dtype=_INT), counts)
    else:
        pid = np.repeat(np.arange(len(polygons), dtype=_INT), counts)

    vmask = xs == x2  # vertical; NORTH (+y travel) has interior east (+1)
    v = EdgeBuffer(
        True,
        xs[vmask],
        np.minimum(ys, y2)[vmask],
        np.maximum(ys, y2)[vmask],
        np.where(y2 > ys, 1, -1).astype(_INT)[vmask],
        pid[vmask],
    )
    hmask = ~vmask  # horizontal; EAST (+x travel) has interior south (-1)
    h = EdgeBuffer(
        False,
        ys[hmask],
        np.minimum(xs, x2)[hmask],
        np.maximum(xs, x2)[hmask],
        np.where(x2 > xs, -1, 1).astype(_INT)[hmask],
        pid[hmask],
    )
    return {"v": v, "h": h}


# ---------------------------------------------------------------------------
# Pair evaluation shared by all executors
# ---------------------------------------------------------------------------


def _evaluate_pairs(
    buf: EdgeBuffer,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    threshold: int,
    *,
    want_width: bool,
) -> PairHits:
    """Classify candidate (a, b) pairs with ``fixed[b] >= fixed[a]`` intended.

    Width pairs require ``interior[a] == +1`` and ``interior[b] == -1`` and
    the same polygon; spacing pairs the opposite signs, a strictly positive
    gap, and any polygons. Buffers carrying a ``segment`` array additionally
    reject cross-segment pairs (rows are independent tasks).
    """
    if len(idx_a) == 0:
        return PairHits.empty()
    fa = buf.fixed[idx_a]
    fb = buf.fixed[idx_b]
    gap = fb - fa
    lo = np.maximum(buf.lo[idx_a], buf.lo[idx_b])
    hi = np.minimum(buf.hi[idx_a], buf.hi[idx_b])
    sign_a = 1 if want_width else -1
    mask = (
        (gap >= 1)  # facing needs a strictly positive separation (host parity)
        & (gap < threshold)
        & (hi > lo)
        & (buf.interior[idx_a] == sign_a)
        & (buf.interior[idx_b] == -sign_a)
    )
    if buf.segment is not None:
        mask &= buf.segment[idx_a] == buf.segment[idx_b]
    if want_width:
        mask &= buf.poly[idx_a] == buf.poly[idx_b]
    if not mask.any():
        return PairHits.empty()
    fa, fb, lo, hi, gap = fa[mask], fb[mask], lo[mask], hi[mask], gap[mask]
    pa = buf.poly[idx_a[mask]]
    pb = buf.poly[idx_b[mask]]
    if buf.vertical:
        return PairHits(fa, lo, fb, hi, gap, pa, pb)
    return PairHits(lo, fa, hi, fb, gap, pa, pb)


# ---------------------------------------------------------------------------
# Brute-force executor (smaller tasks)
# ---------------------------------------------------------------------------


def kernel_pairs_bruteforce(
    buf: EdgeBuffer, threshold: int, *, want_width: bool, chunk: int = 1024
) -> PairHits:
    """All-pairs kernel: one simulated thread per edge pair.

    Pairs are oriented so ``fixed[b] >= fixed[a]`` (with a deterministic
    tie-break) so every geometric pair is evaluated exactly once. ``chunk``
    bounds the materialized pair block, standing in for the thread-block
    size of the CUDA grid.
    """
    n = len(buf)
    if n < 2:
        return PairHits.empty()
    batches: List[PairHits] = []
    for start in range(0, n - 1, chunk):
        # Upper-triangular enumeration: row i contributes pairs (i, i+1..n-1),
        # so each unordered pair is materialized exactly once — half the
        # memory of the old full chunk×n block + mask. Orientation is fixed
        # afterwards so ``fixed[b] >= fixed[a]`` still holds; equal-fixed
        # pairs survive enumeration but the ``gap >= 1`` mask rejects them,
        # exactly as the old strict ``<`` filter did.
        rows = np.arange(start, min(start + chunk, n - 1), dtype=_INT)
        c = (n - 1) - rows
        total = int(c.sum())
        idx_a = np.repeat(rows, c)
        cc = np.cumsum(c)
        offsets = np.arange(total, dtype=_INT) - np.repeat(cc - c, c)
        idx_b = idx_a + 1 + offsets
        swap = buf.fixed[idx_a] > buf.fixed[idx_b]
        a = np.where(swap, idx_b, idx_a)
        b = np.where(swap, idx_a, idx_b)
        batches.append(
            _evaluate_pairs(buf, a, b, threshold, want_width=want_width)
        )
    return PairHits.concatenate(batches)


# ---------------------------------------------------------------------------
# Sweepline executor (larger tasks): two kernels, as in X-Check / the paper
# ---------------------------------------------------------------------------


def kernel_sweep_ranges(sorted_buf: EdgeBuffer, threshold: int) -> Tuple[np.ndarray, np.ndarray]:
    """Kernel 1: per-edge check range over the fixed-coordinate-sorted buffer.

    For each edge ``i`` the range is the index slice ``[begin[i], end[i])``
    of edges whose supporting line lies within ``threshold - 1`` beyond
    edge ``i``'s (strictly to its right for spacing, inclusively at equal
    coordinates handled by the caller's tie rule). Computed with two
    vectorized binary searches — the parallel-scan stand-in.
    """
    fixed = sorted_buf.fixed
    begin = np.searchsorted(fixed, fixed, side="right")
    end = np.searchsorted(fixed, fixed + (threshold - 1), side="right")
    return begin.astype(_INT), end.astype(_INT)


def kernel_sweep_check(
    sorted_buf: EdgeBuffer,
    begin: np.ndarray,
    end: np.ndarray,
    threshold: int,
    *,
    want_width: bool,
) -> PairHits:
    """Kernel 2: one simulated thread per edge checks its whole range."""
    counts = (end - begin).clip(min=0)
    total = int(counts.sum())
    if total == 0:
        return PairHits.empty()
    idx_a = np.repeat(np.arange(len(sorted_buf), dtype=_INT), counts)
    # offsets within each range: arange concatenation without a Python loop
    cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=_INT) - np.repeat(cum - counts, counts)
    idx_b = np.repeat(begin, counts) + offsets
    return _evaluate_pairs(sorted_buf, idx_a, idx_b, threshold, want_width=want_width)


def kernel_pairs_sweep(buf: EdgeBuffer, threshold: int, *, want_width: bool) -> PairHits:
    """Both sweep kernels back to back (sort -> ranges -> checks)."""
    sorted_buf = buf.sorted_by_fixed()
    begin, end = kernel_sweep_ranges(sorted_buf, threshold)
    return kernel_sweep_check(sorted_buf, begin, end, threshold, want_width=want_width)


# ---------------------------------------------------------------------------
# Segmented (fused) executors: all rows of a rule in one launch
# ---------------------------------------------------------------------------


def _segment_pair_blocks(counts: np.ndarray, chunk: int):
    """Yield ``(idx_a, idx_b)`` blocks enumerating in-segment unordered pairs.

    ``counts[i]`` is the number of in-segment successors of sorted edge
    ``i`` (edges ``i+1 .. i+counts[i]`` share its segment). Blocks bound the
    materialized pair count by roughly ``chunk`` — the thread-block tiling
    of the fused grid.
    """
    n = len(counts)
    cum = np.cumsum(counts)
    row0 = 0
    base = 0
    while row0 < n:
        row1 = int(np.searchsorted(cum, base + chunk, side="left")) + 1
        row1 = max(row1, row0 + 1)
        rows = np.arange(row0, min(row1, n), dtype=_INT)
        c = counts[rows]
        total = int(c.sum())
        if total:
            idx_a = np.repeat(rows, c)
            cc = np.cumsum(c)
            offsets = np.arange(total, dtype=_INT) - np.repeat(cc - c, c)
            yield idx_a, idx_a + 1 + offsets
        base += total
        row0 = min(row1, n)


def kernel_pairs_bruteforce_segmented(
    buf: EdgeBuffer, threshold: int, *, want_width: bool, chunk: int = 1 << 20
) -> PairHits:
    """Batched brute force over every segment in one launch.

    Edges are grouped by segment (stable sort keeps in-row order); each
    unordered in-segment pair is enumerated exactly once and oriented so
    ``fixed[b] >= fixed[a]``, matching the per-task brute-force kernel.
    """
    n = len(buf)
    if n < 2:
        return PairHits.empty()
    if buf.segment is None:
        return kernel_pairs_bruteforce(buf, threshold, want_width=want_width)
    s = buf.take(np.argsort(buf.segment, kind="stable"))
    seg_end = np.searchsorted(s.segment, s.segment, side="right")
    counts = (seg_end - np.arange(n, dtype=_INT) - 1).clip(min=0)
    batches: List[PairHits] = []
    for idx_a, idx_b in _segment_pair_blocks(counts, chunk):
        swap = s.fixed[idx_a] > s.fixed[idx_b]
        a = np.where(swap, idx_b, idx_a)
        b = np.where(swap, idx_a, idx_b)
        batches.append(_evaluate_pairs(s, a, b, threshold, want_width=want_width))
    return PairHits.concatenate(batches)


def kernel_pairs_sweep_segmented(
    buf: EdgeBuffer, threshold: int, *, want_width: bool
) -> PairHits:
    """Segmented two-kernel sweep: all segments sorted and scanned at once.

    Edges sort on a composite key that keeps segments contiguous and at
    least ``threshold + 1`` apart, so the vectorised range scan of
    :func:`kernel_sweep_ranges` can never produce a cross-segment check
    range; the check kernel is then identical to the per-task sweep.
    """
    if len(buf) < 2:
        return PairHits.empty()
    if buf.segment is None:
        return kernel_pairs_sweep(buf, threshold, want_width=want_width)
    fixed = buf.fixed
    fmin = int(fixed.min())
    span = int(fixed.max()) - fmin + max(int(threshold), 0) + 1
    key = (fixed - fmin) + buf.segment * span
    order = np.argsort(key, kind="stable")
    s = buf.take(order)
    skey = key[order]
    begin = np.searchsorted(skey, skey, side="right").astype(_INT)
    end = np.searchsorted(skey, skey + (threshold - 1), side="right").astype(_INT)
    return kernel_sweep_check(s, begin, end, threshold, want_width=want_width)


# ---------------------------------------------------------------------------
# Area kernel
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class VertexBuffer:
    """Flattened polygon vertices with per-polygon offsets (for reduceat)."""

    xs: np.ndarray
    ys: np.ndarray
    offsets: np.ndarray  # start index of each polygon; len == npolys
    counts: np.ndarray
    poly: np.ndarray  # polygon ids, len == npolys

    def __len__(self) -> int:
        return len(self.offsets)


def pack_vertices(
    polygons: Sequence[Polygon], poly_ids: Optional[Sequence[int]] = None
) -> VertexBuffer:
    """Pack polygon vertex lists into one flat buffer."""
    xs: List[int] = []
    ys: List[int] = []
    offsets: List[int] = []
    counts: List[int] = []
    ids: List[int] = []
    for index, polygon in enumerate(polygons):
        offsets.append(len(xs))
        counts.append(len(polygon.vertices))
        ids.append(poly_ids[index] if poly_ids is not None else index)
        for p in polygon.vertices:
            xs.append(p.x)
            ys.append(p.y)
    return VertexBuffer(
        np.asarray(xs, dtype=_INT),
        np.asarray(ys, dtype=_INT),
        np.asarray(offsets, dtype=_INT),
        np.asarray(counts, dtype=_INT),
        np.asarray(ids, dtype=_INT),
    )


def kernel_area(buf: VertexBuffer) -> np.ndarray:
    """Shoelace areas of all packed polygons (one simulated thread each)."""
    if len(buf) == 0:
        return np.zeros(0, dtype=_INT)
    nxt = np.arange(len(buf.xs), dtype=_INT) + 1
    ends = buf.offsets + buf.counts
    # The successor of each polygon's last vertex wraps to its first.
    nxt[ends - 1] = buf.offsets
    cross = buf.xs * buf.ys[nxt] - buf.xs[nxt] * buf.ys
    sums = np.add.reduceat(cross, buf.offsets)
    return np.abs(sums) // 2


# ---------------------------------------------------------------------------
# Enclosure kernel (rectangle fast path)
# ---------------------------------------------------------------------------


def kernel_enclosure_margins(
    via_rects: np.ndarray, metal_rects: np.ndarray, pair_via: np.ndarray, pair_metal: np.ndarray
) -> np.ndarray:
    """Per-candidate-pair enclosure margins for rectangle geometry.

    ``*_rects`` are ``(n, 4)`` arrays of ``xlo, ylo, xhi, yhi``. A negative
    margin means the metal rectangle does not contain the via.
    """
    if len(pair_via) == 0:
        return np.zeros(0, dtype=_INT)
    v = via_rects[pair_via]
    m = metal_rects[pair_metal]
    margins = np.minimum.reduce(
        [
            v[:, 0] - m[:, 0],
            v[:, 1] - m[:, 1],
            m[:, 2] - v[:, 2],
            m[:, 3] - v[:, 3],
        ]
    )
    return margins.astype(_INT)


def reduce_enclosure_best(
    num_vias: int, pair_via: np.ndarray, margins: np.ndarray
) -> np.ndarray:
    """Best containing-margin per via (-1 where nothing contains it)."""
    best = np.full(num_vias, -1, dtype=_INT)
    containing = margins >= 0
    if containing.any():
        np.maximum.at(best, pair_via[containing], margins[containing])
    return best


# ---------------------------------------------------------------------------
# Corner-spacing kernel (roadmap extension: diagonal corner-to-corner checks)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CornerBuffer:
    """Flattened convex corners: position, exterior-quadrant signs, owner.

    ``segment`` (optional) carries the row-partition id; the segmented
    kernel never pairs corners from different segments.
    """

    x: np.ndarray
    y: np.ndarray
    qx: np.ndarray
    qy: np.ndarray
    poly: np.ndarray
    segment: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.x)

    def take(self, order: np.ndarray) -> "CornerBuffer":
        """Reindexed copy (device-side gather)."""
        return CornerBuffer(
            self.x[order],
            self.y[order],
            self.qx[order],
            self.qy[order],
            self.poly[order],
            None if self.segment is None else self.segment[order],
        )


def pack_corners(
    polygons: Sequence[Polygon], poly_ids: Optional[Sequence[int]] = None
) -> CornerBuffer:
    """Pack every polygon's convex corners into flat arrays."""
    from ..checks.corner import convex_corners

    xs: List[int] = []
    ys: List[int] = []
    qxs: List[int] = []
    qys: List[int] = []
    ids: List[int] = []
    for index, polygon in enumerate(polygons):
        pid = poly_ids[index] if poly_ids is not None else index
        for corner in convex_corners(polygon):
            xs.append(corner.x)
            ys.append(corner.y)
            qxs.append(corner.qx)
            qys.append(corner.qy)
            ids.append(pid)
    return CornerBuffer(
        np.asarray(xs, dtype=_INT),
        np.asarray(ys, dtype=_INT),
        np.asarray(qxs, dtype=_INT),
        np.asarray(qys, dtype=_INT),
        np.asarray(ids, dtype=_INT),
    )


@dataclasses.dataclass
class CornerHits:
    """Violating corner pairs (positions of both corners + floor distance)."""

    ax: np.ndarray
    ay: np.ndarray
    bx: np.ndarray
    by: np.ndarray
    measured: np.ndarray

    def __len__(self) -> int:
        return len(self.measured)

    @classmethod
    def empty(cls) -> "CornerHits":
        z = np.zeros(0, dtype=_INT)
        return cls(z, z, z, z, z)

    @classmethod
    def concatenate(cls, batches: Sequence["CornerHits"]) -> "CornerHits":
        real = [b for b in batches if len(b)]
        if not real:
            return cls.empty()
        return cls(*[np.concatenate([getattr(b, f.name) for b in real])
                     for f in dataclasses.fields(cls)])


def _evaluate_corner_pairs(
    buf: CornerBuffer, a: np.ndarray, b: np.ndarray, limit: int
) -> CornerHits:
    """Classify candidate corner pairs oriented so ``x[b] >= x[a]``.

    Keeps strictly diagonal (dx > 0, dy != 0), mutually-facing pairs closer
    than ``sqrt(limit)``; buffers carrying ``segment`` additionally reject
    cross-segment pairs.
    """
    dx = buf.x[b] - buf.x[a]
    dy = buf.y[b] - buf.y[a]
    keep = (dx > 0) & (dy != 0)
    if buf.segment is not None:
        keep &= buf.segment[a] == buf.segment[b]
    a, b, dx, dy = a[keep], b[keep], dx[keep], dy[keep]
    d2 = dx * dx + dy * dy
    sy = np.sign(dy)
    mask = (
        (d2 < limit)
        & (buf.qx[a] == 1)
        & (buf.qy[a] == sy)
        & (buf.qx[b] == -1)
        & (buf.qy[b] == -sy)
    )
    if not mask.any():
        return CornerHits.empty()
    a, b, d2 = a[mask], b[mask], d2[mask]
    measured = np.sqrt(d2.astype(np.float64)).astype(_INT)
    # Guard against float rounding at perfect squares.
    measured = np.where((measured + 1) ** 2 <= d2, measured + 1, measured)
    measured = np.where(measured ** 2 > d2, measured - 1, measured)
    return CornerHits(buf.x[a], buf.y[a], buf.x[b], buf.y[b], measured)


def kernel_corner_pairs(buf: CornerBuffer, threshold: int, chunk: int = 2048) -> CornerHits:
    """All mutually-facing diagonal corner pairs closer than ``threshold``.

    One simulated thread per corner pair, chunked; pairs are oriented by
    ``x`` so each unordered pair is evaluated once. Distances compare on
    exact squared integers; the reported measurement is the floor of the
    true Euclidean distance (matching the host procedure).
    """
    n = len(buf)
    if n < 2:
        return CornerHits.empty()
    limit = threshold * threshold
    out = []
    all_idx = np.arange(n, dtype=_INT)
    for start in range(0, n, chunk):
        rows = all_idx[start : start + chunk]
        a = np.repeat(rows, n)
        b = np.tile(all_idx, len(rows))
        out.append(_evaluate_corner_pairs(buf, a, b, limit))
    return CornerHits.concatenate(out)


def kernel_corner_pairs_segmented(
    buf: CornerBuffer, threshold: int, chunk: int = 1 << 20
) -> CornerHits:
    """All segments' corner pairs in one launch (fused-row execution).

    Corners are grouped by segment; each unordered in-segment pair is
    enumerated once and oriented by ``x``, matching the per-task kernel.
    """
    n = len(buf)
    if n < 2:
        return CornerHits.empty()
    if buf.segment is None:
        return kernel_corner_pairs(buf, threshold)
    limit = threshold * threshold
    s = buf.take(np.argsort(buf.segment, kind="stable"))
    seg_end = np.searchsorted(s.segment, s.segment, side="right")
    counts = (seg_end - np.arange(n, dtype=_INT) - 1).clip(min=0)
    out = []
    for idx_a, idx_b in _segment_pair_blocks(counts, chunk):
        swap = s.x[idx_a] > s.x[idx_b]
        a = np.where(swap, idx_b, idx_a)
        b = np.where(swap, idx_a, idx_b)
        out.append(_evaluate_corner_pairs(s, a, b, limit))
    return CornerHits.concatenate(out)
