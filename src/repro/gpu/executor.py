"""Execution policies — the Python analog of the paper's type-trait dispatch.

The paper's generic functors (Listing 2) take an *executor* that is either
an ``odrc::sequenced_policy`` (CPU) or a wrapper over a ``cudaStream_t``
(GPU), and dispatch with ``constexpr if`` on its type traits. Python has no
compile-time dispatch, so the same design point is expressed as two policy
classes and an :func:`is_device_policy` trait; generic algorithms branch on
the trait exactly once at their top, keeping CPU and GPU code paths as
separate as the paper's.
"""

from __future__ import annotations

from typing import Union

from .device import Device, Stream


class SequencedPolicy:
    """Marker for sequential host execution (``odrc::sequenced_policy``)."""

    is_device = False

    def __repr__(self) -> str:
        return "SequencedPolicy()"


class StreamExecutor:
    """Wrapper over a device stream: operations append to the stream.

    This is the execution seam the parallel backend dispatches through
    (Listing 2's ``stream_policy``): copies and launches are issued against
    the wrapped stream, host preprocessing is recorded against the device
    timeline, so swapping the executor swaps where the work lands.
    """

    is_device = True

    def __init__(self, stream: Stream) -> None:
        self.stream = stream

    @property
    def device(self) -> Device:
        return self.stream.device

    def memcpy_h2d(self, array, *, name: str = "h2d"):
        return self.stream.memcpy_h2d(array, name=name)

    def memcpy_d2h(self, array, *, name: str = "d2h"):
        return self.stream.memcpy_d2h(array, name=name)

    def launch(self, name: str, kernel, *args, items: int = 0, **kwargs):
        return self.stream.launch(name, kernel, *args, items=items, **kwargs)

    def record_host(self, name: str, seconds: float, *, items: int = 0) -> None:
        self.stream.device.record_host(name, seconds, items=items)

    def __repr__(self) -> str:
        return f"StreamExecutor({self.stream!r})"


ExecutionPolicy = Union[SequencedPolicy, StreamExecutor]

#: The default sequential policy instance.
seq = SequencedPolicy()


def is_device_policy(executor: ExecutionPolicy) -> bool:
    """The 'type trait' generic functors dispatch on (Listing 2, lines 5-8)."""
    return getattr(executor, "is_device", False)
