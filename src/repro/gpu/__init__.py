"""Simulated GPU substrate (paper §IV-E, §V-C).

Device/stream/timeline model (:mod:`.device`), stream-ordered memory
allocator (:mod:`.memory`), execution policies standing in for the paper's
type-trait dispatch (:mod:`.executor`), and the NumPy SPMD check kernels
(:mod:`.kernels`). See DESIGN.md §1 for why NumPy vectorisation preserves
the paper's GPU-vs-CPU behavioural shape.
"""

from .device import AsyncTimeline, Device, OpKind, OpRecord, Stream, TimelineSummary
from .executor import (
    ExecutionPolicy,
    SequencedPolicy,
    StreamExecutor,
    is_device_policy,
    seq,
)
from .kernels import (
    EdgeBuffer,
    PairHits,
    VertexBuffer,
    kernel_area,
    kernel_corner_pairs_segmented,
    kernel_enclosure_margins,
    kernel_pairs_bruteforce,
    kernel_pairs_bruteforce_segmented,
    kernel_pairs_sweep,
    kernel_pairs_sweep_segmented,
    kernel_sweep_check,
    kernel_sweep_ranges,
    pack_edges,
    pack_vertices,
    reduce_enclosure_best,
)
from .memory import AllocatorStats, DeviceBuffer, StreamOrderedAllocator
from .shmem import ArrayRef, ShmArena, shm_enabled

__all__ = [
    "AllocatorStats",
    "ArrayRef",
    "AsyncTimeline",
    "Device",
    "DeviceBuffer",
    "EdgeBuffer",
    "ExecutionPolicy",
    "OpKind",
    "OpRecord",
    "PairHits",
    "SequencedPolicy",
    "ShmArena",
    "Stream",
    "StreamExecutor",
    "StreamOrderedAllocator",
    "TimelineSummary",
    "VertexBuffer",
    "is_device_policy",
    "kernel_area",
    "kernel_corner_pairs_segmented",
    "kernel_enclosure_margins",
    "kernel_pairs_bruteforce",
    "kernel_pairs_bruteforce_segmented",
    "kernel_pairs_sweep",
    "kernel_pairs_sweep_segmented",
    "kernel_sweep_check",
    "kernel_sweep_ranges",
    "pack_edges",
    "pack_vertices",
    "reduce_enclosure_best",
    "seq",
    "shm_enabled",
]
