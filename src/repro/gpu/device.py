"""Simulated GPU device, streams, and an asynchronous-execution timeline.

The paper's parallel mode runs CUDA kernels and hides latency with streams
and asynchronous copies (§V-C). With no GPU available, this module provides
the same *program structure* over NumPy: kernels are vectorised array
programs executed eagerly on the host, but every operation — host-to-device
copy, kernel launch, device-to-host copy, host preprocessing — is recorded
with its issue order, stream, and measured duration.

:class:`AsyncTimeline` then replays the record under the CUDA execution
model (host issues asynchronously; ops on one stream serialize; ops on
different streams overlap with each other and with host work) to compute the
makespan the same schedule would achieve with a real asynchronous device.
This reproduces the §V-C analysis — e.g. that preprocessing of row *i+1*
overlaps the device checks of row *i* — which the paper itself defers to
future work ("runtime profiling and visualization ... left to future work").
"""

from __future__ import annotations

import dataclasses
import enum
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import DeviceError


class OpKind(enum.Enum):
    """Categories of recorded operations."""

    H2D = "h2d"
    D2H = "d2h"
    KERNEL = "kernel"
    HOST = "host"


@dataclasses.dataclass(frozen=True)
class OpRecord:
    """One recorded operation."""

    seq: int
    kind: OpKind
    name: str
    stream: Optional[int]  # None for host-side work
    seconds: float
    bytes: int = 0
    items: int = 0


class Stream:
    """An in-order queue of device operations (the CUDA stream analog)."""

    def __init__(self, device: "Device", stream_id: int) -> None:
        self.device = device
        self.stream_id = stream_id

    def memcpy_h2d(self, array: np.ndarray, *, name: str = "h2d") -> np.ndarray:
        """Asynchronous host-to-device copy (simulated: a real array copy)."""
        start = time.perf_counter()
        device_array = np.ascontiguousarray(array)
        if device_array is array:  # already contiguous: model the copy cost
            device_array = array.copy()
        seconds = time.perf_counter() - start
        self.device._record(OpKind.H2D, name, self.stream_id, seconds, device_array.nbytes)
        return device_array

    def memcpy_d2h(self, array: np.ndarray, *, name: str = "d2h") -> np.ndarray:
        """Asynchronous device-to-host copy."""
        start = time.perf_counter()
        host_array = array.copy()
        seconds = time.perf_counter() - start
        self.device._record(OpKind.D2H, name, self.stream_id, seconds, host_array.nbytes)
        return host_array

    def launch(self, name: str, kernel: Callable, *args, items: int = 0, **kwargs):
        """Launch a kernel on this stream; returns the kernel's result."""
        start = time.perf_counter()
        result = kernel(*args, **kwargs)
        seconds = time.perf_counter() - start
        self.device._record(OpKind.KERNEL, name, self.stream_id, seconds, 0, items)
        return result

    def __repr__(self) -> str:
        return f"Stream({self.stream_id} on {self.device.name!r})"


class Device:
    """The simulated device: owns streams and the operation record."""

    def __init__(self, name: str = "sim-gpu") -> None:
        self.name = name
        self.ops: List[OpRecord] = []
        self._streams: List[Stream] = []
        self._seq = 0
        self._counters: Dict[str, int] = self._zero_counters()

    @staticmethod
    def _zero_counters() -> Dict[str, int]:
        return {
            "kernel_launches": 0,
            "h2d_copies": 0,
            "h2d_bytes": 0,
            "d2h_copies": 0,
            "d2h_bytes": 0,
        }

    def create_stream(self) -> Stream:
        stream = Stream(self, len(self._streams))
        self._streams.append(stream)
        return stream

    def stream(self, stream_id: int) -> Stream:
        try:
            return self._streams[stream_id]
        except IndexError:
            raise DeviceError(f"no stream {stream_id} on device {self.name!r}") from None

    @property
    def num_streams(self) -> int:
        return len(self._streams)

    def record_host(self, name: str, seconds: float, *, items: int = 0) -> None:
        """Record host-side work interleaved with device ops (for the timeline)."""
        self._record(OpKind.HOST, name, None, seconds, 0, items)

    def _record(
        self,
        kind: OpKind,
        name: str,
        stream: Optional[int],
        seconds: float,
        nbytes: int = 0,
        items: int = 0,
    ) -> None:
        self.ops.append(OpRecord(self._seq, kind, name, stream, seconds, nbytes, items))
        self._seq += 1
        if kind is OpKind.KERNEL:
            self._counters["kernel_launches"] += 1
        elif kind is OpKind.H2D:
            self._counters["h2d_copies"] += 1
            self._counters["h2d_bytes"] += nbytes
        elif kind is OpKind.D2H:
            self._counters["d2h_copies"] += 1
            self._counters["d2h_bytes"] += nbytes

    def counters(self) -> Dict[str, int]:
        """Cumulative launch/copy accounting (kernel launches, H2D/D2H copies
        and bytes) — the batching benchmark's primary metric."""
        return dict(self._counters)

    @property
    def num_kernel_launches(self) -> int:
        return self._counters["kernel_launches"]

    @property
    def num_h2d_copies(self) -> int:
        return self._counters["h2d_copies"]

    @property
    def h2d_bytes(self) -> int:
        return self._counters["h2d_bytes"]

    def reset(self) -> None:
        self.ops.clear()
        self._seq = 0
        self._counters = self._zero_counters()

    def timeline(self) -> "AsyncTimeline":
        return AsyncTimeline(list(self.ops))

    def __repr__(self) -> str:
        return f"Device({self.name!r}, {self.num_streams} streams, {len(self.ops)} ops)"


@dataclasses.dataclass
class TimelineSummary:
    """Aggregate view of a replayed timeline."""

    serial_seconds: float  # everything end-to-end on one queue
    async_seconds: float  # CUDA-model makespan (streams overlap host)
    host_seconds: float
    device_seconds: float
    copy_bytes: int

    @property
    def overlap_savings(self) -> float:
        """Fraction of serial time hidden by asynchronous execution."""
        if self.serial_seconds == 0.0:
            return 0.0
        return 1.0 - self.async_seconds / self.serial_seconds


class AsyncTimeline:
    """Replays an op record under the asynchronous (CUDA-like) execution model.

    Rules: the host walks the record in issue order; HOST ops advance the
    host clock; device ops (H2D/KERNEL/D2H) are *issued* at the current host
    clock but execute on their stream — starting at
    ``max(issue_time, stream_ready_time)`` — without blocking the host.
    """

    def __init__(self, ops: List[OpRecord]) -> None:
        self.ops = ops

    def summarize(self) -> TimelineSummary:
        host_clock = 0.0
        stream_ready: Dict[int, float] = {}
        makespan = 0.0
        host_total = 0.0
        device_total = 0.0
        copy_bytes = 0
        for op in self.ops:
            if op.kind is OpKind.HOST:
                host_clock += op.seconds
                host_total += op.seconds
                makespan = max(makespan, host_clock)
            else:
                assert op.stream is not None
                begin = max(host_clock, stream_ready.get(op.stream, 0.0))
                end = begin + op.seconds
                stream_ready[op.stream] = end
                device_total += op.seconds
                copy_bytes += op.bytes
                makespan = max(makespan, end)
        return TimelineSummary(
            serial_seconds=host_total + device_total,
            async_seconds=makespan,
            host_seconds=host_total,
            device_seconds=device_total,
            copy_bytes=copy_bytes,
        )

    def per_stream_seconds(self) -> Dict[int, float]:
        result: Dict[int, float] = {}
        for op in self.ops:
            if op.stream is not None:
                result[op.stream] = result.get(op.stream, 0.0) + op.seconds
        return result
