"""Stream-ordered memory allocator (paper §V-C).

CUDA's stream-ordered allocator (``cudaMallocAsync``/``cudaFreeAsync``)
recycles device memory without device-wide synchronization by keeping frees
ordered with respect to a stream. The simulation keeps the semantics that
matter for the engine: size-class pooling with per-stream free lists, reuse
accounting, and a peak-footprint measure (feeding the paper's roadmap item
on memory-footprint reduction).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from ..errors import DeviceError


def _size_class(nbytes: int) -> int:
    """Round a request up to its power-of-two size class (min 256 B)."""
    size = 256
    while size < nbytes:
        size *= 2
    return size


@dataclasses.dataclass
class AllocatorStats:
    """Reuse accounting for one allocator."""

    allocations: int = 0
    pool_hits: int = 0
    bytes_requested: int = 0
    bytes_reserved: int = 0  # backing memory actually created
    live_bytes: int = 0
    peak_bytes: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.pool_hits / self.allocations if self.allocations else 0.0


class DeviceBuffer:
    """A pooled device allocation backed by a NumPy byte array."""

    __slots__ = ("data", "nbytes", "size_class", "_freed")

    def __init__(self, data: np.ndarray, nbytes: int, size_class: int) -> None:
        self.data = data
        self.nbytes = nbytes
        self.size_class = size_class
        self._freed = False

    def view(self, dtype) -> np.ndarray:
        """The usable region reinterpreted as ``dtype``."""
        if self._freed:
            raise DeviceError("use after free of a device buffer")
        count = self.nbytes // np.dtype(dtype).itemsize
        return self.data[: count * np.dtype(dtype).itemsize].view(dtype)


class StreamOrderedAllocator:
    """Per-stream pooled allocator with size-class free lists."""

    def __init__(self) -> None:
        self._pools: Dict[int, Dict[int, List[DeviceBuffer]]] = {}  # stream -> class -> bufs
        self.stats = AllocatorStats()

    def malloc(self, nbytes: int, stream_id: int = 0) -> DeviceBuffer:
        """Allocate ``nbytes`` ordered on ``stream_id``."""
        if nbytes <= 0:
            raise DeviceError(f"allocation size must be positive, got {nbytes}")
        cls = _size_class(nbytes)
        self.stats.allocations += 1
        self.stats.bytes_requested += nbytes
        pool = self._pools.setdefault(stream_id, {}).setdefault(cls, [])
        if pool:
            buffer = pool.pop()
            buffer.nbytes = nbytes
            buffer._freed = False
            self.stats.pool_hits += 1
        else:
            buffer = DeviceBuffer(np.zeros(cls, dtype=np.uint8), nbytes, cls)
            self.stats.bytes_reserved += cls
        self.stats.live_bytes += cls
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.live_bytes)
        return buffer

    def free(self, buffer: DeviceBuffer, stream_id: int = 0) -> None:
        """Return a buffer to its stream's pool (stream-ordered free)."""
        if buffer._freed:
            raise DeviceError("double free of a device buffer")
        buffer._freed = True
        self.stats.live_bytes -= buffer.size_class
        self._pools.setdefault(stream_id, {}).setdefault(buffer.size_class, []).append(buffer)

    def trim(self) -> int:
        """Release all pooled memory; returns the bytes released."""
        released = 0
        for stream_pools in self._pools.values():
            for cls, buffers in stream_pools.items():
                released += cls * len(buffers)
                buffers.clear()
        self.stats.bytes_reserved -= released
        return released
