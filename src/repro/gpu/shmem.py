"""Zero-pickle array transport between processes via shared memory.

The multiprocess backend ships packed edge/corner/rect buffers — large,
contiguous NumPy arrays — to shard workers. Pickling them would copy every
byte through a pipe; instead the parent stages all of a rule's arrays into
one :class:`multiprocessing.shared_memory.SharedMemory` block (an
:class:`ShmArena`) and sends only tiny :class:`ArrayRef` descriptors
(block name, dtype, shape, byte offset). Workers map the block once and
materialise read-only views at the recorded offsets.

Fallback: tiny arrays (below :data:`INLINE_THRESHOLD` bytes), environments
with ``REPRO_MP_SHM=0``, or platforms where shared memory fails all degrade
to carrying the raw bytes inside the descriptor — same API, just pickled.

Lifecycle: the parent ``seal()``s an arena before submitting tasks that
reference it and ``dispose()``s it once every task's result has been
collected (POSIX keeps the mapping alive for already-attached workers even
after the unlink). Workers keep a small LRU of attached blocks so the warm
pool re-serves a rule's shards without re-mapping.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..util import faults

try:  # pragma: no cover - stdlib, but keep the module importable anywhere
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "ArrayRef",
    "ShmArena",
    "attached_block_count",
    "file_backed_ref",
    "release_attachments",
    "shm_enabled",
]

#: Arrays smaller than this are pickled inline — a shared-memory round trip
#: (create, map, unlink) costs more than copying a few hundred bytes.
INLINE_THRESHOLD = 512

#: Workers keep at most this many blocks mapped (LRU) between tasks.
ATTACH_CACHE_SIZE = 8

#: Whole pack-store files kept mapped (LRU) for path-backed refs. Every
#: shard of a rule references windows of the same file; re-``mmap``-ing it
#: per resolve() made the warm pool pay a syscall + page-table churn per
#: task. Entries are immutable (content-addressed store), so staleness is
#: impossible and the cache never needs invalidation.
MMAP_CACHE_SIZE = 8

_ALIGN = 64


def shm_enabled() -> bool:
    """Shared-memory transport is available and not disabled by env."""
    if _shared_memory is None:
        return False
    return os.environ.get("REPRO_MP_SHM", "1") != "0"


@dataclasses.dataclass
class ArrayRef:
    """A picklable reference to one ndarray.

    A view into a shared block (``block``/``offset`` set), a window of an
    on-disk pack-store entry (``path``/``offset`` set — workers ``mmap`` the
    same pages the parent reads, copying nothing), or the raw bytes
    themselves (``data`` set, the inline fallback).
    """

    dtype: str
    shape: Tuple[int, ...]
    block: Optional[str] = None
    offset: int = 0
    data: Optional[bytes] = None
    path: Optional[str] = None

    def resolve(self) -> np.ndarray:
        """Materialise the array in this process (read-only view or copy)."""
        count = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        if self.path is not None:
            if count == 0:
                array = np.zeros(self.shape, dtype=np.dtype(self.dtype))
                array.flags.writeable = False
                return array
            dtype = np.dtype(self.dtype)
            mapped = _mapped_file(self.path, self.offset + count * dtype.itemsize)
            array = np.frombuffer(
                mapped, dtype=dtype, count=count, offset=self.offset
            )
        elif self.block is None:
            assert self.data is not None
            array = np.frombuffer(self.data, dtype=np.dtype(self.dtype))
        else:
            shm = _attach(self.block)
            array = np.frombuffer(
                shm.buf, dtype=np.dtype(self.dtype), count=count, offset=self.offset
            )
        array = array.reshape(self.shape)
        array.flags.writeable = False
        return array


#: path -> (whole-file read-only uint8 map, (st_ino, st_mtime_ns, st_size)
#: stat signature at map time); insertion order = LRU order.
_mapped: Dict[str, Tuple[np.memmap, Tuple[int, int, int]]] = {}


def _mapped_file(path: str, min_bytes: int) -> np.memmap:
    """The whole-file read-only map for ``path``, LRU-cached per process.

    Pack-store entries are immutable, but any memmap-backed array can land
    here via :func:`file_backed_ref`, so a cached map is revalidated
    against the file's current stat signature — a file rewritten in place
    (even at equal or smaller size) or replaced gets remapped instead of
    serving stale cached pages.
    """
    stat = os.stat(path)
    signature = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
    entry = _mapped.pop(path, None)
    if entry is not None and entry[1] == signature and entry[0].size >= min_bytes:
        mapped = entry[0]
    else:
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
    _mapped[path] = (mapped, signature)  # re-insert: most recently used
    while len(_mapped) > MMAP_CACHE_SIZE:
        _mapped.pop(next(iter(_mapped)))
    return mapped


def file_backed_ref(array: np.ndarray) -> Optional[ArrayRef]:
    """An :class:`ArrayRef` into the memmap file backing ``array``, if any.

    Walks the view's base chain to an ``np.memmap``; returns ``None`` when
    the array is not a contiguous window of a mapped file (workers then fall
    back to the :class:`ShmArena` transport). The descriptor carries only
    (path, dtype, shape, byte offset) — the worker maps the same pack-store
    pages the parent reads, so shipping a buffer costs zero copies.
    """
    if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
        return None
    # Walk to the *root* of the view chain: slices/views of a memmap are
    # np.memmap instances too, but inherit the parent's ``offset`` attribute
    # unadjusted — only the directly-constructed root's offset is truthful,
    # so the file position must come from pointer arithmetic against it.
    base = array
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    if not isinstance(base, np.memmap) or getattr(base, "filename", None) is None:
        return None
    delta = (
        array.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    if delta < 0 or delta + array.nbytes > base.nbytes:
        return None
    return ArrayRef(
        str(array.dtype),
        array.shape,
        offset=int(base.offset) + int(delta),
        path=str(base.filename),
    )


class ShmArena:
    """Parent-side staging area: many arrays, one shared block.

    ``stage()`` arrays while building a rule's task payloads, ``seal()``
    once before submission (creates the block and copies the bytes in),
    ``dispose()`` after every task result is home.
    """

    def __init__(self, *, use_shm: Optional[bool] = None) -> None:
        self._use_shm = shm_enabled() if use_shm is None else use_shm
        self._staged: List[Tuple[np.ndarray, ArrayRef]] = []
        self._cursor = 0
        self._shm = None
        self._sealed = False

    def stage(self, array: np.ndarray) -> ArrayRef:
        if self._sealed:
            raise RuntimeError("cannot stage into a sealed arena")
        array = np.ascontiguousarray(array)
        if not self._use_shm or array.nbytes < INLINE_THRESHOLD:
            return ArrayRef(str(array.dtype), array.shape, data=array.tobytes())
        # Align each array so the worker-side views keep natural alignment.
        offset = -(-self._cursor // _ALIGN) * _ALIGN
        self._cursor = offset + array.nbytes
        ref = ArrayRef(str(array.dtype), array.shape, block="", offset=offset)
        self._staged.append((array, ref))
        return ref

    def seal(self) -> None:
        """Create the block and copy staged arrays in; refs become valid."""
        if self._sealed:
            return
        self._sealed = True
        if not self._staged:
            return
        try:
            self._shm = _shared_memory.SharedMemory(create=True, size=self._cursor)
        except OSError:
            # /dev/shm unavailable or exhausted: degrade to inline bytes.
            for array, ref in self._staged:
                ref.block, ref.offset = None, 0
                ref.data = array.tobytes()
            self._staged.clear()
            return
        for array, ref in self._staged:
            ref.block = self._shm.name
            dest = np.frombuffer(
                self._shm.buf, dtype=array.dtype, count=array.size, offset=ref.offset
            ).reshape(array.shape)
            dest[...] = array
        self._staged.clear()

    @property
    def nbytes(self) -> int:
        return self._cursor

    def dispose(self) -> None:
        """Close and unlink the block (attached workers keep their mapping)."""
        self._staged.clear()
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double dispose
                pass
            self._shm = None


# -- worker-side attachment cache -------------------------------------------

_attached: Dict[str, object] = {}

#: Whether attaching must undo the resource tracker's registration. True
#: only when this process runs its *own* tracker (spawn children): there,
#: attach-time registration would make the tracker warn about — and try to
#: unlink — blocks the parent owns. Fork children inherit the parent's
#: tracker, where attach-time registration is a set no-op and an unregister
#: would wrongly erase the parent's own entry. Decided at first attach,
#: *before* the attach itself starts a tracker.
_unregister_on_attach: Optional[bool] = None


def _tracker_fd_inherited() -> bool:
    try:  # pragma: no cover - CPython implementation detail
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._fd is not None
    except Exception:  # pragma: no cover
        return False


def _attach(name: str):
    """Map a shared block by name, LRU-cached across tasks."""
    global _unregister_on_attach
    if faults.should_fire(faults.SHM_ATTACH_FAIL, name):
        raise OSError(f"injected shm attach failure for block {name!r}")
    if _unregister_on_attach is None:
        _unregister_on_attach = not _tracker_fd_inherited()
    shm = _attached.pop(name, None)
    if shm is None:
        shm = _shared_memory.SharedMemory(name=name)
        if _unregister_on_attach:
            # Ownership stays with the parent; without this, the child's
            # tracker would warn about and unlink the parent's blocks.
            try:  # pragma: no cover - CPython implementation detail
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
    _attached[name] = shm  # re-insert: most recently used (dicts keep order)
    while len(_attached) > ATTACH_CACHE_SIZE:
        old = _attached.pop(next(iter(_attached)))
        try:
            old.close()
        except Exception:  # pragma: no cover
            pass
    return shm


def attached_block_count() -> int:
    return len(_attached)


def release_attachments() -> None:
    """Unmap every cached block and file (worker shutdown hook)."""
    for shm in _attached.values():
        try:
            shm.close()
        except Exception:  # pragma: no cover
            pass
    _attached.clear()
    _mapped.clear()
