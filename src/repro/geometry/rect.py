"""Axis-aligned rectangles / minimum bounding rectangles (MBRs).

The hierarchy tree (paper §IV-A) augments every cell with per-layer MBRs, and
the sequential mode (paper §IV-D) sweeps MBRs to find candidate pairs, so this
type is the workhorse of the whole engine.

A :class:`Rect` is half-open in neither axis: it covers the closed region
``[xlo, xhi] x [ylo, yhi]``. Degenerate rects (zero width or height) are
permitted — a horizontal edge's MBR is one. An *empty* rect is represented by
the sentinel :data:`EMPTY_RECT`, for which ``is_empty`` is true; empty rects
absorb nothing in unions and intersect nothing.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

from .point import Point


class Rect(NamedTuple):
    """Closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    # -- basic properties -------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True if this rect covers no points at all."""
        return self.xlo > self.xhi or self.ylo > self.yhi

    @property
    def width(self) -> int:
        """Extent along x (0 for a vertical segment)."""
        return 0 if self.is_empty else self.xhi - self.xlo

    @property
    def height(self) -> int:
        """Extent along y (0 for a horizontal segment)."""
        return 0 if self.is_empty else self.yhi - self.ylo

    @property
    def area(self) -> int:
        """Area of the covered region."""
        return 0 if self.is_empty else self.width * self.height

    @property
    def center(self) -> Point:
        """Integer center (rounds toward the low corner)."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    # -- predicates --------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        if self.is_empty:
            return False
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside this rect (boundary allowed)."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the closed regions share at least one point.

        Touching edges count as overlap; the engine inflates MBRs by the rule
        distance before calling this (paper §IV-C), so boundary contact must
        not be lost.
        """
        if self.is_empty or other.is_empty:
            return False
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def overlaps_strictly(self, other: "Rect") -> bool:
        """True if the *open* interiors intersect (touching does not count)."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    # -- constructive operations -------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Smallest rect covering both operands; empty rects are identities."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def intersection(self, other: "Rect") -> "Rect":
        """Common region of both operands (possibly :data:`EMPTY_RECT`)."""
        if self.is_empty or other.is_empty:
            return EMPTY_RECT
        r = Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )
        return r if not r.is_empty else EMPTY_RECT

    def inflated(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margins) by ``margin`` on every side.

        Task pruning inflates MBRs by the minimum rule distance so that
        MBR-disjointness soundly implies no violation (paper §IV-C).
        """
        if self.is_empty:
            return EMPTY_RECT
        r = Rect(self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin)
        return r if not r.is_empty else EMPTY_RECT

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return this rect moved by ``(dx, dy)``."""
        if self.is_empty:
            return EMPTY_RECT
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    # -- distances -----------------------------------------------------------

    def gap_to(self, other: "Rect") -> int:
        """Chebyshev gap between two rects; 0 when they touch or overlap."""
        if self.is_empty or other.is_empty:
            raise ValueError("gap_to is undefined for empty rects")
        dx = max(self.xlo - other.xhi, other.xlo - self.xhi, 0)
        dy = max(self.ylo - other.yhi, other.ylo - self.yhi, 0)
        return max(dx, dy)

    def __repr__(self) -> str:
        if self.is_empty:
            return "Rect(EMPTY)"
        return f"Rect({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"


#: The canonical empty rectangle. ``union`` treats it as an identity.
EMPTY_RECT = Rect(1, 1, 0, 0)


def bounding_rect(points: Iterable[Point]) -> Rect:
    """MBR of a point cloud; :data:`EMPTY_RECT` for an empty iterable."""
    result: Optional[Rect] = None
    for p in points:
        if result is None:
            result = Rect(p.x, p.y, p.x, p.y)
        else:
            result = Rect(
                min(result.xlo, p.x),
                min(result.ylo, p.y),
                max(result.xhi, p.x),
                max(result.yhi, p.y),
            )
    return result if result is not None else EMPTY_RECT


def union_all(rects: Iterable[Rect]) -> Rect:
    """MBR of many rects; :data:`EMPTY_RECT` for an empty iterable."""
    result = EMPTY_RECT
    for r in rects:
        result = result.union(r)
    return result
