"""GDSII-style placement transformations.

An SREF/AREF placement applies, in GDSII order: optional reflection about the
x-axis, rotation, magnification, then translation to the placement origin.
OpenDRC's intra-polygon memoisation (paper §IV-C) relies on knowing which
check properties each transform preserves, so :class:`Transform` exposes
exactly those invariants (:meth:`preserves_distances`,
:meth:`preserves_rectilinearity`, :meth:`area_scale`).

Rotations are restricted to multiples of 90 degrees; arbitrary angles would
break rectilinearity, which the engine (like the paper's benchmarks) assumes.
"""

from __future__ import annotations

import functools
from fractions import Fraction
from typing import Iterable, List, NamedTuple, Union

from ..errors import GeometryError
from .point import Point
from .rect import EMPTY_RECT, Rect

Scalar = Union[int, Fraction]

_ROTATION_MATRICES = {
    0: (1, 0, 0, 1),
    90: (0, -1, 1, 0),
    180: (-1, 0, 0, -1),
    270: (0, 1, -1, 0),
}


class Transform(NamedTuple):
    """Reflection (about x) -> rotation (ccw, multiple of 90) -> magnification -> translation."""

    dx: int = 0
    dy: int = 0
    rotation: int = 0
    mirror_x: bool = False
    magnification: Scalar = 1

    @classmethod
    def identity(cls) -> "Transform":
        return cls()

    def _validate(self) -> None:
        if self.rotation % 90 != 0:
            raise GeometryError(
                f"rotation {self.rotation} is not a multiple of 90 degrees; "
                "non-rectilinear placements are unsupported"
            )
        if self.magnification <= 0:
            raise GeometryError(f"magnification must be positive, got {self.magnification}")

    @property
    def _matrix(self) -> tuple:
        """Linear part as ``(a, b, c, d)`` with ``x' = a x + b y``, ``y' = c x + d y``."""
        return _matrix_of(self.rotation, self.mirror_x, self.magnification)

    # -- application ---------------------------------------------------------

    def apply(self, p: Point) -> Point:
        """Transform a point. Raises if a magnification makes it non-integral."""
        a, b, c, d = self._matrix
        x = a * p.x + b * p.y + self.dx
        y = c * p.x + d * p.y + self.dy
        if isinstance(x, int) and isinstance(y, int):
            return Point(x, y)
        if not (float(x).is_integer() and float(y).is_integer()):
            raise GeometryError(f"transform {self} takes {p} off the integer grid")
        return Point(int(x), int(y))

    def apply_many(self, points: Iterable[Point]) -> List[Point]:
        return [self.apply(p) for p in points]

    def apply_rect(self, r: Rect) -> Rect:
        """Transform a rect; the result is the MBR of the transformed corners."""
        if r.is_empty:
            return EMPTY_RECT
        p1 = self.apply(Point(r.xlo, r.ylo))
        p2 = self.apply(Point(r.xhi, r.yhi))
        return Rect(min(p1.x, p2.x), min(p1.y, p2.y), max(p1.x, p2.x), max(p1.y, p2.y))

    # -- composition -----------------------------------------------------------

    def compose(self, inner: "Transform") -> "Transform":
        """Return the transform equivalent to applying ``inner`` first, then self.

        This is what descending the hierarchy tree accumulates: the parent's
        placement composed over the child's.
        """
        a, b, c, d = self._matrix
        shift_x = a * inner.dx + b * inner.dy + self.dx
        shift_y = c * inner.dx + d * inner.dy + self.dy
        if not isinstance(shift_x, int) or not isinstance(shift_y, int):
            if not (float(shift_x).is_integer() and float(shift_y).is_integer()):
                raise GeometryError("composed transform has a non-integral translation")
        rotation = (self.rotation + (-inner.rotation if self.mirror_x else inner.rotation)) % 360
        mirror = self.mirror_x != inner.mirror_x
        if self.magnification == 1 and inner.magnification == 1:
            mag: Scalar = 1
        else:
            mag = _normalize_scalar(
                Fraction(self.magnification) * Fraction(inner.magnification)
            )
        return Transform(int(shift_x), int(shift_y), rotation, mirror, mag)

    # -- invariants used by task pruning (paper §IV-C) -------------------------

    @property
    def preserves_distances(self) -> bool:
        """True if edge-to-edge distances are unchanged (width/space reusable)."""
        return self.magnification == 1

    @property
    def preserves_rectilinearity(self) -> bool:
        """Always true for validated transforms (rotations are multiples of 90)."""
        self._validate()
        return True

    @property
    def area_scale(self) -> Fraction:
        """Factor by which polygon areas scale under this transform."""
        m = Fraction(self.magnification)
        return m * m

    def __repr__(self) -> str:
        parts = [f"dx={self.dx}", f"dy={self.dy}"]
        if self.rotation:
            parts.append(f"rot={self.rotation}")
        if self.mirror_x:
            parts.append("mirror")
        if Fraction(self.magnification) != 1:
            parts.append(f"mag={self.magnification}")
        return "Transform(" + ", ".join(parts) + ")"


def _normalize_scalar(value: Fraction) -> Scalar:
    return int(value) if value.denominator == 1 else value


@functools.lru_cache(maxsize=None)
def _matrix_of(rotation: int, mirror_x: bool, magnification: Scalar) -> tuple:
    if rotation % 90 != 0:
        raise GeometryError(
            f"rotation {rotation} is not a multiple of 90 degrees; "
            "non-rectilinear placements are unsupported"
        )
    if magnification <= 0:
        raise GeometryError(f"magnification must be positive, got {magnification}")
    a, b, c, d = _ROTATION_MATRICES[rotation % 360]
    if mirror_x:
        # GDSII reflects about the x-axis *before* rotating: (x, y) -> (x, -y).
        b, d = -b, -d
    if magnification != 1:
        a, b, c, d = (
            a * magnification,
            b * magnification,
            c * magnification,
            d * magnification,
        )
    return (a, b, c, d)


IDENTITY = Transform()
