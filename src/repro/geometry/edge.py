"""Directed rectilinear polygon edges.

OpenDRC's check procedures are *edge-based* (paper §IV-D, §IV-E): distance
rules are decided by pairs of parallel edges, and the positional relation of
an edge (which side of it is polygon interior) is determined purely from the
vertex order. Vertices are stored clockwise (negative Shoelace signed area),
so the interior is always to the **right** of the travel direction; the
interior normal of a direction ``(dx, dy)`` is ``(dy, -dx)``.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional, Tuple

from ..errors import GeometryError
from .point import Point
from .rect import Rect


class Orientation(enum.Enum):
    """Axis of an edge."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


class Direction(enum.Enum):
    """Compass direction of travel along a directed rectilinear edge."""

    EAST = (1, 0)
    WEST = (-1, 0)
    NORTH = (0, 1)
    SOUTH = (0, -1)

    @property
    def dx(self) -> int:
        return self.value[0]

    @property
    def dy(self) -> int:
        return self.value[1]

    @property
    def interior_normal(self) -> Tuple[int, int]:
        """Unit vector pointing into the polygon (clockwise vertex order)."""
        return (self.dy, -self.dx)

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}


class Edge(NamedTuple):
    """A directed axis-parallel segment from ``start`` to ``end``.

    The polygon interior lies to the right of the direction of travel.
    """

    start: Point
    end: Point

    @property
    def is_horizontal(self) -> bool:
        return self.start.y == self.end.y

    @property
    def is_vertical(self) -> bool:
        return self.start.x == self.end.x

    @property
    def orientation(self) -> Orientation:
        if self.is_horizontal and not self.is_vertical:
            return Orientation.HORIZONTAL
        if self.is_vertical and not self.is_horizontal:
            return Orientation.VERTICAL
        raise GeometryError(f"degenerate or non-rectilinear edge: {self!r}")

    @property
    def direction(self) -> Direction:
        if self.orientation is Orientation.HORIZONTAL:
            return Direction.EAST if self.end.x > self.start.x else Direction.WEST
        return Direction.NORTH if self.end.y > self.start.y else Direction.SOUTH

    @property
    def length(self) -> int:
        return abs(self.end.x - self.start.x) + abs(self.end.y - self.start.y)

    @property
    def interior_side(self) -> Tuple[int, int]:
        """Unit normal pointing into the polygon this edge belongs to."""
        return self.direction.interior_normal

    # -- coordinates convenient for sweep/check code -----------------------

    @property
    def fixed_coordinate(self) -> int:
        """The coordinate shared by both endpoints (y if horizontal, x if vertical)."""
        return self.start.y if self.is_horizontal else self.start.x

    @property
    def span(self) -> Tuple[int, int]:
        """``(lo, hi)`` of the varying coordinate."""
        if self.is_horizontal:
            return (min(self.start.x, self.end.x), max(self.start.x, self.end.x))
        return (min(self.start.y, self.end.y), max(self.start.y, self.end.y))

    @property
    def mbr(self) -> Rect:
        return Rect(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    # -- geometric relations -------------------------------------------------

    def projection_overlap(self, other: "Edge") -> int:
        """Length of the common projection of two parallel edges.

        Returns 0 for disjoint or merely point-touching projections, and
        raises :class:`GeometryError` for perpendicular edges.
        """
        if self.orientation is not other.orientation:
            raise GeometryError("projection_overlap requires parallel edges")
        alo, ahi = self.span
        blo, bhi = other.span
        return max(0, min(ahi, bhi) - max(alo, blo))

    def separation(self, other: "Edge") -> int:
        """Perpendicular distance between two parallel edges' supporting lines."""
        if self.orientation is not other.orientation:
            raise GeometryError("separation requires parallel edges")
        return abs(self.fixed_coordinate - other.fixed_coordinate)

    def faces(self, other: "Edge") -> bool:
        """True if this edge's interior normal points toward ``other``.

        Facing is the key positional relation for distance rules: a *width*
        violation is two edges of one polygon that face each other (interior
        between them), a *spacing* violation is two edges of different
        polygons whose **exteriors** face each other — i.e. neither faces
        the other.
        """
        if self.orientation is not other.orientation:
            return False
        nx, ny = self.interior_side
        delta = other.fixed_coordinate - self.fixed_coordinate
        return delta * (nx + ny) > 0

    def translated(self, dx: int, dy: int) -> "Edge":
        return Edge(self.start.translated(dx, dy), self.end.translated(dx, dy))

    def overlap_region(self, other: "Edge", *, inflate: int = 0) -> Optional[Rect]:
        """Bounding box of the strip between two parallel overlapping edges.

        This is the region reported for a violation between the pair.
        Returns ``None`` if the projections do not overlap.
        """
        if self.projection_overlap(other) <= 0:
            return None
        alo, ahi = self.span
        blo, bhi = other.span
        lo, hi = max(alo, blo), min(ahi, bhi)
        c1, c2 = sorted((self.fixed_coordinate, other.fixed_coordinate))
        if self.is_horizontal:
            region = Rect(lo, c1, hi, c2)
        else:
            region = Rect(c1, lo, c2, hi)
        return region.inflated(inflate) if inflate else region

    def __repr__(self) -> str:
        return f"Edge({tuple(self.start)} -> {tuple(self.end)})"
