"""Integer lattice points.

All geometry in this package lives on an integer grid (database units).
``Point`` is an immutable value type; arithmetic returns new points.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """A point on the integer grid.

    Being a :class:`~typing.NamedTuple`, a ``Point`` unpacks as ``(x, y)``,
    hashes by value, and compares lexicographically — which is exactly the
    order sweepline algorithms want.
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance(self, other: "Point") -> int:
        """L-infinity distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def euclidean_distance_squared(self, other: "Point") -> int:
        """Squared L2 distance to ``other`` (exact, stays integral)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"


ORIGIN = Point(0, 0)


def iter_points(flat: Iterator[int]) -> Iterator[Point]:
    """Pair up a flat iterator of coordinates ``x0, y0, x1, y1, ...``.

    GDSII XY records store coordinates flattened this way.
    """
    it = iter(flat)
    for x in it:
        try:
            y = next(it)
        except StopIteration:
            raise ValueError("odd number of coordinates in flat point list") from None
        yield Point(x, y)
