"""Geometry kernel: points, rects, edges, polygons, intervals, transforms.

This is the lowest tier of the paper's infrastructure layer (§V-A); every
other subsystem builds on these value types.
"""

from .booleans import (
    RegionUnion,
    decompose_rectilinear,
    polygons_area,
    union_polygons,
    union_rects,
)
from .edge import Direction, Edge, Orientation
from .interval import Interval, coalesce
from .point import ORIGIN, Point, iter_points
from .polygon import Polygon, signed_area2
from .rect import EMPTY_RECT, Rect, bounding_rect, union_all
from .transform import IDENTITY, Transform

__all__ = [
    "Direction",
    "Edge",
    "EMPTY_RECT",
    "IDENTITY",
    "Interval",
    "ORIGIN",
    "Orientation",
    "Point",
    "Polygon",
    "Rect",
    "RegionUnion",
    "decompose_rectilinear",
    "polygons_area",
    "union_polygons",
    "union_rects",
    "Transform",
    "bounding_rect",
    "coalesce",
    "iter_points",
    "signed_area2",
    "union_all",
]
