"""Rectilinear boolean/region operations.

Boolean mask operations are one of the classic algorithmic foundations of
DRC (paper §I, reference [3]), and region *normalization* — merging all
shapes of a layer into disjoint maximal regions — is the first step of
KLayout's generic DRC pipeline, which the KLayout-like baselines model.

The implementation decomposes every polygon into rectangles (vertical slab
decomposition), unions the rectangles strip-by-strip over the compressed
y-grid, and links strips with a union-find to count connected regions.
The result knows its exact area, region count, and strip intervals, and
supports point membership — enough for region algebra and for the
normalization cost model, without committing to a polygon-with-holes
representation.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from .interval import Interval, coalesce
from .polygon import Polygon
from .rect import Rect


def decompose_rectilinear(polygon: Polygon) -> List[Rect]:
    """Vertical slab decomposition of a rectilinear polygon into rects.

    Slices the polygon at every distinct vertex y; within each horizontal
    slab the polygon's cross-section is a set of x-intervals delimited by
    the vertical edges crossing the slab.
    """
    ys = sorted({p.y for p in polygon.vertices})
    rects: List[Rect] = []
    verticals = [e for e in polygon.edges() if e.is_vertical]
    for ylo, yhi in zip(ys, ys[1:]):
        xs: List[Tuple[int, int]] = []  # (x, +1 left boundary / -1 right)
        for edge in verticals:
            elo, ehi = edge.span
            if elo <= ylo and yhi <= ehi:
                # Interior east (+1) means the region lies right of the edge.
                sign = edge.interior_side[0]
                xs.append((edge.fixed_coordinate, sign))
        xs.sort()
        depth = 0
        start = 0
        for x, sign in xs:
            if depth == 0 and sign > 0:
                start = x
            depth += sign
            if depth == 0 and sign < 0:
                rects.append(Rect(start, ylo, x, yhi))
    return rects


@dataclasses.dataclass
class RegionUnion:
    """Union of rectangles: per-strip disjoint x-intervals plus region links."""

    ys: List[int]  # strip boundaries, len == strips + 1
    strips: List[List[Interval]]  # disjoint sorted x-intervals per strip
    region_count: int
    area: int

    def contains_point(self, x: int, y: int) -> bool:
        """True if (x, y) lies in the union (closed on strip boundaries)."""
        if not self.ys or y < self.ys[0] or y > self.ys[-1]:
            return False
        index = bisect.bisect_right(self.ys, y) - 1
        candidates = []
        if 0 <= index < len(self.strips):
            candidates.append(self.strips[index])
        if y == self.ys[index] and index - 1 >= 0:
            candidates.append(self.strips[index - 1])
        for intervals in candidates:
            pos = bisect.bisect_right([iv.lo for iv in intervals], x) - 1
            if pos >= 0 and intervals[pos].contains(x):
                return True
        return False


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def make(self, x: int) -> None:
        self.parent.setdefault(x, x)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb

    def count_roots(self) -> int:
        return sum(1 for x in self.parent if self.parent[x] == x)


def union_rects(rects: Sequence[Rect]) -> RegionUnion:
    """Union of rectangles with exact area and connected-region count.

    Rectangles touching along an edge (not just a corner) are connected.
    Degenerate and empty rects are ignored.
    """
    boxes = [r for r in rects if not r.is_empty and r.width > 0 and r.height > 0]
    if not boxes:
        return RegionUnion(ys=[], strips=[], region_count=0, area=0)

    ys = sorted({v for r in boxes for v in (r.ylo, r.yhi)})
    # Bucket rects into the strips they span (events at ylo / yhi).
    starts: Dict[int, List[Rect]] = {}
    for r in boxes:
        starts.setdefault(r.ylo, []).append(r)

    strips: List[List[Interval]] = []
    active: List[Rect] = []
    area = 0
    uf = _UnionFind()
    next_id = 0
    previous: List[Tuple[Interval, int]] = []  # (interval, region id) of prior strip
    for ylo, yhi in zip(ys, ys[1:]):
        active.extend(starts.get(ylo, []))
        active = [r for r in active if r.yhi > ylo]
        merged = coalesce([Interval(r.xlo, r.xhi) for r in active if r.ylo <= ylo])
        strips.append(merged)
        height = yhi - ylo
        area += height * sum(iv.length for iv in merged)
        current: List[Tuple[Interval, int]] = []
        for iv in merged:
            region_id = next_id
            next_id += 1
            uf.make(region_id)
            # Connect to previous-strip intervals sharing positive x-extent
            # (edge contact connects; pure corner contact does not).
            for prev_iv, prev_id in previous:
                if iv.overlap_length(prev_iv) > 0:
                    uf.union(region_id, prev_id)
            current.append((iv, region_id))
        previous = current

    return RegionUnion(
        ys=ys, strips=strips, region_count=uf.count_roots(), area=area
    )


def union_polygons(polygons: Iterable[Polygon]) -> RegionUnion:
    """Region normalization: merge a layer's polygons into disjoint regions.

    This is the KLayout-style pre-pass the baselines execute before their
    checks.
    """
    rects: List[Rect] = []
    for polygon in polygons:
        if polygon.is_rectangle:
            rects.append(polygon.mbr)
        else:
            rects.extend(decompose_rectilinear(polygon))
    return union_rects(rects)


def polygons_area(polygons: Iterable[Polygon]) -> int:
    """Exact area of the union of polygons (overlaps counted once)."""
    return union_polygons(polygons).area


# ---------------------------------------------------------------------------
# Region algebra: AND / OR / SUB / XOR over strip decompositions
# ---------------------------------------------------------------------------


def _combine_interval_lists(
    a: List[Interval], b: List[Interval], op: str
) -> List[Interval]:
    """Boolean combination of two disjoint sorted interval lists.

    A boundary walk over both lists tracks inside/outside of each operand;
    the output contains the x ranges where ``op`` holds. Closed-interval
    bookkeeping follows region semantics: zero-length results are dropped.
    """
    events: List[Tuple[int, int, int]] = []  # (x, which, +1 open/-1 close)
    for iv in a:
        events.append((iv.lo, 0, 1))
        events.append((iv.hi, 0, -1))
    for iv in b:
        events.append((iv.lo, 1, 1))
        events.append((iv.hi, 1, -1))
    events.sort()

    def holds(in_a: bool, in_b: bool) -> bool:
        if op == "and":
            return in_a and in_b
        if op == "or":
            return in_a or in_b
        if op == "sub":
            return in_a and not in_b
        if op == "xor":
            return in_a != in_b
        raise ValueError(f"unknown op {op!r}")

    out: List[Interval] = []
    inside = [0, 0]
    start = 0
    active = False
    index = 0
    while index < len(events):
        x = events[index][0]
        # Apply every event at this x at once (opens before the state probe).
        while index < len(events) and events[index][0] == x:
            _, which, delta = events[index]
            inside[which] += delta
            index += 1
        now = holds(inside[0] > 0, inside[1] > 0)
        if now and not active:
            start = x
            active = True
        elif not now and active:
            if x > start:
                out.append(Interval(start, x))
            active = False
    return coalesce(out)


def combine_regions(a: RegionUnion, b: RegionUnion, op: str) -> RegionUnion:
    """Boolean combination of two regions (``and``/``or``/``sub``/``xor``).

    Strips of both operands are re-cut on the union of their y boundaries,
    combined per strip, and re-assembled (area and connectivity recomputed).
    """
    ys = sorted(set(a.ys) | set(b.ys))
    if not ys:
        return RegionUnion(ys=[], strips=[], region_count=0, area=0)
    rects: List[Rect] = []
    for ylo, yhi in zip(ys, ys[1:]):
        strip_a = _strip_at(a, ylo)
        strip_b = _strip_at(b, ylo)
        for iv in _combine_interval_lists(strip_a, strip_b, op):
            rects.append(Rect(iv.lo, ylo, iv.hi, yhi))
    return union_rects(rects)


def _strip_at(region: RegionUnion, y: int) -> List[Interval]:
    """The region's x-intervals on the strip starting at ``y`` (if any)."""
    if not region.ys:
        return []
    index = bisect.bisect_right(region.ys, y) - 1
    if index < 0 or index >= len(region.strips):
        return []
    # The strip [ys[index], ys[index+1]) covers y only if y < its top.
    if y >= region.ys[index + 1]:
        return []
    return region.strips[index]


def intersect_regions(a: RegionUnion, b: RegionUnion) -> RegionUnion:
    """A AND B — e.g. the CUT result between two layers."""
    return combine_regions(a, b, "and")


def subtract_regions(a: RegionUnion, b: RegionUnion) -> RegionUnion:
    """A NOT B — e.g. the paper's 'NOT CUT result between layers'."""
    return combine_regions(a, b, "sub")


def xor_regions(a: RegionUnion, b: RegionUnion) -> RegionUnion:
    """Symmetric difference (mask comparison)."""
    return combine_regions(a, b, "xor")


def or_regions(a: RegionUnion, b: RegionUnion) -> RegionUnion:
    """A OR B (re-normalized union of two regions)."""
    return combine_regions(a, b, "or")
