"""Closed integer intervals.

Intervals appear in three places in OpenDRC: as the events and status entries
of the MBR sweepline (paper §IV-D), as the inputs of the pigeonhole interval
merging behind adaptive row partition (paper §IV-B, Algorithm 1), and as edge
projections in the check procedures.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple


class Interval(NamedTuple):
    """Closed interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    @classmethod
    def of(cls, a: int, b: int) -> "Interval":
        """Build an interval from two endpoints in either order."""
        return cls(a, b) if a <= b else cls(b, a)

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True if the closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def overlap_length(self, other: "Interval") -> int:
        """Length of the common part (0 when disjoint or point-touching)."""
        return max(0, min(self.hi, other.hi) - max(self.lo, other.lo))

    def gap_to(self, other: "Interval") -> int:
        """Distance between the intervals (0 when they touch or overlap)."""
        return max(0, max(self.lo - other.hi, other.lo - self.hi))

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def inflated(self, margin: int) -> "Interval":
        return Interval(self.lo - margin, self.hi + margin)

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def coalesce(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/touching intervals into a sorted disjoint cover.

    This is the reference (sort-based) semantics that the pigeonhole merge of
    Algorithm 1 must agree with; tests and the merge ablation compare both.
    """
    items = sorted(intervals)
    result: List[Interval] = []
    for iv in items:
        if result and iv.lo <= result[-1].hi:
            result[-1] = Interval(result[-1].lo, max(result[-1].hi, iv.hi))
        else:
            result.append(iv)
    return result
