"""Rectilinear polygons.

A :class:`Polygon` stores its boundary as a list of vertices in **clockwise**
order (the constructor normalizes orientation), without repeating the first
vertex at the end. Edges derived from the boundary therefore carry a
well-defined interior side (see :mod:`repro.geometry.edge`), which is what the
paper's edge-based check procedures rely on (paper §IV-D: "Polygon vertices
are stored in clockwise order, so that positional relations of edges are
determined accordingly"). Areas use the Shoelace Theorem, as in the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import GeometryError
from .edge import Edge
from .point import Point
from .rect import Rect
from .transform import Transform


def signed_area2(vertices: Sequence[Point]) -> int:
    """Twice the signed Shoelace area (positive for counter-clockwise)."""
    total = 0
    n = len(vertices)
    for i in range(n):
        p = vertices[i]
        q = vertices[(i + 1) % n]
        total += p.x * q.y - q.x * p.y
    return total


class Polygon:
    """A simple rectilinear polygon on the integer grid.

    Parameters
    ----------
    vertices:
        Boundary vertices in either orientation; normalized to clockwise.
        Collinear runs are merged so every stored edge is a maximal segment.
    name:
        Optional object name (GDSII allows named elements via PROPATTR; the
        paper's Listing 1 third rule checks for non-empty names).
    validate:
        When true (default), reject non-rectilinear or degenerate input.
    """

    __slots__ = ("vertices", "name", "_mbr")

    def __init__(
        self,
        vertices: Iterable[Point],
        *,
        name: str = "",
        validate: bool = True,
    ) -> None:
        verts = [p if isinstance(p, Point) else Point(*p) for p in vertices]
        if verts and verts[0] == verts[-1]:
            verts = verts[:-1]  # tolerate GDSII-style closed rings
        verts = _merge_collinear(verts)
        if validate:
            _validate_rectilinear(verts)
        if signed_area2(verts) > 0:
            verts.reverse()  # normalize to clockwise
        self.vertices: Tuple[Point, ...] = tuple(verts)
        self.name = name
        self._mbr: Optional[Rect] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect, *, name: str = "") -> "Polygon":
        """Rectangle polygon covering ``rect`` (which must be non-degenerate)."""
        if rect.is_empty or rect.width == 0 or rect.height == 0:
            raise GeometryError(f"cannot build a polygon from degenerate {rect!r}")
        return cls(
            [
                Point(rect.xlo, rect.ylo),
                Point(rect.xlo, rect.yhi),
                Point(rect.xhi, rect.yhi),
                Point(rect.xhi, rect.ylo),
            ],
            name=name,
        )

    @classmethod
    def from_rect_coords(
        cls, xlo: int, ylo: int, xhi: int, yhi: int, *, name: str = ""
    ) -> "Polygon":
        """Rectangle polygon from corner coordinates."""
        return cls.from_rect(Rect(xlo, ylo, xhi, yhi), name=name)

    # -- fundamental properties -----------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def edges(self) -> List[Edge]:
        """Directed boundary edges, interior to the right of each."""
        n = len(self.vertices)
        return [Edge(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]

    @property
    def area(self) -> int:
        """Enclosed area by the Shoelace Theorem (paper §IV-D)."""
        return abs(signed_area2(self.vertices)) // 2

    @property
    def perimeter(self) -> int:
        return sum(e.length for e in self.edges())

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            xs = [p.x for p in self.vertices]
            ys = [p.y for p in self.vertices]
            self._mbr = Rect(min(xs), min(ys), max(xs), max(ys))
        return self._mbr

    @property
    def is_rectilinear(self) -> bool:
        """True if every edge is axis-parallel (the Listing-1 predicate)."""
        n = len(self.vertices)
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            if p.x != q.x and p.y != q.y:
                return False
        return True

    @property
    def is_rectangle(self) -> bool:
        return len(self.vertices) == 4 and self.mbr.area == self.area

    # -- point location ------------------------------------------------------

    def contains_point(self, p: Point, *, include_boundary: bool = True) -> bool:
        """Point-in-polygon via crossing number on the vertical edges."""
        on_boundary = self._on_boundary(p)
        if on_boundary:
            return include_boundary
        crossings = 0
        for e in self.edges():
            if not e.is_vertical:
                continue
            ylo, yhi = e.span
            # Half-open rule avoids double-counting shared vertices.
            if ylo <= p.y < yhi and e.start.x > p.x:
                crossings += 1
        return crossings % 2 == 1

    def _on_boundary(self, p: Point) -> bool:
        for e in self.edges():
            if e.is_vertical:
                ylo, yhi = e.span
                if p.x == e.start.x and ylo <= p.y <= yhi:
                    return True
            else:
                xlo, xhi = e.span
                if p.y == e.start.y and xlo <= p.x <= xhi:
                    return True
        return False

    # -- transformation ----------------------------------------------------------

    def transformed(self, transform: Transform) -> "Polygon":
        """Apply a placement transform; orientation is re-normalized."""
        return Polygon(transform.apply_many(self.vertices), name=self.name, validate=False)

    def translated(self, dx: int, dy: int) -> "Polygon":
        return Polygon(
            [v.translated(dx, dy) for v in self.vertices], name=self.name, validate=False
        )

    # -- value semantics ------------------------------------------------------------

    def canonical_vertices(self) -> Tuple[Point, ...]:
        """Vertices rotated so the lexicographically smallest comes first.

        Two polygons are geometrically identical iff their canonical vertex
        tuples match; used for memoisation keys and in tests.
        """
        if not self.vertices:
            return ()
        start = min(range(len(self.vertices)), key=lambda i: self.vertices[i])
        return self.vertices[start:] + self.vertices[:start]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.canonical_vertices() == other.canonical_vertices()

    def __hash__(self) -> int:
        return hash(self.canonical_vertices())

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Polygon({len(self.vertices)} vertices{label}, mbr={self.mbr!r})"


def _merge_collinear(vertices: List[Point]) -> List[Point]:
    """Drop straight-through vertices (collinear, same direction of travel).

    Spikes that double back (collinear but reversing) and duplicate vertices
    are kept so that validation can reject them with a clear error.
    """
    if len(vertices) < 3:
        return list(vertices)
    result: List[Point] = []
    n = len(vertices)
    for i in range(n):
        prev = vertices[(i - 1) % n]
        cur = vertices[i]
        nxt = vertices[(i + 1) % n]
        d1 = (cur.x - prev.x, cur.y - prev.y)
        d2 = (nxt.x - cur.x, nxt.y - cur.y)
        cross = d1[0] * d2[1] - d1[1] * d2[0]
        dot = d1[0] * d2[0] + d1[1] * d2[1]
        if cross == 0 and dot > 0:
            continue
        result.append(cur)
    return result


def _validate_rectilinear(vertices: Sequence[Point]) -> None:
    if len(vertices) < 4:
        raise GeometryError(f"polygon needs at least 4 vertices, got {len(vertices)}")
    if len(set(vertices)) != len(vertices):
        raise GeometryError("polygon has repeated vertices")
    n = len(vertices)
    for i in range(n):
        p = vertices[i]
        q = vertices[(i + 1) % n]
        if p.x != q.x and p.y != q.y:
            raise GeometryError(f"non-rectilinear edge {p} -> {q}")
        if p == q:
            raise GeometryError(f"degenerate zero-length edge at {p}")
    # Rectilinear simple polygons alternate horizontal/vertical edges.
    for i in range(n):
        p = vertices[i]
        q = vertices[(i + 1) % n]
        r = vertices[(i + 2) % n]
        first_horizontal = p.y == q.y
        second_horizontal = q.y == r.y
        if first_horizontal == second_horizontal:
            raise GeometryError(f"consecutive parallel edges around {q}")
    if signed_area2(vertices) == 0:
        raise GeometryError("polygon has zero area")
