"""The hierarchical layout database.

A :class:`Layout` is a set of named cells, one of which is the top. The
hierarchy is a DAG (a cell may be instantiated many times but cycles are
illegal); :meth:`Layout.validate` enforces this, and
:meth:`Layout.topological_order` yields cells children-first, which is the
order bottom-up passes (MBR computation, memoised checking) need.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..errors import LayoutError
from .cell import Cell


class Layout:
    """A GDSII-library-level database of cells."""

    def __init__(
        self,
        name: str = "LIB",
        *,
        meters_per_unit: float = 1e-9,
        user_unit: float = 1e-3,
    ) -> None:
        self.name = name
        self.meters_per_unit = meters_per_unit
        self.user_unit = user_unit
        self.cells: Dict[str, Cell] = {}
        self._top_name: Optional[str] = None

    # -- construction --------------------------------------------------------

    def add_cell(self, cell: Cell) -> Cell:
        """Register a cell; duplicate names are an error."""
        if cell.name in self.cells:
            raise LayoutError(f"duplicate cell name {cell.name!r}")
        self.cells[cell.name] = cell
        return cell

    def new_cell(self, name: str) -> Cell:
        """Create, register, and return an empty cell."""
        return self.add_cell(Cell(name))

    def set_top(self, name: str) -> None:
        """Pin the top cell explicitly (otherwise inferred)."""
        if name not in self.cells:
            raise LayoutError(f"cannot set unknown cell {name!r} as top")
        self._top_name = name

    # -- lookups ---------------------------------------------------------------

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise LayoutError(f"no cell named {name!r} in layout {self.name!r}") from None

    def top_cell(self) -> Cell:
        """The hierarchy root: the pinned top, or the unique unreferenced cell."""
        if self._top_name is not None:
            return self.cells[self._top_name]
        roots = self.root_cells()
        if len(roots) != 1:
            raise LayoutError(
                f"layout {self.name!r} has {len(roots)} root cells "
                f"({[c.name for c in roots]}); call set_top()"
            )
        return roots[0]

    def root_cells(self) -> List[Cell]:
        """All cells never referenced by another cell."""
        referenced: Set[str] = set()
        for cell in self.cells.values():
            for ref in cell.references:
                referenced.add(ref.cell_name)
        return [c for c in self.cells.values() if c.name not in referenced]

    def layers(self) -> List[int]:
        """All layers with geometry anywhere in the database (sorted)."""
        found: Set[int] = set()
        for cell in self.cells.values():
            found.update(cell.local_layers())
        return sorted(found)

    # -- hierarchy traversal -----------------------------------------------------

    def validate(self) -> None:
        """Check reference closure and acyclicity; raise LayoutError on failure."""
        for cell in self.cells.values():
            for ref in cell.references:
                if ref.cell_name not in self.cells:
                    raise LayoutError(
                        f"cell {cell.name!r} references undefined cell {ref.cell_name!r}"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[Cell]:
        """Cells ordered children-before-parents; raises on reference cycles."""
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        order: List[Cell] = []

        def visit(name: str, trail: List[str]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(trail + [name])
                raise LayoutError(f"reference cycle in layout {self.name!r}: {cycle}")
            state[name] = 0
            cell = self.cell(name)
            for ref in cell.references:
                visit(ref.cell_name, trail + [name])
            state[name] = 1
            order.append(cell)

        for name in sorted(self.cells):
            visit(name, [])
        return order

    def instance_counts(self, top: Optional[str] = None) -> Dict[str, int]:
        """How many times each cell is instantiated under the top cell.

        The top itself counts once. This drives the hierarchy-reuse numbers
        the paper's memoisation exploits: a check run once per *definition*
        covers ``instance_counts[name]`` placements.
        """
        top_cell = self.cell(top) if top else self.top_cell()
        counts: Dict[str, int] = {name: 0 for name in self.cells}
        counts[top_cell.name] = 1
        for cell in reversed(self.topological_order()):
            multiplier = counts[cell.name]
            if multiplier == 0:
                continue
            for ref in cell.references:
                counts[ref.cell_name] += multiplier * ref.placement_count
        return counts

    def iter_references(self) -> Iterator[tuple]:
        """All ``(parent_cell, reference)`` pairs in the database."""
        for cell in self.cells.values():
            for ref in cell.references:
                yield cell, ref

    # -- rule-definition conveniences (paper Listing 1 calls these on `db`) ----

    def layer(self, number: int):
        """Start a rule chain for one layer: ``db.layer(19).width()...``."""
        from ..core.rules import layer as layer_selector

        return layer_selector(number)

    def polygons(self):
        """Start a rule chain over all polygons: ``db.polygons()...``."""
        from ..core.rules import polygons as polygons_selector

        return polygons_selector()

    def __repr__(self) -> str:
        return f"Layout({self.name!r}, {len(self.cells)} cells)"
