"""Flattening: expand a hierarchical layout to transformed polygons.

The engine itself never flattens (paper §IV-A); this module exists for the
flat-mode baselines (KLayout-like flat/tiling, X-Check), for cross-checker
result validation, and for statistics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..geometry import Polygon, Transform
from .cell import Cell
from .library import Layout


def iter_flat_polygons(
    layout: Layout,
    *,
    top: Optional[str] = None,
    layers: Optional[Sequence[int]] = None,
) -> Iterator[Tuple[int, Polygon]]:
    """Yield ``(layer, polygon)`` in top-cell coordinates, depth-first.

    ``layers`` restricts output (and prunes recursion into cells whose
    subtree holds nothing on those layers, mirroring the MBR-pruned layer
    range query of paper §IV-A).
    """
    layout.validate()
    wanted = set(layers) if layers is not None else None
    top_cell = layout.cell(top) if top else layout.top_cell()
    reachable_layers = _subtree_layers(layout)

    def visit(cell: Cell, transform: Transform) -> Iterator[Tuple[int, Polygon]]:
        for layer in cell.local_layers():
            if wanted is not None and layer not in wanted:
                continue
            for polygon in cell.polygons(layer):
                yield layer, polygon.transformed(transform)
        for ref in cell.references:
            child = layout.cell(ref.cell_name)
            if wanted is not None and not (reachable_layers[child.name] & wanted):
                continue
            for placement in ref.placements():
                yield from visit(child, transform.compose(placement))

    yield from visit(top_cell, Transform())


def flatten(
    layout: Layout,
    *,
    top: Optional[str] = None,
    layers: Optional[Sequence[int]] = None,
) -> Dict[int, List[Polygon]]:
    """Flatten to a per-layer polygon dictionary in top-cell coordinates."""
    result: Dict[int, List[Polygon]] = {}
    for layer, polygon in iter_flat_polygons(layout, top=top, layers=layers):
        result.setdefault(layer, []).append(polygon)
    return result


def flatten_layer(layout: Layout, layer: int, *, top: Optional[str] = None) -> List[Polygon]:
    """Flatten a single layer."""
    return flatten(layout, top=top, layers=[layer]).get(layer, [])


def count_flat_polygons(layout: Layout, *, top: Optional[str] = None) -> Dict[int, int]:
    """Per-layer flat polygon counts *without* materializing geometry.

    Uses instance counts, so it is O(cells), not O(instances).
    """
    counts = layout.instance_counts(top)
    result: Dict[int, int] = {}
    for cell in layout.cells.values():
        multiplier = counts[cell.name]
        if multiplier == 0:
            continue
        for layer in cell.local_layers():
            result[layer] = result.get(layer, 0) + multiplier * len(cell.polygons(layer))
    return result


def _subtree_layers(layout: Layout) -> Dict[str, set]:
    """For each cell: the set of layers present anywhere in its subtree."""
    result: Dict[str, set] = {}
    for cell in layout.topological_order():
        layers = set(cell.local_layers())
        for ref in cell.references:
            layers |= result[ref.cell_name]
        result[cell.name] = layers
    return result
