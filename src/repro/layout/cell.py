"""Cells and cell references.

A *cell* (the paper uses "cell" and "structure" interchangeably) owns local
geometry per layer plus references to other cells. A reference stores the
referenced cell's **name** and a placement transform — the Python analog of
the paper's "a structure reference effectively stores a pointer to the
structure definition to reduce memory consumption" (§IV-A): geometry is never
copied per instance. Array references (AREF) keep their compact
``columns x rows`` form and expand on demand.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Polygon, Transform


@dataclasses.dataclass(frozen=True)
class Repetition:
    """Regular ``columns x rows`` array of placements (GDSII AREF)."""

    columns: int
    rows: int
    column_step: Tuple[int, int]
    row_step: Tuple[int, int]

    @property
    def count(self) -> int:
        return self.columns * self.rows

    def offsets(self) -> Iterator[Tuple[int, int]]:
        """All array offsets relative to the reference origin."""
        csx, csy = self.column_step
        rsx, rsy = self.row_step
        for row in range(self.rows):
            for col in range(self.columns):
                yield (col * csx + row * rsx, col * csy + row * rsy)


@dataclasses.dataclass(frozen=True)
class CellReference:
    """One SREF/AREF: an instantiation of ``cell_name`` under ``transform``."""

    cell_name: str
    transform: Transform = Transform()
    repetition: Optional[Repetition] = None

    @property
    def placement_count(self) -> int:
        return self.repetition.count if self.repetition else 1

    def placements(self) -> Iterator[Transform]:
        """Expand to one transform per placement (a single one for SREF)."""
        if self.repetition is None:
            yield self.transform
            return
        t = self.transform
        for dx, dy in self.repetition.offsets():
            # Array offsets apply in the *parent* coordinate system, i.e.
            # after the reference's own rotate/mirror, so they add to the
            # translation part directly.
            yield Transform(t.dx + dx, t.dy + dy, t.rotation, t.mirror_x, t.magnification)


class Cell:
    """A named structure: per-layer polygons plus child references."""

    __slots__ = ("name", "_polygons", "references")

    def __init__(self, name: str) -> None:
        self.name = name
        self._polygons: Dict[int, List[Polygon]] = {}
        self.references: List[CellReference] = []

    # -- construction ------------------------------------------------------

    def add_polygon(self, layer: int, polygon: Polygon) -> None:
        """Attach a polygon to ``layer`` of this cell (local coordinates)."""
        self._polygons.setdefault(layer, []).append(polygon)

    def add_reference(self, reference: CellReference) -> None:
        """Attach a child reference."""
        self.references.append(reference)

    # -- queries ------------------------------------------------------------

    def local_layers(self) -> List[int]:
        """Layers with geometry defined directly in this cell (sorted)."""
        return sorted(self._polygons)

    def polygons(self, layer: int) -> List[Polygon]:
        """Local polygons on ``layer`` (empty list if none)."""
        return self._polygons.get(layer, [])

    def all_polygons(self) -> Iterator[Tuple[int, Polygon]]:
        """All local ``(layer, polygon)`` pairs."""
        for layer in sorted(self._polygons):
            for polygon in self._polygons[layer]:
                yield layer, polygon

    @property
    def num_local_polygons(self) -> int:
        return sum(len(polys) for polys in self._polygons.values())

    @property
    def is_leaf(self) -> bool:
        """True if this cell references no other cells."""
        return not self.references

    def __repr__(self) -> str:
        return (
            f"Cell({self.name!r}, {self.num_local_polygons} polygons, "
            f"{len(self.references)} references)"
        )
