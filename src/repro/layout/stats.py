"""Layout statistics: the numbers benchmarks and reports summarize."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .flatten import count_flat_polygons
from .library import Layout


@dataclasses.dataclass(frozen=True)
class LayoutStats:
    """Summary statistics of one layout database."""

    name: str
    num_cells: int
    num_references: int
    num_instances: int
    num_local_polygons: int
    flat_polygons_per_layer: Dict[int, int]
    hierarchy_depth: int

    @property
    def num_flat_polygons(self) -> int:
        return sum(self.flat_polygons_per_layer.values())

    @property
    def reuse_factor(self) -> float:
        """Flat polygons per locally-defined polygon — the hierarchy leverage."""
        if self.num_local_polygons == 0:
            return 0.0
        return self.num_flat_polygons / self.num_local_polygons

    def summary(self) -> str:
        layer_parts = ", ".join(
            f"L{layer}:{count}" for layer, count in sorted(self.flat_polygons_per_layer.items())
        )
        return (
            f"{self.name}: {self.num_cells} cells, {self.num_instances} instances, "
            f"{self.num_flat_polygons} flat polygons ({layer_parts}), "
            f"depth {self.hierarchy_depth}, reuse {self.reuse_factor:.1f}x"
        )


def compute_stats(layout: Layout, *, top: Optional[str] = None) -> LayoutStats:
    """Compute :class:`LayoutStats` for ``layout`` (under its top cell)."""
    layout.validate()
    counts = layout.instance_counts(top)
    depth: Dict[str, int] = {}
    for cell in layout.topological_order():
        child_depth = max(
            (depth[ref.cell_name] for ref in cell.references),
            default=0,
        )
        depth[cell.name] = child_depth + 1
    top_cell = layout.cell(top) if top else layout.top_cell()
    return LayoutStats(
        name=layout.name,
        num_cells=len(layout.cells),
        num_references=sum(len(c.references) for c in layout.cells.values()),
        num_instances=sum(counts.values()),
        num_local_polygons=sum(c.num_local_polygons for c in layout.cells.values()),
        flat_polygons_per_layer=count_flat_polygons(layout, top=top),
        hierarchy_depth=depth[top_cell.name],
    )
