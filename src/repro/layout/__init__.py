"""Hierarchical layout database.

Cells, references (SREF/AREF kept compact), the library-level
:class:`Layout`, GDSII conversions, flattening for the flat-mode baselines,
and statistics.
"""

from .builder import gdsii_from_layout, layout_from_gdsii, path_outline
from .cell import Cell, CellReference, Repetition
from .flatten import count_flat_polygons, flatten, flatten_layer, iter_flat_polygons
from .library import Layout
from .stats import LayoutStats, compute_stats

__all__ = [
    "Cell",
    "CellReference",
    "Layout",
    "LayoutStats",
    "Repetition",
    "compute_stats",
    "count_flat_polygons",
    "flatten",
    "flatten_layer",
    "gdsii_from_layout",
    "iter_flat_polygons",
    "layout_from_gdsii",
    "path_outline",
]
