"""Conversions between the GDSII stream model and the layout database.

``layout_from_gdsii`` turns raw stream structures into cells (converting
PATH elements to their outline polygons, since DRC operates on filled
geometry), and ``gdsii_from_layout`` serializes a layout back, so that
workload layouts can be persisted as genuine GDSII files and re-read.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import GdsiiError
from ..gdsii.model import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
    magnification_scalar,
    strans_angle_to_rotation,
)
from ..geometry import Point, Polygon, Transform
from .cell import CellReference, Repetition
from .library import Layout


def layout_from_gdsii(library: GdsLibrary) -> Layout:
    """Build a hierarchical layout database from a parsed GDSII library."""
    library.validate_references()
    layout = Layout(
        library.name,
        meters_per_unit=library.meters_per_unit,
        user_unit=library.user_unit,
    )
    for structure in library.structures:
        cell = layout.new_cell(structure.name)
        for element in structure.elements:
            if isinstance(element, GdsBoundary):
                polygon = Polygon(
                    [Point(x, y) for x, y in element.xy],
                    name=element.properties.get(1, ""),
                )
                cell.add_polygon(element.layer, polygon)
            elif isinstance(element, GdsPath):
                polygon = path_outline(element.xy, element.width)
                polygon.name = element.properties.get(1, "")
                cell.add_polygon(element.layer, polygon)
            elif isinstance(element, GdsSref):
                cell.add_reference(
                    CellReference(element.sname, _transform_from_strans(element))
                )
            elif isinstance(element, GdsAref):
                cell.add_reference(_reference_from_aref(element))
            else:  # pragma: no cover - the reader only emits the above
                raise GdsiiError(f"unsupported element {type(element).__name__}")
    layout.validate()
    return layout


def gdsii_from_layout(layout: Layout) -> GdsLibrary:
    """Serialize a layout database back to the raw GDSII model."""
    layout.validate()
    library = GdsLibrary(
        name=layout.name,
        user_unit=layout.user_unit,
        meters_per_unit=layout.meters_per_unit,
    )
    # Children-first ordering keeps references resolvable by simple readers.
    for cell in layout.topological_order():
        structure = GdsStructure(name=cell.name)
        for layer, polygon in cell.all_polygons():
            properties = {1: polygon.name} if polygon.name else {}
            structure.elements.append(
                GdsBoundary(
                    layer=layer,
                    datatype=0,
                    xy=[(p.x, p.y) for p in polygon.vertices],
                    properties=properties,
                )
            )
        for ref in cell.references:
            structure.elements.append(_element_from_reference(ref))
        library.structures.append(structure)
    return library


def path_outline(xy: List[Tuple[int, int]], width: int) -> Polygon:
    """Outline polygon of a rectilinear PATH with flush (pathtype 0) ends.

    Supports any axis-parallel polyline with 90-degree turns (square miter
    joins): the left side is traced forward, the right side backward, and
    endpoints are capped flush. Every segment must be at least ``width``
    long so the outline stays a simple polygon; collinear runs are merged.
    """
    if width <= 0:
        raise GdsiiError(f"PATH requires a positive width, got {width}")
    half = width // 2
    if 2 * half != width:
        raise GdsiiError(f"odd PATH width {width} is off the manufacturing grid")

    points = _merge_collinear_waypoints(xy)
    if len(points) < 2:
        raise GdsiiError(f"PATH needs at least 2 distinct points, got {xy}")

    directions: List[Tuple[int, int]] = []
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        if x1 == x2 and y1 != y2:
            directions.append((0, 1 if y2 > y1 else -1))
        elif y1 == y2 and x1 != x2:
            directions.append((1 if x2 > x1 else -1, 0))
        else:
            raise GdsiiError(f"non-rectilinear or degenerate PATH segment in {xy}")
        if abs(x2 - x1) + abs(y2 - y1) < width and len(points) > 2:
            raise GdsiiError(
                f"PATH segment shorter than its width ({width}) in {xy}; "
                "the outline would self-intersect"
            )

    def side(sign: int) -> List[Tuple[int, int]]:
        """Offset waypoints on one side (+1 left of travel, -1 right)."""
        out: List[Tuple[int, int]] = []
        # Left normal of direction (dx, dy) is (-dy, dx).
        first = directions[0]
        out.append(
            (
                points[0][0] - sign * first[1] * half,
                points[0][1] + sign * first[0] * half,
            )
        )
        for i in range(1, len(points) - 1):
            before = directions[i - 1]
            after = directions[i]
            if before[0] == -after[0] and before[1] == -after[1]:
                raise GdsiiError(f"PATH doubles back on itself at {points[i]}")
            # Square miter: sum of both segments' normal offsets.
            nx = -sign * (before[1] + after[1]) * half
            ny = sign * (before[0] + after[0]) * half
            out.append((points[i][0] + nx, points[i][1] + ny))
        last = directions[-1]
        out.append(
            (
                points[-1][0] - sign * last[1] * half,
                points[-1][1] + sign * last[0] * half,
            )
        )
        return out

    outline = side(+1) + list(reversed(side(-1)))
    return Polygon(outline)


def _merge_collinear_waypoints(xy: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    points = [xy[0]]
    for p in xy[1:]:
        if p != points[-1]:
            points.append(p)
    merged = [points[0]]
    for i in range(1, len(points) - 1):
        prev, cur, nxt = merged[-1], points[i], points[i + 1]
        d1 = (cur[0] - prev[0], cur[1] - prev[1])
        d2 = (nxt[0] - cur[0], nxt[1] - cur[1])
        # Drop only straight-through waypoints (same direction of travel);
        # reversals must survive so they can be rejected explicitly.
        straight = d1[0] * d2[1] == d1[1] * d2[0] and (
            d1[0] * d2[0] > 0 or d1[1] * d2[1] > 0
        )
        if not straight:
            merged.append(cur)
    merged.append(points[-1])
    return merged


def _transform_from_strans(element) -> Transform:
    strans: GdsStrans = element.strans
    return Transform(
        dx=element.origin[0],
        dy=element.origin[1],
        rotation=strans_angle_to_rotation(strans.angle),
        mirror_x=strans.mirror_x,
        magnification=magnification_scalar(strans.magnification),
    )


def _reference_from_aref(element: GdsAref) -> CellReference:
    transform = Transform(
        dx=element.origin[0],
        dy=element.origin[1],
        rotation=strans_angle_to_rotation(element.strans.angle),
        mirror_x=element.strans.mirror_x,
        magnification=magnification_scalar(element.strans.magnification),
    )
    repetition = Repetition(
        columns=element.columns,
        rows=element.rows,
        column_step=element.column_step,
        row_step=element.row_step,
    )
    return CellReference(element.sname, transform, repetition)


def _element_from_reference(ref: CellReference):
    strans = GdsStrans(
        mirror_x=ref.transform.mirror_x,
        magnification=float(ref.transform.magnification),
        angle=float(ref.transform.rotation),
    )
    origin = (ref.transform.dx, ref.transform.dy)
    if ref.repetition is None:
        return GdsSref(sname=ref.cell_name, origin=origin, strans=strans)
    rep = ref.repetition
    col_corner = (
        origin[0] + rep.columns * rep.column_step[0],
        origin[1] + rep.columns * rep.column_step[1],
    )
    row_corner = (
        origin[0] + rep.rows * rep.row_step[0],
        origin[1] + rep.rows * rep.row_step[1],
    )
    return GdsAref(
        sname=ref.cell_name,
        columns=rep.columns,
        rows=rep.rows,
        xy=[origin, col_corner, row_corner],
        strans=strans,
    )
