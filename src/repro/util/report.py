"""Plain-text table rendering for benchmark reports (paper Tables I/II style)."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Runtime cell in the paper's style: '< 0.01' below the print resolution."""
    if seconds < 0.005:
        return "< 0.01"
    return f"{seconds:.2f}"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregation ('we value all checks equally')."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def normalized_row(
    column_geomeans: Sequence[float], baseline_index: int
) -> List[str]:
    """The paper's 'average' row: each column's geomean over the baseline's."""
    base = column_geomeans[baseline_index]
    out: List[str] = []
    for value in column_geomeans:
        if base <= 0 or value <= 0:
            out.append("-")
        else:
            out.append(f"{value / base * 100:.1f}%")
    return out


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_seconds(value)
    return str(value)
