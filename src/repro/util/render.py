"""ASCII layout rendering (debugging / example output).

Renders a window of a layout to a character grid: one glyph per layer
(assigned in layer order), ``#`` where layers overlap, and ``X`` over
violation-marker regions. Intended for small windows — cell-level debugging
and documentation — not chip plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..checks.base import Violation
from ..geometry import Rect
from ..layout.flatten import iter_flat_polygons
from ..layout.library import Layout

#: Glyphs assigned to layers in ascending layer order.
LAYER_GLYPHS = "abcdefghijklmnopqrstuvwxyz"
OVERLAP_GLYPH = "#"
VIOLATION_GLYPH = "X"
EMPTY_GLYPH = "."


def render_window(
    layout: Layout,
    window: Rect,
    *,
    width: int = 80,
    height: int = 40,
    layers: Optional[Sequence[int]] = None,
    violations: Iterable[Violation] = (),
) -> str:
    """Render ``window`` of ``layout`` to a ``width x height`` text grid."""
    if window.is_empty or window.width == 0 or window.height == 0:
        raise ValueError("render window must have positive extent")
    width = max(2, width)
    height = max(2, height)
    chosen = sorted(layers) if layers is not None else layout.layers()
    glyph_of: Dict[int, str] = {
        layer: LAYER_GLYPHS[i % len(LAYER_GLYPHS)] for i, layer in enumerate(chosen)
    }

    grid: List[List[str]] = [[EMPTY_GLYPH] * width for _ in range(height)]

    def cell_range(rect: Rect):
        """Grid cells whose sample region intersects ``rect``."""
        cx0 = max(0, (rect.xlo - window.xlo) * width // max(1, window.width))
        cx1 = min(width - 1, (rect.xhi - window.xlo) * width // max(1, window.width))
        cy0 = max(0, (rect.ylo - window.ylo) * height // max(1, window.height))
        cy1 = min(height - 1, (rect.yhi - window.ylo) * height // max(1, window.height))
        return cx0, cx1, cy0, cy1

    for layer, polygon in iter_flat_polygons(layout, layers=chosen):
        mbr = polygon.mbr
        if not mbr.overlaps(window):
            continue
        clipped = mbr.intersection(window)
        cx0, cx1, cy0, cy1 = cell_range(clipped)
        glyph = glyph_of[layer]
        for cy in range(cy0, cy1 + 1):
            row = grid[cy]
            for cx in range(cx0, cx1 + 1):
                row[cx] = OVERLAP_GLYPH if row[cx] not in (EMPTY_GLYPH, glyph) else glyph

    for violation in violations:
        region = violation.region.intersection(window)
        if region.is_empty:
            continue
        cx0, cx1, cy0, cy1 = cell_range(region)
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                grid[cy][cx] = VIOLATION_GLYPH

    # y grows upward in layout space: print rows top-down.
    lines = ["".join(row) for row in reversed(grid)]
    legend = "  ".join(f"{glyph_of[layer]}=L{layer}" for layer in chosen)
    header = (
        f"window [{window.xlo},{window.ylo}]..[{window.xhi},{window.yhi}]  "
        f"{legend}  {OVERLAP_GLYPH}=overlap  {VIOLATION_GLYPH}=violation"
    )
    return "\n".join([header] + lines)
