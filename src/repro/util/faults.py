"""Deterministic fault injection for the execution pipeline.

The multiprocess backend recovers from crashed, hung, and killed workers,
corrupt pack-store entries, and failed shared-memory attaches — but none of
those happen on a healthy CI box. This module makes every failure mode
reproducible on demand so the recovery paths are *tested*, not trusted.

A fault plan is parsed from a spec string (``EngineOptions.faults`` or the
``REPRO_FAULTS`` environment variable)::

    site[:key=value[,key=value...]][;site...]

    REPRO_FAULTS="worker_raise:times=1;packstore_corrupt:times=2"
    REPRO_FAULTS="worker_hang:rule=M3.S,times=1"
    REPRO_FAULTS="shm_attach_fail:p=0.5,seed=7"

Sites
-----
``worker_raise`` / ``worker_hang`` / ``worker_die``
    Consulted by the *parent* at task submission; the matching task carries
    a fault action the worker executes before the task body (raise
    :class:`InjectedFault`, sleep :data:`HANG_SECONDS`, or SIGKILL itself).
    Deciding at submission keeps the injection deterministic — submission
    order is the plan order, independent of pool scheduling.
``packstore_corrupt``
    Consulted by :meth:`repro.core.packstore.PackStore._read` before an
    *existing* entry is parsed; firing physically corrupts the entry's
    header on disk, so the store's real corruption handling (drop + cold
    rebuild + rewrite) runs, not a simulation of it.
``shm_attach_fail``
    Consulted by the worker-side shared-memory attach; firing raises
    ``OSError`` as if ``/dev/shm`` were gone.

Parameters
----------
``times=N``  fire on the first N matching opportunities (default 1);
``skip=N``   let the first N opportunities pass unfaulted;
``rule=NAME``  only fire for tasks of the named rule (worker sites);
``p=F,seed=S``  fire each opportunity with probability F drawn from a
  ``random.Random`` seeded at parse time — seeded, repeatable, and never
  wall-clock-dependent (``times`` still bounds the total).

Installation is idempotent by spec: installing the same string keeps the
live plan (and its consumed budgets), so a worker re-resolving its options
does not re-arm faults it already fired. An optional install *token*
bounds that idempotence to one check — warm-pool workers outlive checks,
and salting their installs with a per-check epoch re-arms budgets between
checks just like the cold path's fresh worker processes. Recovery code
runs under :func:`suppressed` so a fallback can never be re-faulted into
failing.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import random
import signal
import threading
import time
from typing import Iterator, List, Optional

__all__ = [
    "ACTIONS",
    "FAULTS_ENV",
    "FaultDirective",
    "FaultPlan",
    "FaultSpecError",
    "HANG_SECONDS",
    "InjectedFault",
    "PACKSTORE_CORRUPT",
    "SHM_ATTACH_FAIL",
    "SITES",
    "WORKER_DIE",
    "WORKER_HANG",
    "WORKER_RAISE",
    "act",
    "active",
    "clear",
    "install",
    "is_suppressed",
    "resolve_spec",
    "should_fire",
    "suppressed",
]

#: Environment variable carrying a fault spec (``EngineOptions.faults`` wins).
FAULTS_ENV = "REPRO_FAULTS"

WORKER_RAISE = "worker_raise"
WORKER_HANG = "worker_hang"
WORKER_DIE = "worker_die"
PACKSTORE_CORRUPT = "packstore_corrupt"
SHM_ATTACH_FAIL = "shm_attach_fail"

#: Every injection site a directive may name.
SITES = (WORKER_RAISE, WORKER_HANG, WORKER_DIE, PACKSTORE_CORRUPT, SHM_ATTACH_FAIL)

#: Worker fault site -> the action string shipped inside the task.
ACTIONS = {WORKER_RAISE: "raise", WORKER_HANG: "hang", WORKER_DIE: "die"}

#: How long an injected hang sleeps; far beyond any sane task timeout, so
#: the parent's timeout (not the sleep ending) is what unblocks the check.
HANG_SECONDS = 600.0


class FaultSpecError(ValueError):
    """A fault spec string that cannot be parsed."""


class InjectedFault(RuntimeError):
    """The exception an injected ``worker_raise`` fault throws."""


@dataclasses.dataclass
class FaultDirective:
    """One ``site:params`` clause of a fault spec."""

    site: str
    rule: Optional[str] = None
    times: Optional[int] = 1
    skip: int = 0
    p: Optional[float] = None
    seed: int = 0
    seen: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        # One RNG per directive, seeded at parse time: the draw sequence
        # depends only on (site, seed) and the consult order, never on the
        # clock or the PID.
        self._rng = random.Random(f"{self.site}:{self.seed}")

    def consult(self, key: Optional[str]) -> bool:
        """Record one opportunity at this directive's site; True = fire."""
        if self.rule is not None and self.rule != key:
            return False
        self.seen += 1
        if self.seen <= self.skip:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.p is not None and self._rng.random() >= self.p:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A parsed fault spec with per-directive firing budgets."""

    def __init__(self, spec: str, directives: List[FaultDirective]) -> None:
        self.spec = spec
        self.directives = directives

    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a spec string; None/empty means no faults. Raises
        :class:`FaultSpecError` (a ``ValueError``) on malformed input."""
        if not spec:
            return None
        directives: List[FaultDirective] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            site, _, params = clause.partition(":")
            site = site.strip()
            if site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r}; expected one of {SITES}"
                )
            directive = FaultDirective(site=site)
            if params.strip():
                for item in params.split(","):
                    name, sep, value = item.partition("=")
                    name, value = name.strip(), value.strip()
                    if not sep or not value:
                        raise FaultSpecError(
                            f"malformed fault parameter {item.strip()!r} "
                            f"in {clause!r}; expected key=value"
                        )
                    try:
                        if name == "rule":
                            directive.rule = value
                        elif name == "times":
                            directive.times = int(value)
                        elif name == "skip":
                            directive.skip = int(value)
                        elif name == "seed":
                            directive.seed = int(value)
                        elif name == "p":
                            directive.p = float(value)
                            if not 0.0 <= directive.p <= 1.0:
                                raise FaultSpecError(
                                    f"fault probability must be in [0, 1], "
                                    f"got {directive.p}"
                                )
                        else:
                            raise FaultSpecError(
                                f"unknown fault parameter {name!r} in {clause!r}"
                            )
                    except (TypeError, ValueError) as error:
                        if isinstance(error, FaultSpecError):
                            raise
                        raise FaultSpecError(
                            f"bad value for fault parameter {name!r} "
                            f"in {clause!r}: {value!r}"
                        ) from None
                # Rebuild the RNG now that the seed is final.
                directive.__post_init__()
            directives.append(directive)
        if not directives:
            return None
        return cls(spec, directives)

    def should_fire(self, site: str, key: Optional[str] = None) -> bool:
        """Consult every directive at ``site``; True if any fires."""
        fired = False
        for directive in self.directives:
            if directive.site == site and directive.consult(key):
                fired = True
        return fired

    def worker_fault(self, rule_name: Optional[str]) -> Optional[str]:
        """The action ("raise"/"hang"/"die") to attach to one submission."""
        for site, action in ACTIONS.items():
            if self.should_fire(site, rule_name):
                return action
        return None


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_active_token: Optional[object] = None
_install_lock = threading.Lock()

# Suppression is per *thread*: under concurrent serving one request's
# recovery ladder (which runs inline fallbacks under ``suppressed()``) must
# not mute faults that another request's check is supposed to see. A plain
# process-global depth did exactly that.
_suppress = threading.local()


def resolve_spec(options) -> Optional[str]:
    """The spec ``options`` selects: ``options.faults`` or ``$REPRO_FAULTS``."""
    spec = getattr(options, "faults", None)
    if spec is not None:
        return spec or None
    return os.environ.get(FAULTS_ENV) or None


def install(
    spec: Optional[str], token: Optional[object] = None
) -> Optional[FaultPlan]:
    """Install the plan for ``spec`` process-globally (None clears it).

    Idempotent by spec: re-installing the currently active spec keeps the
    live plan and its consumed budgets, so code re-resolving its options
    mid-check does not re-arm faults that already fired.

    ``token`` scopes that idempotence: passing a token different from the
    one the live plan was installed with re-parses the spec with fresh
    budgets even when the spec string is unchanged. Warm-pool workers
    outlive checks, so the multiprocess backend salts worker installs with
    a per-check epoch — each check re-arms once per worker, exactly like
    the cold path's fresh processes. ``token=None`` means "don't care"
    and never invalidates a live plan.

    The swap is locked: two concurrent plan compilations racing here must
    settle on one live plan, not interleave the (parse, publish) pair. The
    plan itself stays process-global on purpose — the spec is part of the
    engine options every concurrent request of one daemon shares, and its
    firing budgets meter *process-wide* opportunities by design.
    """
    global _active, _active_token
    with _install_lock:
        if (
            _active is not None
            and _active.spec == spec
            and (token is None or token == _active_token)
        ):
            return _active
        _active = FaultPlan.parse(spec)
        _active_token = token
        return _active


def clear() -> None:
    """Drop any installed plan (tests call this between cases)."""
    global _active, _active_token
    with _install_lock:
        _active = None
        _active_token = None


def active() -> Optional[FaultPlan]:
    return _active


def _suppress_depth() -> int:
    return getattr(_suppress, "depth", 0)


def is_suppressed() -> bool:
    return _suppress_depth() > 0


@contextlib.contextmanager
def suppressed() -> Iterator[None]:
    """No fault fires in this context *on this thread* (recovery paths)."""
    _suppress.depth = _suppress_depth() + 1
    try:
        yield
    finally:
        _suppress.depth -= 1


def should_fire(site: str, key: Optional[str] = None) -> bool:
    """Consult the installed plan at ``site`` (False when none/suppressed)."""
    plan = _active
    if plan is None or is_suppressed():
        return False
    return plan.should_fire(site, key)


def act(action: str) -> None:
    """Execute a worker fault action in the current process."""
    if action == "raise":
        raise InjectedFault("injected worker fault")
    if action == "hang":
        time.sleep(HANG_SECONDS)
        return
    if action == "die":
        if hasattr(signal, "SIGKILL"):  # POSIX: die like an OOM kill
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(86)  # pragma: no cover - non-POSIX fallback
    raise ValueError(f"unknown fault action {action!r}")
