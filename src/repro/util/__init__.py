"""Program utilities (the paper's infrastructure layer: timer, logger, etc.)."""

from .logging import configure, get_logger
from .profile import (
    PHASE_EDGE_CHECKS,
    PHASE_ORDER,
    PHASE_OTHER,
    PHASE_PARTITION,
    PHASE_SWEEPLINE,
    PhaseProfile,
)
from .render import render_window
from .report import format_seconds, format_table, geometric_mean, normalized_row
from .timer import Timer, time_call

__all__ = [
    "PHASE_EDGE_CHECKS",
    "PHASE_ORDER",
    "PHASE_OTHER",
    "PHASE_PARTITION",
    "PHASE_SWEEPLINE",
    "PhaseProfile",
    "Timer",
    "configure",
    "format_seconds",
    "format_table",
    "geometric_mean",
    "get_logger",
    "normalized_row",
    "render_window",
    "time_call",
]
