"""Phase profiler behind the paper's Fig. 4 runtime breakdown.

The sequential engine wraps its three stages — adaptive partition, MBR
sweepline (with interval-tree operations), and edge-to-edge checks — in
named phases; :class:`PhaseProfile` accumulates per-phase seconds and renders
the percentage breakdown and an ASCII bar chart like the paper's figure.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Tuple

PHASE_PARTITION = "partition"
PHASE_SWEEPLINE = "sweepline"
PHASE_EDGE_CHECKS = "edge-checks"
PHASE_OTHER = "other"

#: Canonical phase order for reports.
PHASE_ORDER = (PHASE_PARTITION, PHASE_SWEEPLINE, PHASE_EDGE_CHECKS, PHASE_OTHER)


class PhaseProfile:
    """Accumulates wall time per named phase."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def merge(self, other: "PhaseProfile") -> None:
        for name, seconds in other._seconds.items():
            self.add(name, seconds)

    def to_dict(self) -> Dict[str, float]:
        """Plain per-phase seconds (the cross-process wire format)."""
        return dict(self._seconds)

    def add_dict(self, seconds_by_phase: Dict[str, float]) -> None:
        """Accumulate a :meth:`to_dict` payload (shard/worker merge)."""
        for name, seconds in seconds_by_phase.items():
            self.add(name, seconds)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def fractions(self) -> List[Tuple[str, float]]:
        """(phase, fraction-of-total) in canonical order, then extras."""
        total = self.total
        if total == 0.0:
            return []
        names = [n for n in PHASE_ORDER if n in self._seconds]
        names += [n for n in sorted(self._seconds) if n not in PHASE_ORDER]
        return [(name, self._seconds[name] / total) for name in names]

    def breakdown_table(self, *, width: int = 40) -> str:
        """Render the Fig.-4-style breakdown as text with ASCII bars."""
        lines = []
        for name, fraction in self.fractions():
            bar = "#" * max(1, round(fraction * width))
            lines.append(
                f"{name:<12} {self._seconds[name] * 1e3:9.2f} ms "
                f"{fraction * 100:5.1f}%  {bar}"
            )
        lines.append(f"{'total':<12} {self.total * 1e3:9.2f} ms")
        return "\n".join(lines)
