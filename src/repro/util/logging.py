"""Package logger (paper §V-A infrastructure layer: 'timer, logger, etc.')."""

from __future__ import annotations

import logging

_LOGGER_NAME = "repro"


def get_logger(child: str = "") -> logging.Logger:
    """The package logger, or a named child of it."""
    name = f"{_LOGGER_NAME}.{child}" if child else _LOGGER_NAME
    return logging.getLogger(name)


def configure(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple stderr handler (idempotent) and set the level."""
    logger = logging.getLogger(_LOGGER_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger
