"""Wall-clock timing utilities (paper §V-A infrastructure layer)."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """A start/stop accumulating wall-clock timer.

    Usable directly or as a context manager; ``elapsed`` accumulates across
    multiple start/stop cycles, which is what per-phase profiling needs.
    """

    def __init__(self) -> None:
        self._started: Optional[float] = None
        self._elapsed = 0.0

    def start(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError("timer already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("timer not running")
        self._elapsed += time.perf_counter() - self._started
        self._started = None
        return self._elapsed

    def reset(self) -> None:
        self._started = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (includes the current running span, if any)."""
        extra = time.perf_counter() - self._started if self._started is not None else 0.0
        return self._elapsed + extra

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def time_call(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
