"""Violation-hunt scenario: plant known violations and recover all of them.

A physical-verification engineer's regression flow: take a clean design,
inject a controlled population of spacing / width / area / enclosure
violations, run the checker, and confirm exact recall — every planted
violation found, nothing else flagged. Also demonstrates the machine-
readable CSV marker output.

    python examples/violation_hunt.py
"""

import repro as odrc
from repro.checks import sort_violations
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


def main() -> None:
    layout = build_design("ibex")
    plan = InjectionPlan(spacing=4, width=3, area=2, enclosure=3)
    expected = inject_violations(
        layout, plan, layer=asap7.M2, via_layer=asap7.V2, metal_layer=asap7.M2, seed=42
    )
    print(f"planted {len(expected)} violations into 'ibex' (M2 scratch strip)")

    deck = [
        asap7.spacing_rule(asap7.M2),
        asap7.width_rule(asap7.M2),
        asap7.area_rule(asap7.M2),
        asap7.enclosure_rule(asap7.V2, asap7.M2),
    ]
    engine = odrc.Engine(mode="parallel")
    report = engine.check(layout, rules=deck)

    found = {v for result in report.results for v in result.violations}
    missing = set(expected) - found
    extra = found - set(expected)
    print(f"found {len(found)}; missing {len(missing)}; unexpected {len(extra)}")
    assert not missing and not extra, "recall failure!"

    print("\nmarkers (CSV):")
    print(report.to_csv())

    print("\nworst violations first:")
    for violation in sort_violations(found)[:5]:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
