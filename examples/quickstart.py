"""Quickstart: the paper's Listing 1 workflow, end to end.

Builds a small layout, writes it to a real GDSII stream file, reads it back,
defines a rule deck with the chaining DSL, and runs the engine in both
modes. Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import repro as odrc
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout, gdsii_from_layout
from repro.gdsii import read_layout, write


def build_demo_layout() -> Layout:
    """A tiny hierarchical layout with one deliberate spacing violation."""
    layout = Layout("demo")
    cell = layout.new_cell("wire_pair")
    cell.add_polygon(19, Polygon.from_rect_coords(0, 0, 20, 200))
    cell.add_polygon(19, Polygon.from_rect_coords(35, 0, 55, 200, name="net_a"))
    top = layout.new_cell("top")
    top.add_reference(CellReference("wire_pair", Transform()))
    top.add_reference(CellReference("wire_pair", Transform(dx=500, mirror_x=True, dy=200)))
    # Deliberate violation: a wire only 12 nm from an instance (rule: 15).
    top.add_polygon(19, Polygon.from_rect_coords(67, 0, 87, 200))
    layout.set_top("top")
    return layout


def main() -> None:
    # 1. Persist and re-read through the GDSII codec (Listing 1:
    #    odrc::gdsii::read("path-to-gdsii")).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "demo.gds"
        write(gdsii_from_layout(build_demo_layout()), path)
        db = read_layout(path)
        db.set_top("top")
        print(f"read {path.name}: {len(db.cells)} cells, layers {db.layers()}")

    # 2. Create an engine and add rules in chaining style (Listing 1).
    engine = odrc.Engine(mode="sequential")
    engine.add_rules(
        [
            odrc.rules.polygons().is_rectilinear(),
            odrc.rules.layer(19).width().greater_than(18),
            odrc.rules.layer(19).spacing().greater_than(15),
            odrc.rules.layer(19).area().greater_than(1000),
            odrc.rules.layer(19).polygons().ensures(lambda p: True),
        ]
    )

    # 3. Check, in both execution modes (Fig. 1's two branches).
    for mode in ("sequential", "parallel"):
        engine.options.mode = mode
        report = engine.check(db)
        print()
        print(report.summary())

    # 4. The executed pipeline phases of the last rule (Fig. 1 / Fig. 4).
    print("\npipeline phases of the spacing rule:")
    print(engine.last_profiles["L19.S.15"].breakdown_table())


if __name__ == "__main__":
    main()
