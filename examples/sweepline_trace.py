"""Fig. 3 illustration: trace the MBR sweepline and its interval-tree status.

Reproduces the paper's Fig. 3 walkthrough on a small MBR population: the
conceptual line moves top to bottom; at each top side the rect's x-interval
is queried against the interval tree (reporting overlaps) and inserted, at
each bottom side it is removed.

    python examples/sweepline_trace.py
"""

from repro.geometry import Rect
from repro.spatial import IntervalTree

RECTS = {
    "A": Rect(0, 60, 40, 100),
    "B": Rect(30, 40, 70, 90),
    "C": Rect(80, 55, 120, 95),
    "D": Rect(10, 0, 50, 30),
    "E": Rect(45, 10, 95, 50),
}


def main() -> None:
    events = []
    for name, rect in RECTS.items():
        events.append((-rect.yhi, 0, name))  # ENTER at the top side
        events.append((-rect.ylo, 1, name))  # EXIT at the bottom side
    events.sort()

    tree = IntervalTree([r.xlo for r in RECTS.values()])
    status = set()
    print("sweepline top-to-bottom over", ", ".join(RECTS))
    for neg_y, kind, name in events:
        rect = RECTS[name]
        y = -neg_y
        if kind == 0:
            overlaps = sorted(tree.query(rect.xlo, rect.xhi))
            tree.insert(rect.xlo, rect.xhi, name)
            status.add(name)
            report = f" -> overlap pairs {[f'{o}-{name}' for o in overlaps]}" if overlaps else ""
            print(
                f"y={y:>3}: ENTER {name} [{rect.xlo}, {rect.xhi}] "
                f"status={sorted(status)}{report}"
            )
        else:
            tree.remove(rect.xlo, rect.xhi, name)
            status.discard(name)
            print(f"y={y:>3}: EXIT  {name}              status={sorted(status)}")

    print("\n(B overlaps A; E overlaps B and D -- as reported above)")


if __name__ == "__main__":
    main()
