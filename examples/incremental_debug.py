"""Debug-loop scenario: windowed recheck, ASCII rendering, marker diffing.

An engineer's edit-check loop: find violations, render the offending
window as ASCII art, "fix" the layout, re-check only the touched window,
and diff the marker databases to confirm the fix introduced nothing new.

    python examples/incremental_debug.py
"""

import tempfile
from pathlib import Path

import repro as odrc
from repro.core.incremental import check_window
from repro.core.markers import diff_markers, load_markers, save_markers
from repro.geometry import Polygon, Rect
from repro.layout import Layout
from repro.util.render import render_window


def build(gap: int) -> Layout:
    """Two M1 wires ``gap`` apart plus an unrelated clean block."""
    layout = Layout("edit-loop")
    top = layout.new_cell("top")
    top.add_polygon(1, Polygon.from_rect_coords(0, 0, 200, 20))
    top.add_polygon(1, Polygon.from_rect_coords(0, 20 + gap, 200, 40 + gap))
    top.add_polygon(1, Polygon.from_rect_coords(600, 0, 800, 40))
    layout.set_top("top")
    return layout


def main() -> None:
    rule = odrc.rules.layer(1).spacing().greater_than(18).named("M1.S")
    engine = odrc.Engine(mode="sequential")

    # 1. Initial check: the gap of 10 violates the 18 nm rule.
    before = build(gap=10)
    report = engine.check(before, rules=[rule])
    print(report.summary())

    # 2. Render the violation neighbourhood.
    marker = report.results[0].violations[0]
    window = marker.region.inflated(30)
    print()
    print(render_window(before, window, width=60, height=12,
                        violations=report.results[0].violations))

    # 3. Persist the marker database.
    with tempfile.TemporaryDirectory() as tmp:
        before_path = Path(tmp) / "before.json"
        save_markers(report, before_path)

        # 4. "Edit": rebuild with a legal gap, re-check ONLY the window.
        after = build(gap=20)
        windowed = check_window(after, window, rules=[rule])
        print(f"\nwindowed re-check: {windowed.total_violations} violations "
              f"in {window!r}")

        # 5. Full confirmation check + marker diff.
        after_report = engine.check(after, rules=[rule])
        after_path = Path(tmp) / "after.json"
        save_markers(after_report, after_path)
        diff = diff_markers(load_markers(before_path), load_markers(after_path))
        for rule_name, counts in diff.items():
            print(f"diff[{rule_name}]: fixed={counts['fixed']} "
                  f"new={counts['new']} unchanged={counts['unchanged']}")


if __name__ == "__main__":
    main()
