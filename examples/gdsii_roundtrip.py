"""Fig. 2 illustration: the GDSII stream grammar in action.

Writes a benchmark design to a genuine GDSII stream file, dumps the record
structure (the <library> -> <structure>* -> <element>* grammar of Fig. 2),
reads it back, and verifies the layout database is geometrically identical.

    python examples/gdsii_roundtrip.py
"""

import collections
import tempfile
from pathlib import Path

from repro.gdsii import read, read_layout, unpack_records, write
from repro.layout import compute_stats, flatten_layer, gdsii_from_layout
from repro.workloads import build_design


def main() -> None:
    layout = build_design("uart")
    print("source:", compute_stats(layout).summary())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "uart.gds"
        write(gdsii_from_layout(layout), path)
        size = path.stat().st_size
        print(f"\nwrote {path.name}: {size} bytes")

        # Record-level view (the Fig. 2 grammar as a flat stream).
        records = unpack_records(path.read_bytes())
        histogram = collections.Counter(r.record_type.name for r in records)
        print("record histogram:")
        for name, count in histogram.most_common(12):
            print(f"  {name:<10} {count}")

        # Structure-level view.
        library = read(path)
        print(f"\nlibrary {library.name!r}: {len(library.structures)} structures; "
              f"tops = {[s.name for s in library.top_structures()]}")

        # Round-trip verification: flat geometry identical per layer.
        rebuilt = read_layout(path)
        rebuilt.set_top("top")
        for layer in layout.layers():
            original = sorted(p.mbr for p in flatten_layer(layout, layer))
            recovered = sorted(p.mbr for p in flatten_layer(rebuilt, layer))
            assert original == recovered, f"layer {layer} mismatch"
        print("round trip verified: flat geometry identical on every layer")


if __name__ == "__main__":
    main()
