"""Sign-off scenario: run the full ASAP7-like rule deck on a benchmark design.

The workload is the synthesized 'aes' design (standard-cell rows, M1-M3
routing, V1/V2 vias). The example runs the complete deck in the sequential
and parallel modes, verifies both agree, and prints per-rule runtimes, the
hierarchy-pruning statistics, and the simulated device's async timeline.

    python examples/full_deck_signoff.py [design] [scale]
"""

import sys

import repro as odrc
from repro.gpu import Device
from repro.layout import compute_stats
from repro.workloads import asap7, build_design


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "aes"
    scale = sys.argv[2] if len(sys.argv) > 2 else "ci"
    layout = build_design(design_name, scale)
    print(compute_stats(layout).summary())

    deck = asap7.full_deck()
    print(f"\nrule deck ({len(deck)} rules): {', '.join(r.name for r in deck)}")

    sequential = odrc.Engine(mode="sequential")
    sequential.add_rules(deck)
    seq_report = sequential.check(layout)

    device = Device("sim-gtx1660ti")
    parallel = odrc.Engine(mode="parallel", device=device)
    parallel.add_rules(deck)
    par_report = parallel.check(layout)

    print(f"\n{'rule':<12} {'seq ms':>9} {'par ms':>9} {'speedup':>8} {'violations':>11}")
    for s, p in zip(seq_report.results, par_report.results):
        assert s.violation_set() == p.violation_set(), s.rule.name
        speedup = s.seconds / p.seconds if p.seconds else float("inf")
        print(
            f"{s.rule.name:<12} {s.seconds * 1e3:>9.2f} {p.seconds * 1e3:>9.2f} "
            f"{speedup:>7.1f}x {s.num_violations:>11}"
        )
    print(
        f"{'total':<12} {seq_report.total_seconds * 1e3:>9.2f} "
        f"{par_report.total_seconds * 1e3:>9.2f}"
    )

    # Hierarchy pruning effectiveness (paper §IV-C).
    pruning = sequential.last_checker.pruning
    print(
        f"\npruning: {pruning.checks_run} checks run, "
        f"{pruning.checks_reused} reused from the hierarchy memo "
        f"({pruning.reuse_ratio * 100:.0f}% reuse), "
        f"{pruning.pairs_pruned_mbr} pairs eliminated by MBR disjointness"
    )

    # Async execution analysis of the parallel run (paper §V-C).
    summary = device.timeline().summarize()
    print(
        f"device timeline: serial {summary.serial_seconds * 1e3:.2f} ms, "
        f"async makespan {summary.async_seconds * 1e3:.2f} ms "
        f"({summary.overlap_savings * 100:.0f}% hidden by streams), "
        f"{summary.copy_bytes / 1024:.0f} KiB copied"
    )


if __name__ == "__main__":
    main()
