"""Multi-core scaling: wall-clock speedup vs. worker count.

Runs the full ASAP7-like deck on generator workloads with the multiprocess
backend at ``jobs`` ∈ {1, 2, 4} and emits a machine-readable
``BENCH_multiproc.json`` with the speedup-vs-workers curve. Three
measurements are recorded:

* **Determinism (hard, everywhere)**: the CSV marker dump must be
  byte-identical at every worker count, warm or cold, routed or not — the
  canonical violation sort makes shard scheduling invisible in the report.
* **Speedup (hardware-gated)**: ≥ 2x at 4 workers over ``jobs=1`` on the
  largest generator workload. Process parallelism cannot beat the core
  count, so this is asserted only on hosts with ≥ 4 CPUs; the JSON records
  ``cpu_count`` so a reader can judge the curve honestly.
* **Warm-pool and routing rows**: for each design, the cold-first vs.
  warm-second check with a persistent pool (the fix-loop regime), and the
  cost-model-routed vs. everything-through-the-pool wall clocks.

Run directly (``python -m benchmarks.bench_multiproc_scaling``) or through
pytest.
"""

from __future__ import annotations

import os
import tempfile
import time

from benchmarks.common import SCALE, design, write_bench_json
from repro.core import Engine, EngineOptions, costmodel, workerpool
from repro.workloads import asap7

JOB_COUNTS = (1, 2, 4)

#: Generator workloads, smallest to largest flat polygon count.
DESIGNS = ("uart", "jpeg")

#: The largest workload — the speedup criterion applies here.
LARGEST = "jpeg"

SPEEDUP_TARGET = 2.0
SPEEDUP_AT_JOBS = 4

#: CI no-regression floor: warm jobs=4 must not lose to jobs=1 by more than
#: this factor (timer noise allowance; the real >2x gate is hardware-gated).
WARM_FLOOR_TOLERANCE = 1.10


def _run(layout, deck, jobs: int):
    engine = Engine(
        options=EngineOptions(mode="multiproc", jobs=jobs)
    )
    start = time.perf_counter()
    report = engine.check(layout, rules=deck)
    return report, time.perf_counter() - start


def run_curve(design_name: str) -> dict:
    """One design's speedup curve + byte-identical report check."""
    layout = design(design_name)
    deck = asap7.full_deck()
    baseline_csv = None
    baseline_seconds = None
    points = []
    for jobs in JOB_COUNTS:
        report, seconds = _run(layout, deck, jobs)
        csv = report.to_csv()
        if baseline_csv is None:
            baseline_csv, baseline_seconds = csv, seconds
        elif csv != baseline_csv:
            raise AssertionError(
                f"{design_name}: report at jobs={jobs} differs from jobs=1"
            )
        points.append(
            {
                "jobs": jobs,
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds else None,
                "violations": report.total_violations,
            }
        )
    return {"design": design_name, "scale": SCALE, "points": points}


def _warm_pair(layout, deck, jobs: int, *, cost_model: bool = True):
    """(cold_seconds, warm_seconds, warm_report) for two consecutive checks.

    Each pair runs against a fresh cache directory and pool registry so the
    cold number really is cold and calibration (the cost model persists in
    the cache) only helps the warm check.
    """
    workerpool.shutdown_pools()
    costmodel.reset_models()
    with tempfile.TemporaryDirectory(prefix="bench-warm-") as cache:
        engine = Engine(
            options=EngineOptions(
                mode="multiproc",
                jobs=jobs,
                warm_pool=True,
                cost_model=cost_model,
                cache_dir=cache,
            )
        )
        try:
            start = time.perf_counter()
            first = engine.check(layout, rules=deck)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            second = engine.check(layout, rules=deck)
            warm = time.perf_counter() - start
        finally:
            engine.close()
    if second.to_csv() != first.to_csv():
        raise AssertionError("warm re-check report differs from cold check")
    return cold, warm, second


def run_warm_rows(design_name: str) -> dict:
    """Warm-vs-cold and routed-vs-all-pool wall clocks for one design."""
    layout = design(design_name)
    deck = asap7.full_deck()
    warm_points = []
    baseline_csv = None
    for jobs in (1, SPEEDUP_AT_JOBS):
        cold, warm, report = _warm_pair(layout, deck, jobs)
        csv = report.to_csv()
        if baseline_csv is None:
            baseline_csv = csv
        elif csv != baseline_csv:
            raise AssertionError(
                f"{design_name}: warm report at jobs={jobs} differs from jobs=1"
            )
        warm_points.append(
            {
                "jobs": jobs,
                "cold_seconds": cold,
                "warm_seconds": warm,
                "warm_speedup_vs_cold": cold / warm if warm else None,
            }
        )
    routed_cold, routed, routed_report = _warm_pair(
        layout, deck, SPEEDUP_AT_JOBS, cost_model=True
    )
    pooled_cold, pooled, pooled_report = _warm_pair(
        layout, deck, SPEEDUP_AT_JOBS, cost_model=False
    )
    if routed_report.to_csv() != pooled_report.to_csv():
        raise AssertionError(f"{design_name}: routing changed the report")
    return {
        "design": design_name,
        "scale": SCALE,
        "warm_points": warm_points,
        "routing": {
            "jobs": SPEEDUP_AT_JOBS,
            "routed_seconds": routed,
            "all_pool_seconds": pooled,
            "rules_routed_inline": routed_report.results[-1].stats.get(
                "mp_cost_routed_inline", 0
            ),
            "routed_cold_seconds": routed_cold,
            "all_pool_cold_seconds": pooled_cold,
        },
    }


def run_benchmark() -> dict:
    cpu_count = os.cpu_count() or 1
    curves = [run_curve(name) for name in DESIGNS]
    warm = [run_warm_rows(name) for name in DESIGNS]
    largest = next(c for c in curves if c["design"] == LARGEST)
    at_target = next(
        (p for p in largest["points"] if p["jobs"] == SPEEDUP_AT_JOBS), None
    )
    payload = {
        "benchmark": "multiproc_scaling",
        "cpu_count": cpu_count,
        "deck": "asap7_full",
        "curves": curves,
        "warm_pool": warm,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_at_jobs": SPEEDUP_AT_JOBS,
        "speedup_measured": at_target["speedup"] if at_target else None,
        "speedup_enforced": cpu_count >= SPEEDUP_AT_JOBS,
        "reports_identical": True,  # run_curve/run_warm_rows raise otherwise
    }
    path = write_bench_json("multiproc", payload)
    payload["path"] = path
    return payload


def test_multiproc_reports_byte_identical():
    """Determinism: every worker count produces the identical CSV dump."""
    curve = run_curve("uart")
    assert [p["jobs"] for p in curve["points"]] == list(JOB_COUNTS)


def test_multiproc_scaling_curve():
    """Emit BENCH_multiproc.json; enforce 2x@4 only on >= 4-core hosts."""
    payload = run_benchmark()
    assert payload["reports_identical"]
    if payload["speedup_enforced"]:
        assert payload["speedup_measured"] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at {SPEEDUP_AT_JOBS} workers, "
            f"measured {payload['speedup_measured']:.2f}x "
            f"on {payload['cpu_count']} cores"
        )


def test_warm_pool_no_regression_smoke():
    """CI floor: a warm jobs=4 re-check must not lose to jobs=1.

    This is the fix-loop regime the warm pool exists for; the full >2x
    speedup gate lives in the benchmark above. Only meaningful with the
    cores to back it, so it is cpu-count-gated like the curve.
    """
    cpu_count = os.cpu_count() or 1
    if cpu_count < SPEEDUP_AT_JOBS:
        import pytest

        pytest.skip(f"needs >= {SPEEDUP_AT_JOBS} cores, host has {cpu_count}")
    layout = design("uart")
    deck = asap7.full_deck()
    _, single, single_report = _warm_pair(layout, deck, 1)
    _, warm, warm_report = _warm_pair(layout, deck, SPEEDUP_AT_JOBS)
    assert warm_report.to_csv() == single_report.to_csv()
    assert warm <= single * WARM_FLOOR_TOLERANCE, (
        f"warm jobs={SPEEDUP_AT_JOBS} re-check took {warm:.3f}s vs "
        f"{single:.3f}s at jobs=1 (floor {WARM_FLOOR_TOLERANCE:.2f}x)"
    )


def main() -> None:
    payload = run_benchmark()
    print(f"multiproc scaling ({payload['deck']}, {payload['cpu_count']} cores)")
    for curve in payload["curves"]:
        print(f"  [{curve['design']} @ {curve['scale']}]")
        for point in curve["points"]:
            print(
                f"    jobs={point['jobs']}: {point['seconds'] * 1e3:8.1f} ms  "
                f"speedup {point['speedup']:.2f}x  "
                f"({point['violations']} violations)"
            )
    for rows in payload["warm_pool"]:
        print(f"  [{rows['design']} warm pool]")
        for point in rows["warm_points"]:
            print(
                f"    jobs={point['jobs']}: cold {point['cold_seconds'] * 1e3:8.1f} ms  "
                f"warm {point['warm_seconds'] * 1e3:8.1f} ms  "
                f"({point['warm_speedup_vs_cold']:.2f}x)"
            )
        routing = rows["routing"]
        print(
            f"    routing@jobs={routing['jobs']}: "
            f"routed {routing['routed_seconds'] * 1e3:8.1f} ms  "
            f"all-pool {routing['all_pool_seconds'] * 1e3:8.1f} ms  "
            f"({routing['rules_routed_inline']} rules inline)"
        )
    status = "enforced" if payload["speedup_enforced"] else (
        f"not enforced ({payload['cpu_count']} cores < {SPEEDUP_AT_JOBS})"
    )
    print(
        f"  target {SPEEDUP_TARGET}x at {SPEEDUP_AT_JOBS} workers: "
        f"measured {payload['speedup_measured']:.2f}x [{status}]"
    )
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
