"""Multi-core scaling: wall-clock speedup vs. worker count.

Runs the full ASAP7-like deck on generator workloads with the multiprocess
backend at ``jobs`` ∈ {1, 2, 4} and emits a machine-readable
``BENCH_multiproc.json`` with the speedup-vs-workers curve. Two properties
are checked:

* **Determinism (hard, everywhere)**: the CSV marker dump must be
  byte-identical at every worker count — the canonical violation sort makes
  shard scheduling invisible in the report.
* **Speedup (hardware-gated)**: ≥ 2x at 4 workers over ``jobs=1`` on the
  largest generator workload. Process parallelism cannot beat the core
  count, so this is asserted only on hosts with ≥ 4 CPUs; the JSON records
  ``cpu_count`` so a reader can judge the curve honestly.

Run directly (``python -m benchmarks.bench_multiproc_scaling``) or through
pytest.
"""

from __future__ import annotations

import os
import time

from benchmarks.common import SCALE, design, write_bench_json
from repro.core import Engine, EngineOptions
from repro.workloads import asap7

JOB_COUNTS = (1, 2, 4)

#: Generator workloads, smallest to largest flat polygon count.
DESIGNS = ("uart", "jpeg")

#: The largest workload — the speedup criterion applies here.
LARGEST = "jpeg"

SPEEDUP_TARGET = 2.0
SPEEDUP_AT_JOBS = 4


def _run(layout, deck, jobs: int):
    engine = Engine(
        options=EngineOptions(mode="multiproc", jobs=jobs)
    )
    start = time.perf_counter()
    report = engine.check(layout, rules=deck)
    return report, time.perf_counter() - start


def run_curve(design_name: str) -> dict:
    """One design's speedup curve + byte-identical report check."""
    layout = design(design_name)
    deck = asap7.full_deck()
    baseline_csv = None
    baseline_seconds = None
    points = []
    for jobs in JOB_COUNTS:
        report, seconds = _run(layout, deck, jobs)
        csv = report.to_csv()
        if baseline_csv is None:
            baseline_csv, baseline_seconds = csv, seconds
        elif csv != baseline_csv:
            raise AssertionError(
                f"{design_name}: report at jobs={jobs} differs from jobs=1"
            )
        points.append(
            {
                "jobs": jobs,
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds else None,
                "violations": report.total_violations,
            }
        )
    return {"design": design_name, "scale": SCALE, "points": points}


def run_benchmark() -> dict:
    cpu_count = os.cpu_count() or 1
    curves = [run_curve(name) for name in DESIGNS]
    largest = next(c for c in curves if c["design"] == LARGEST)
    at_target = next(
        (p for p in largest["points"] if p["jobs"] == SPEEDUP_AT_JOBS), None
    )
    payload = {
        "benchmark": "multiproc_scaling",
        "cpu_count": cpu_count,
        "deck": "asap7_full",
        "curves": curves,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_at_jobs": SPEEDUP_AT_JOBS,
        "speedup_measured": at_target["speedup"] if at_target else None,
        "speedup_enforced": cpu_count >= SPEEDUP_AT_JOBS,
        "reports_identical": True,  # run_curve raises otherwise
    }
    path = write_bench_json("multiproc", payload)
    payload["path"] = path
    return payload


def test_multiproc_reports_byte_identical():
    """Determinism: every worker count produces the identical CSV dump."""
    curve = run_curve("uart")
    assert [p["jobs"] for p in curve["points"]] == list(JOB_COUNTS)


def test_multiproc_scaling_curve():
    """Emit BENCH_multiproc.json; enforce 2x@4 only on >= 4-core hosts."""
    payload = run_benchmark()
    assert payload["reports_identical"]
    if payload["speedup_enforced"]:
        assert payload["speedup_measured"] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at {SPEEDUP_AT_JOBS} workers, "
            f"measured {payload['speedup_measured']:.2f}x "
            f"on {payload['cpu_count']} cores"
        )


def main() -> None:
    payload = run_benchmark()
    print(f"multiproc scaling ({payload['deck']}, {payload['cpu_count']} cores)")
    for curve in payload["curves"]:
        print(f"  [{curve['design']} @ {curve['scale']}]")
        for point in curve["points"]:
            print(
                f"    jobs={point['jobs']}: {point['seconds'] * 1e3:8.1f} ms  "
                f"speedup {point['speedup']:.2f}x  "
                f"({point['violations']} violations)"
            )
    status = "enforced" if payload["speedup_enforced"] else (
        f"not enforced ({payload['cpu_count']} cores < {SPEEDUP_AT_JOBS})"
    )
    print(
        f"  target {SPEEDUP_TARGET}x at {SPEEDUP_AT_JOBS} workers: "
        f"measured {payload['speedup_measured']:.2f}x [{status}]"
    )
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
