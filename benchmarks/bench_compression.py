"""Roadmap extension: device-buffer compression footprint (paper §VII).

"Ongoing works for OpenDRC include ... data compression techniques for
memory footprint reduction." Measures the compression factor and the
(de)compression throughput on the benchmark designs' edge buffers.
"""

import pytest

from repro.gpu.compression import compress_edge_buffer, measure_compression
from repro.hierarchy.edgepack import HierarchicalEdgePacker
from repro.hierarchy.tree import HierarchyTree
from repro.workloads import asap7

from .common import design


def m1_buffer(design_name: str):
    layout = design(design_name)
    tree = HierarchyTree(layout)
    pair = HierarchicalEdgePacker(tree, asap7.M1).buffer_of(tree.top.name)
    return pair.vertical


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
def test_compress_throughput(benchmark, design_name):
    buffer = m1_buffer(design_name)
    compressed = benchmark(compress_edge_buffer, buffer)
    benchmark.extra_info["raw_kib"] = round(buffer.nbytes / 1024, 1)
    benchmark.extra_info["compressed_kib"] = round(compressed.nbytes / 1024, 1)
    benchmark.extra_info["ratio"] = round(buffer.nbytes / compressed.nbytes, 2)


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
def test_decompress_throughput(benchmark, design_name):
    compressed = compress_edge_buffer(m1_buffer(design_name))
    restored = benchmark(compressed.decompress)
    assert len(restored) == compressed.count


def test_footprint_print(benchmark, capsys):
    def table():
        lines = ["Edge-buffer compression (paper roadmap):",
                 f"{'design':<8} {'layer':>5} {'raw KiB':>9} {'packed KiB':>11} {'ratio':>6}"]
        for design_name in ("uart", "ibex", "aes", "jpeg"):
            layout = design(design_name)
            tree = HierarchyTree(layout)
            for layer in (asap7.M1, asap7.M2, asap7.M3):
                packer = HierarchicalEdgePacker(tree, layer)
                pair = packer.buffer_of(tree.top.name)
                report = measure_compression(
                    {"v": pair.vertical, "h": pair.horizontal}
                )
                lines.append(
                    f"{design_name:<8} {asap7.LAYER_NAMES[layer]:>5} "
                    f"{report.raw_bytes / 1024:>9.1f} "
                    f"{report.compressed_bytes / 1024:>11.1f} "
                    f"{report.ratio:>5.1f}x"
                )
        return "\n".join(lines)

    text = benchmark.pedantic(table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
