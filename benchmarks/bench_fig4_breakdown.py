"""Fig. 4: runtime breakdown of OpenDRC sequential space checks.

The paper reports: adaptive partition ~15% of runtime, sweepline +
interval-tree operations ~35%, edge-to-edge checks 40-50%. The printed
per-design breakdown shows the measured percentages and ASCII bars; the
assertions pin the qualitative shape (partition is the smallest phase,
edge checks the largest block of real work).
"""

import pytest

from repro.core import Engine
from repro.util.profile import (
    PHASE_EDGE_CHECKS,
    PHASE_PARTITION,
    PHASE_SWEEPLINE,
    PhaseProfile,
)
from repro.workloads import asap7

from .common import TABLE_DESIGNS, design
from .tables import fig4_breakdown


def merged_profile(design_name: str) -> PhaseProfile:
    engine = Engine(mode="sequential")
    engine.add_rules(asap7.spacing_deck())
    engine.check(design(design_name))
    merged = PhaseProfile()
    for profile in engine.last_profiles.values():
        merged.merge(profile)
    return merged


@pytest.mark.parametrize("design_name", TABLE_DESIGNS)
def test_sequential_space_breakdown(benchmark, design_name):
    profile = benchmark.pedantic(merged_profile, args=(design_name,), rounds=1, iterations=1)
    fractions = dict(profile.fractions())
    benchmark.extra_info.update({name: round(f, 3) for name, f in fractions.items()})
    # Shape assertions: partition is cheap relative to the checking work.
    assert fractions.get(PHASE_PARTITION, 0.0) < 0.5
    assert fractions.get(PHASE_EDGE_CHECKS, 0.0) > 0.0
    assert fractions.get(PHASE_SWEEPLINE, 0.0) > 0.0


def test_fig4_print(benchmark, capsys):
    text = benchmark.pedantic(fig4_breakdown, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
