"""Fused segmented-row execution vs per-row dispatch (kernel batching).

Runs the full ASAP7 deck on one design twice — ``fuse_rows=True`` (one
segmented launch per orientation per rule) and ``fuse_rows=False`` (the
per-row ablation baseline) — on fresh simulated devices, and compares the
device counters: kernel launches, H2D copies/bytes, wall-clock, plus the
pack-cache hit rate. Violations must be identical between the two runs.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_kernel_batching --design jpeg

Writes ``BENCH_batching.json`` (override with ``--out``) and exits nonzero
if fused execution does not strictly decrease the launch count.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.core import Engine, EngineOptions
from repro.gpu import Device
from repro.workloads import asap7

from .common import design


def make_deck(name: str):
    """``rows``: the 6 row-partitioned rules (spacing + enclosure) that the
    fused dispatch accelerates; ``full``: all 12 geometric rules (width and
    area are definition-batched identically under both strategies)."""
    if name == "rows":
        return asap7.spacing_deck() + asap7.enclosure_deck()
    return asap7.full_deck()


def run_once(layout, deck, fuse_rows: bool) -> Dict:
    device = Device()
    engine = Engine(
        device=device,
        options=EngineOptions(mode="parallel", fuse_rows=fuse_rows),
    )
    engine.add_rules(deck)
    start = time.perf_counter()
    report = engine.check(layout)
    seconds = time.perf_counter() - start
    checker = engine.last_checker
    summary = device.timeline().summarize()
    return {
        "fuse_rows": fuse_rows,
        "seconds": seconds,
        "counters": device.counters(),
        "executor_counts": dict(checker.executor_counts),
        "fusion_stats": dict(checker.fusion_stats),
        "pack_cache": {"hits": checker.pack_cache.hits, "misses": checker.pack_cache.misses},
        "async_seconds": summary.async_seconds,
        "violations": frozenset(
            v for result in report.results for v in result.violation_set()
        ),
        "num_violations": sum(r.num_violations for r in report.results),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="jpeg", help="design name (default: jpeg)")
    parser.add_argument("--scale", default=None, help="design scale (default: $REPRO_SCALE or ci)")
    parser.add_argument(
        "--deck", default="rows", choices=("rows", "full"),
        help="rule deck: 'rows' = spacing+enclosure (6 rules), 'full' = all 12",
    )
    parser.add_argument("--out", default="BENCH_batching.json", help="JSON report path")
    args = parser.parse_args(argv)
    from .common import SCALE

    scale = args.scale or SCALE
    layout = design(args.design, scale)
    deck = make_deck(args.deck)
    # Warm both paths once so neither timed run pays one-time flatten caches.
    run_once(layout, deck, fuse_rows=True)
    run_once(layout, deck, fuse_rows=False)
    fused = run_once(layout, deck, fuse_rows=True)
    per_row = run_once(layout, deck, fuse_rows=False)

    identical = fused["violations"] == per_row["violations"]
    launches_fused = fused["counters"]["kernel_launches"]
    launches_rows = per_row["counters"]["kernel_launches"]
    h2d_fused = fused["counters"]["h2d_copies"]
    h2d_rows = per_row["counters"]["h2d_copies"]
    report = {
        "design": args.design,
        "scale": scale,
        "deck": args.deck,
        "deck_rules": len(deck),
        "fused": {k: v for k, v in fused.items() if k != "violations"},
        "per_row": {k: v for k, v in per_row.items() if k != "violations"},
        "launch_ratio": launches_rows / max(launches_fused, 1),
        "h2d_ratio": h2d_rows / max(h2d_fused, 1),
        "wall_clock_ratio": per_row["seconds"] / max(fused["seconds"], 1e-12),
        "violations_identical": identical,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)

    print(f"design={args.design} scale={scale} deck={args.deck} rules={report['deck_rules']}")
    print(
        f"kernel launches: per-row={launches_rows} fused={launches_fused} "
        f"({report['launch_ratio']:.1f}x fewer)"
    )
    print(
        f"h2d copies:      per-row={h2d_rows} fused={h2d_fused} "
        f"({report['h2d_ratio']:.1f}x fewer)"
    )
    print(
        f"wall clock:      per-row={per_row['seconds'] * 1e3:.1f}ms "
        f"fused={fused['seconds'] * 1e3:.1f}ms"
    )
    print(
        f"pack cache:      hits={fused['pack_cache']['hits']} "
        f"misses={fused['pack_cache']['misses']}"
    )
    print(f"violations:      {fused['num_violations']} (identical: {identical})")

    ok = identical and launches_fused < launches_rows
    if not ok:
        print("FAIL: fused execution must match violations and strictly "
              "decrease kernel launches", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
