"""Rule-level task parallelism (paper §I: "different design rules can be
checked concurrently, attaining task parallelism, which could be further
combined with data parallelism").

The application-layer task graph runs the deck once, then replays the
measured per-rule durations over worker pools: the makespan curves show how
much of the deck parallelizes at rule granularity, in both engine modes
(mode=parallel is the paper's "combined with data parallelism" point).
"""

import pytest

from repro.core import Engine
from repro.workloads import asap7

from .common import design


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_task_graph_deck(benchmark, design_name, mode):
    layout = design(design_name)
    deck = asap7.full_deck()

    def run():
        return Engine(mode=mode).check_with_task_graph(layout, rules=deck, workers=4)

    report, analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    benchmark.extra_info["serial_ms"] = round(analysis.serial_seconds * 1e3, 2)
    benchmark.extra_info["critical_path_ms"] = round(
        analysis.critical_path_seconds() * 1e3, 2
    )
    for workers in (2, 4, 8):
        benchmark.extra_info[f"makespan_{workers}w_ms"] = round(
            analysis.makespan(workers) * 1e3, 2
        )


def test_task_parallelism_print(benchmark, capsys):
    def table():
        lines = [
            "Rule-level task parallelism (full deck, sequential mode):",
            f"{'design':<8} {'serial ms':>10} {'critical ms':>12} "
            f"{'2w':>8} {'4w':>8} {'8w':>8}",
        ]
        for design_name in ("uart", "ibex", "aes", "jpeg"):
            layout = design(design_name)
            _, analysis = Engine(mode="sequential").check_with_task_graph(
                layout, rules=asap7.full_deck()
            )
            lines.append(
                f"{design_name:<8} {analysis.serial_seconds * 1e3:>10.1f} "
                f"{analysis.critical_path_seconds() * 1e3:>12.1f} "
                + " ".join(
                    f"{analysis.makespan(w) * 1e3:>8.1f}" for w in (2, 4, 8)
                )
            )
        return "\n".join(lines)

    text = benchmark.pedantic(table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
