"""Shared benchmark infrastructure: design cache and checker column runners.

Every table cell is one (design, rule, checker) measurement. Checkers are
rebuilt per cell and flatten caches cleared so that each cell pays its full
honest cost (parsing/database setup excluded, as in the paper, which reports
check runtime).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines import KLayoutLikeChecker, UnsupportedRuleError, XCheckChecker
from repro.core import Engine, EngineOptions
from repro.core.rules import Rule
from repro.layout.library import Layout
from repro.workloads import build_design

#: Design order used in the paper's tables.
TABLE_DESIGNS = ("aes", "ethmac", "ibex", "jpeg", "sha3", "uart")

#: Benchmark scale: override with REPRO_SCALE=paper for full-size runs.
SCALE = os.environ.get("REPRO_SCALE", "ci")

_design_cache: Dict[Tuple[str, str], Layout] = {}


def design(name: str, scale: str = SCALE) -> Layout:
    key = (name, scale)
    if key not in _design_cache:
        _design_cache[key] = build_design(name, scale)
    return _design_cache[key]


#: Repository root: machine-readable benchmark outputs land here.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_<name>.json`` at the repo root (the perf trajectory's
    machine-readable data points); returns the path written."""
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


ColumnRunner = Callable[[Layout, Rule], Optional[float]]


def run_klayout(mode: str) -> ColumnRunner:
    def runner(layout: Layout, rule: Rule) -> Optional[float]:
        checker = KLayoutLikeChecker(layout, mode)
        _, seconds = checker.run(rule)
        return seconds

    return runner


def run_xcheck(layout: Layout, rule: Rule) -> Optional[float]:
    checker = XCheckChecker(layout)
    try:
        _, seconds = checker.run(rule)
    except UnsupportedRuleError:
        return None  # X-Check cannot perform area checks (paper Table I)
    return seconds


def run_opendrc(mode: str, **options) -> ColumnRunner:
    def runner(layout: Layout, rule: Rule) -> Optional[float]:
        engine = Engine(options=EngineOptions(mode=mode, **options))
        report = engine.check(layout, rules=[rule])
        return report.results[0].seconds

    return runner


#: The six columns of the paper's tables, in order.
TABLE_COLUMNS: List[Tuple[str, ColumnRunner]] = [
    ("KL-flat", run_klayout("flat")),
    ("KL-deep", run_klayout("deep")),
    ("KL-tile", run_klayout("tile")),
    ("X-Check", run_xcheck),
    ("ODRC-seq", run_opendrc("sequential")),
    ("ODRC-par", run_opendrc("parallel")),
]


def verify_agreement(layout: Layout, rule: Rule) -> int:
    """Assert all checkers report the same violations; returns the count.

    Run before timing so a table is never produced from disagreeing
    checkers.
    """
    reference = (
        Engine(mode="sequential").check(layout, rules=[rule]).results[0].violation_set()
    )
    parallel = (
        Engine(mode="parallel").check(layout, rules=[rule]).results[0].violation_set()
    )
    assert parallel == reference, f"parallel disagrees on {rule.name}"
    for mode in ("flat", "deep", "tile"):
        violations, _ = KLayoutLikeChecker(layout, mode).run(rule)
        assert frozenset(violations) == reference, f"klayout-{mode} disagrees on {rule.name}"
    xcheck = XCheckChecker(layout)
    if xcheck.supports(rule):
        violations, _ = xcheck.run(rule)
        assert frozenset(violations) == reference, f"xcheck disagrees on {rule.name}"
    return len(reference)
