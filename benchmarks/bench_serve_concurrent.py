"""Concurrent multi-session serving: admission scheduler vs the old lock.

PR 8's daemon serialized every engine run behind one global lock, so two
sessions' checks queued even with idle cores. The admission scheduler
admits compute-bound requests from *different* sessions concurrently; this
benchmark measures what that buys.

Shape: K sessions (uart + jpeg, planted violations), one client per
session, each issuing a warm-up check plus ``CHECKS_PER_CLIENT`` timed
checks back to back over HTTP. ``report_lru=0`` and version-advancing
content keep every check an honest engine run (no LRU answers, and
back-to-back requests from one client never coalesce). The same workload
runs at ``max_concurrent=1`` (the PR 8 regime) and ``max_concurrent=2``;
the payload reports aggregate checks/second for both and the speedup.

Gates:

* **byte identity** — every served CSV at every concurrency level must
  equal the local engine's CSV for that design (enforced everywhere).
* **throughput** — >= ``SPEEDUP_TARGET``x aggregate throughput at
  ``max_concurrent=2``, enforced only on hosts with at least
  :data:`ENFORCE_CPUS` cores (two admitted requests driving a shared
  2-worker pool need the cores to overlap; a 1-core container records
  ``speedup_enforced: false`` honestly, like BENCH_multiproc).

Run directly (``python -m benchmarks.bench_serve_concurrent``) or through
pytest; both regenerate ``BENCH_serve_concurrent.json``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from benchmarks.common import SCALE, write_bench_json
from repro.client import ServeClient, report_json_to_csv
from repro.core import Engine, EngineOptions
from repro.gdsii import write
from repro.layout import gdsii_from_layout
from repro.server import ServerState, start_server
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations

DESIGNS = ("uart", "jpeg")
TOP = "top"

CHECKS_PER_CLIENT = 3
CONCURRENCY_LEVELS = (1, 2)

SPEEDUP_TARGET = 2.0
#: Two admitted requests x a shared jobs=2 pool: enforcing the speedup
#: needs at least this many cores to mean anything.
ENFORCE_CPUS = 4

_payload = None


def _engine_options() -> EngineOptions:
    return EngineOptions(mode="multiproc", jobs=2, warm_pool=True)


def _synth(tmpdir: str) -> dict:
    """One dirty GDS per design, plus its local reference CSV."""
    workloads = {}
    for name in DESIGNS:
        layout = build_design(name, SCALE)
        inject_violations(layout, InjectionPlan(spacing=3), layer=asap7.M2, seed=13)
        path = os.path.join(tmpdir, f"{name}.gds")
        write(gdsii_from_layout(layout), path)
        with Engine(options=_engine_options()) as engine:
            local = engine.check(layout, rules=asap7.full_deck())
        workloads[name] = {"path": path, "csv": local.to_csv()}
    return workloads


def _run_level(workloads: dict, max_concurrent: int) -> dict:
    """All clients, one per session, against a fresh daemon; returns timings."""
    state = ServerState(
        options=_engine_options(), report_lru=0, max_concurrent=max_concurrent
    )
    with start_server(state) as handle:
        client = ServeClient(handle.url)
        client.wait_ready(timeout=30)
        sessions = {
            name: client.create_session(path=item["path"], top=TOP)["session"]
            for name, item in workloads.items()
        }
        # Warm up: each session pays its plan compile + pool spool once,
        # outside the timed region, exactly like a resident daemon's
        # steady state.
        for name, sid in sessions.items():
            response = client.check(sid)
            assert (
                report_json_to_csv(response["report"]) == workloads[name]["csv"]
            ), f"warm-up CSV mismatch for {name} at max_concurrent={max_concurrent}"

        barrier = threading.Barrier(len(sessions))
        mismatches = []
        errors = []
        per_client_seconds = {}

        def drive(name: str, sid: str) -> None:
            try:
                own = ServeClient(handle.url)
                barrier.wait(30)
                start = time.perf_counter()
                for _ in range(CHECKS_PER_CLIENT):
                    response = own.check(sid)
                    if report_json_to_csv(response["report"]) != workloads[name]["csv"]:
                        mismatches.append(name)
                per_client_seconds[name] = time.perf_counter() - start
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(repr(error))

        threads = [
            threading.Thread(target=drive, args=(name, sid))
            for name, sid in sessions.items()
        ]
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)
        wall = time.perf_counter() - wall_start
        stats = client.stats()
    assert not errors, errors
    assert not mismatches, (
        f"served CSVs diverged at max_concurrent={max_concurrent}: {mismatches}"
    )
    checks = CHECKS_PER_CLIENT * len(sessions)
    return {
        "max_concurrent": max_concurrent,
        "sessions": len(sessions),
        "checks": checks,
        "wall_seconds": wall,
        "throughput_checks_per_second": checks / wall,
        "per_client_seconds": dict(sorted(per_client_seconds.items())),
        "engine_runs": stats["counters"]["engine_runs"],
        "max_active_seen": stats["max_active_seen"],
        "inline_routed": stats["counters"]["inline_routed"],
        "csv_identical": True,  # the assert above raises otherwise
    }


def run_benchmark() -> dict:
    cpu_count = os.cpu_count() or 1
    tmpdir = tempfile.mkdtemp(prefix="bench_serve_conc_")
    workloads = _synth(tmpdir)
    levels = [_run_level(workloads, mc) for mc in CONCURRENCY_LEVELS]
    baseline = next(l for l in levels if l["max_concurrent"] == 1)
    concurrent = levels[-1]
    speedup = (
        concurrent["throughput_checks_per_second"]
        / baseline["throughput_checks_per_second"]
    )
    payload = {
        "benchmark": "serve_concurrent",
        "designs": list(DESIGNS),
        "scale": SCALE,
        "cpu_count": cpu_count,
        "checks_per_client": CHECKS_PER_CLIENT,
        "engine_options": {"mode": "multiproc", "jobs": 2, "warm_pool": True},
        "levels": levels,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_measured": speedup,
        "speedup_enforced": cpu_count >= ENFORCE_CPUS,
        "reports_identical": all(l["csv_identical"] for l in levels),
    }
    payload["path"] = write_bench_json("serve_concurrent", payload)
    global _payload
    _payload = payload
    return payload


def benchmark_payload() -> dict:
    global _payload
    if _payload is None:
        _payload = run_benchmark()
    return _payload


def test_served_reports_identical_at_every_concurrency():
    payload = benchmark_payload()
    assert payload["reports_identical"]


def test_concurrency_actually_happened_on_multicore():
    payload = benchmark_payload()
    concurrent = payload["levels"][-1]
    if payload["cpu_count"] >= 2:
        assert concurrent["max_active_seen"] >= 2, concurrent
    assert payload["levels"][0]["max_active_seen"] == 1


def test_concurrent_throughput_beats_serialized():
    payload = benchmark_payload()
    if not payload["speedup_enforced"]:
        import pytest

        pytest.skip(
            f"needs >= {ENFORCE_CPUS} cores, host has {payload['cpu_count']}"
        )
    assert payload["speedup_measured"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x aggregate throughput at "
        f"max_concurrent=2, measured {payload['speedup_measured']:.2f}x "
        f"on {payload['cpu_count']} cores"
    )


def main() -> None:
    payload = benchmark_payload()
    print(
        f"concurrent serving ({'+'.join(payload['designs'])} @ "
        f"{payload['scale']}, {payload['cpu_count']} cores)"
    )
    for level in payload["levels"]:
        print(
            f"  max_concurrent={level['max_concurrent']}: "
            f"{level['checks']} checks in {level['wall_seconds']:.2f}s  "
            f"({level['throughput_checks_per_second']:.2f} checks/s, "
            f"max_active_seen={level['max_active_seen']}, "
            f"{level['inline_routed']} inline-routed)"
        )
    status = "enforced" if payload["speedup_enforced"] else (
        f"not enforced ({payload['cpu_count']} cores < {ENFORCE_CPUS})"
    )
    print(
        f"  target {SPEEDUP_TARGET}x: measured "
        f"{payload['speedup_measured']:.2f}x [{status}]"
    )
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
