"""Table I: intra-polygon design rule checks (width + area).

``test_table1_print`` regenerates the full table — every design x rule cell
under all six checker columns plus the normalized geomean row — after
verifying all checkers agree. The per-design benchmarks time the OpenDRC
modes under pytest-benchmark for statistics.

Expected shape (paper §VI): OpenDRC-seq ~= OpenDRC-par; both far ahead of
KLayout-flat (paper: ~37.6x vs flat/deep) and ahead of X-Check (~4.5x) and
KLayout-tile (~9.6-13x); the X-Check area column is empty.
"""

import pytest

from repro.core import Engine
from repro.workloads import asap7

from .common import TABLE_DESIGNS, design, verify_agreement
from .tables import table1_intra


@pytest.mark.parametrize("design_name", TABLE_DESIGNS)
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_opendrc_intra_deck(benchmark, design_name, mode):
    layout = design(design_name)
    deck = asap7.intra_deck()

    def run():
        engine = Engine(mode=mode)
        return engine.check(layout, rules=deck)

    report = benchmark(run)
    benchmark.extra_info["violations"] = report.total_violations
    assert report.passed  # benchmark designs are DRC-clean


def test_table1_agreement():
    for design_name in ("uart", "ibex"):
        layout = design(design_name)
        for rule in asap7.intra_deck():
            verify_agreement(layout, rule)


def test_table1_print(benchmark, capsys):
    table = benchmark.pedantic(table1_intra, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
