"""Served-DRC benchmark: a warm daemon vs one-shot cold CLI invocations.

Every one-shot ``repro check`` pays interpreter start-up, GDS parsing,
hierarchy analysis, and engine warm-up, then throws all of it away. The
``repro serve`` daemon pays those once per session and answers subsequent
requests from warm state (or, for identical repeats, straight from the
report LRU without touching the engine).

Four measurements on the jpeg design:

* **cold CLI**: median wall time of ``repro check`` subprocesses — the
  price of *not* running a daemon.
* **first served**: the first check of a fresh session over HTTP (pays the
  one engine run).
* **warm served**: p50 of repeat checks of the same session — the steady
  state the daemon exists for. Gated at >= 3x faster than cold CLI.
* **coalescing**: N concurrent clients issue the identical request against
  a fresh daemon; the single-flight layer must record exactly 1 engine run.

Correctness is gated too: the served CSV and violation JSON must be
byte-identical to the cold CLI's output.

Run directly (``python -m benchmarks.bench_serve``) or through pytest;
both regenerate ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

from benchmarks.common import REPO_ROOT, SCALE, write_bench_json
from repro.client import ServeClient, report_json_to_csv
from repro.gdsii import write
from repro.layout import gdsii_from_layout
from repro.server import ServerState, start_server
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations

DESIGN = "jpeg"
TOP = "top"

COLD_RUNS = 3
WARM_RUNS = 9
CONCURRENT_CLIENTS = 8

SPEEDUP_TARGET = 3.0

_payload = None


def _cli_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def _cold_cli(gds_path: str, fmt: str) -> tuple:
    """One cold ``repro check`` subprocess; returns (seconds, stdout)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", gds_path, "--top", TOP,
         "--format", fmt],
        capture_output=True,
        text=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
    )
    seconds = time.perf_counter() - start
    assert proc.returncode in (0, 1), proc.stderr
    return seconds, proc.stdout


def _synth(tmpdir: str) -> str:
    layout = build_design(DESIGN, SCALE)
    # A few planted violations so the byte-identity gate compares real
    # violation payloads, not two empty lists.
    inject_violations(layout, InjectionPlan(spacing=3), layer=asap7.M2, seed=11)
    path = os.path.join(tmpdir, f"{DESIGN}.gds")
    write(gdsii_from_layout(layout), path)
    return path


def _measure_coalescing(gds_path: str) -> dict:
    """N clients fire the identical request at a fresh daemon at once."""
    state = ServerState()
    with start_server(state) as handle:
        client = ServeClient(handle.url)
        client.wait_ready(timeout=30)
        sid = client.create_session(path=gds_path, top=TOP)["session"]
        barrier = threading.Barrier(CONCURRENT_CLIENTS)
        sources = []
        errors = []

        def worker():
            try:
                worker_client = ServeClient(handle.url)
                barrier.wait(30)
                response = worker_client.check(sid)
                sources.append(response["meta"]["source"])
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker) for _ in range(CONCURRENT_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        stats = client.stats()
    assert not errors, errors
    counters = stats["counters"]
    return {
        "clients": CONCURRENT_CLIENTS,
        "requests": counters["requests"],
        "engine_runs": counters["engine_runs"],
        "coalesced": counters["coalesced"],
        "report_lru_hits": counters["report_lru_hits"],
        "sources": sorted(sources),
    }


def run_benchmark() -> dict:
    tmpdir = tempfile.mkdtemp(prefix="bench_serve_")
    gds_path = _synth(tmpdir)

    cold = [_cold_cli(gds_path, "csv") for _ in range(COLD_RUNS)]
    cold_seconds = statistics.median(seconds for seconds, _ in cold)
    cold_csv = cold[0][1]
    _, cold_json_out = _cold_cli(gds_path, "json")
    cold_violations = [
        result["violations"] for result in json.loads(cold_json_out)["results"]
    ]

    state = ServerState()
    with start_server(state) as handle:
        client = ServeClient(handle.url)
        client.wait_ready(timeout=30)
        start = time.perf_counter()
        sid = client.create_session(path=gds_path, top=TOP)["session"]
        first_response = client.check(sid)
        first_seconds = time.perf_counter() - start

        warm_seconds = []
        for _ in range(WARM_RUNS):
            start = time.perf_counter()
            response = client.check(sid)
            warm_seconds.append(time.perf_counter() - start)
        warm_p50 = statistics.median(warm_seconds)
        warm_sources = {response["meta"]["source"]}

    served_report = first_response["report"]
    served_csv = report_json_to_csv(served_report) + "\n"
    served_violations = [r["violations"] for r in served_report["results"]]

    coalescing = _measure_coalescing(gds_path)

    payload = {
        "design": DESIGN,
        "scale": SCALE,
        "cold_cli_runs": COLD_RUNS,
        "cold_cli_seconds": cold_seconds,
        "first_served_seconds": first_seconds,
        "warm_served_runs": WARM_RUNS,
        "warm_served_p50_seconds": warm_p50,
        "warm_speedup_vs_cold_cli": cold_seconds / warm_p50,
        "warm_source": sorted(warm_sources),
        "csv_identical_to_cold_cli": served_csv == cold_csv,
        "violations_identical_to_cold_cli": served_violations == cold_violations,
        "coalescing": coalescing,
    }
    payload["path"] = write_bench_json("serve", payload)
    global _payload
    _payload = payload
    return payload


def benchmark_payload() -> dict:
    global _payload
    if _payload is None:
        _payload = run_benchmark()
    return _payload


def test_served_output_is_byte_identical():
    payload = benchmark_payload()
    assert payload["csv_identical_to_cold_cli"]
    assert payload["violations_identical_to_cold_cli"]


def test_warm_served_beats_cold_cli_3x():
    payload = benchmark_payload()
    assert payload["warm_speedup_vs_cold_cli"] >= SPEEDUP_TARGET, (
        f"expected warm served requests >= {SPEEDUP_TARGET}x faster than "
        f"cold CLI runs, measured {payload['warm_speedup_vs_cold_cli']:.2f}x"
    )


def test_concurrent_identical_requests_coalesce_to_one_engine_run():
    payload = benchmark_payload()
    c = payload["coalescing"]
    assert c["engine_runs"] == 1, c
    assert c["requests"] == c["clients"], c
    assert c["coalesced"] + c["report_lru_hits"] == c["clients"] - 1, c


def main() -> None:
    payload = benchmark_payload()
    print(f"DRC-as-a-service ({payload['design']} @ {payload['scale']})")
    print(f"  cold CLI (median of {COLD_RUNS}): "
          f"{payload['cold_cli_seconds'] * 1e3:8.1f} ms")
    print(f"  first served request:      "
          f"{payload['first_served_seconds'] * 1e3:8.1f} ms")
    print(f"  warm served p50 ({WARM_RUNS} runs): "
          f"{payload['warm_served_p50_seconds'] * 1e3:8.1f} ms  "
          f"({payload['warm_speedup_vs_cold_cli']:.0f}x vs cold CLI)")
    c = payload["coalescing"]
    print(f"  coalescing: {c['clients']} concurrent clients -> "
          f"{c['engine_runs']} engine run(s), {c['coalesced']} coalesced, "
          f"{c['report_lru_hits']} LRU hit(s)")
    print(f"  csv identical: {payload['csv_identical_to_cold_cli']}, "
          f"violations identical: {payload['violations_identical_to_cold_cli']}")
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
