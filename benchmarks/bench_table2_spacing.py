"""Table II (left half): inter-polygon spacing checks (M1/M2/M3.S.1).

Expected shape (paper §VI): OpenDRC-par fastest — ~3.2x vs OpenDRC-seq,
~5.6x vs X-Check, ~12x vs KLayout-tile; OpenDRC-seq 14.9-91.3x vs
KLayout flat/deep; jpeg's dense M3 blows up the flat/deep columns (deep
worst, inverting the usual deep<flat ordering — the 3588s row).
"""

import pytest

from repro.core import Engine
from repro.workloads import asap7

from .common import TABLE_DESIGNS, design, verify_agreement
from .tables import table2_spacing


@pytest.mark.parametrize("design_name", TABLE_DESIGNS)
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_opendrc_spacing_deck(benchmark, design_name, mode):
    layout = design(design_name)
    deck = asap7.spacing_deck()

    def run():
        engine = Engine(mode=mode)
        return engine.check(layout, rules=deck)

    report = benchmark(run)
    benchmark.extra_info["violations"] = report.total_violations
    assert report.passed


def test_spacing_agreement():
    for design_name in ("uart", "ibex"):
        layout = design(design_name)
        for rule in asap7.spacing_deck():
            verify_agreement(layout, rule)


def test_table2_spacing_print(benchmark, capsys):
    table = benchmark.pedantic(table2_spacing, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
