"""Incremental (windowed) re-check vs. the full check.

The edit-loop feature's value proposition measured: re-checking one cell
row's worth of window costs a small fraction of the full-chip check while
returning exactly the full check's violations clipped to the window (the
equality is asserted in tests/test_incremental.py).
"""

import pytest

from repro.core import Engine
from repro.core.incremental import check_window
from repro.geometry import Rect
from repro.workloads import asap7

from .common import design

RULES = [asap7.spacing_rule(asap7.M1), asap7.width_rule(asap7.M1)]


def small_window(layout):
    from repro.hierarchy import HierarchyTree

    chip = HierarchyTree(layout).top_mbr(asap7.M1)
    return Rect(chip.xlo, chip.ylo, chip.xhi, chip.ylo + 300)  # ~one row


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
def test_full_check(benchmark, design_name):
    layout = design(design_name)

    def run():
        return Engine(mode="sequential").check(layout, rules=RULES)

    report = benchmark(run)
    assert report.passed


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
def test_windowed_recheck(benchmark, design_name):
    layout = design(design_name)
    window = small_window(layout)

    def run():
        return check_window(layout, window, rules=RULES)

    report = benchmark(run)
    assert report.passed
    benchmark.extra_info["window"] = str(tuple(window))
