"""Incremental re-check benchmark: an edit re-checks in ~O(edit), not O(chip).

Checks a clean jpeg build cold, then applies 1 / 4 / 16 small top-level
wire edits and re-checks each edited version through the digest-driven
diff + multi-window + splice path (``repro.core.incremental.recheck``).
Three properties are checked:

* **Exactness (hard)**: every spliced report is byte-identical to a cold
  full check of the edited layout — for every edit size.
* **One-edit speedup (gated)**: re-checking a single-wire edit is at
  least 5x faster than the cold check it replaces.
* **Edit-size scaling (gated)**: re-check time grows with the number of
  dirty regions — 16 spread-out edits cost more than 1, and all sizes
  stay under the cold-check time.

Run directly (``python -m benchmarks.bench_incremental``) or through
pytest; both regenerate ``BENCH_incremental.json``.
"""

from __future__ import annotations

import time

from benchmarks.common import SCALE, design, write_bench_json
from repro.core import Engine, EngineOptions
from repro.core.incremental import recheck
from repro.core.rules import layer
from repro.geometry import Polygon
from repro.hierarchy import HierarchyTree
from repro.workloads import asap7, build_design

DESIGN = "jpeg"

EDIT_COUNTS = (1, 4, 16)

SPEEDUP_TARGET = 5.0

#: Skinny wire dimensions: narrower than M2_WIDTH so each edit plants a
#: real width violation the splice must pick up.
WIRE_W, WIRE_H = 12, 80


def bench_deck():
    """Every splice-sensitive kind the issue names: spacing, width,
    enclosure, corner — on the layers jpeg actually routes."""
    return [
        asap7.width_rule(asap7.M1),
        asap7.spacing_rule(asap7.M1),
        asap7.width_rule(asap7.M2),
        asap7.spacing_rule(asap7.M2),
        layer(asap7.M2).corner_spacing().greater_than(10).named("CS.M2"),
        asap7.enclosure_rule(asap7.V2, asap7.M2),
    ]


def apply_edits(layout, count: int) -> None:
    """Add ``count`` skinny M2 wires spread evenly across the chip width.

    Spreading keeps the dirty windows disjoint, so the re-checked area —
    and hence the re-check time — genuinely scales with the edit count.
    """
    chip = HierarchyTree(layout).top_mbr(asap7.M2)
    span = max(chip.xhi - chip.xlo - 2 * WIRE_W, 1)
    y = chip.ylo + (chip.yhi - chip.ylo) * 2 // 3
    for i in range(count):
        x = chip.xlo + WIRE_W + span * i // count
        layout.top_cell().add_polygon(
            asap7.M2, Polygon.from_rect_coords(x, y, x + WIRE_W, y + WIRE_H)
        )


def run_edit(old, baseline, deck, count: int) -> dict:
    """Edit a fresh build, re-check against the baseline, verify vs cold."""
    new = build_design(DESIGN, SCALE)
    apply_edits(new, count)

    options = EngineOptions(mode="sequential")
    start = time.perf_counter()
    outcome = recheck(old, new, rules=deck, options=options, cached=baseline)
    recheck_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold = Engine(options=options).check(new, rules=deck)
    cold_seconds = time.perf_counter() - start

    if outcome.report.to_csv() != cold.to_csv():
        raise AssertionError(
            f"{DESIGN} x{count}: spliced report differs from the cold check"
        )
    dirty_rects = sum(len(r) for r in outcome.diff.dirty.values())
    dispositions = {}
    for kind in outcome.disposition.values():
        dispositions[kind] = dispositions.get(kind, 0) + 1
    return {
        "edit_count": count,
        "dirty_rects": dirty_rects,
        "recheck_seconds": recheck_seconds,
        "cold_seconds": cold_seconds,
        "speedup": cold_seconds / recheck_seconds if recheck_seconds else None,
        "dispositions": dispositions,
        "violations": outcome.report.total_violations,
        "identical_to_cold": True,
    }


def run_benchmark() -> dict:
    old = design(DESIGN)
    deck = bench_deck()
    start = time.perf_counter()
    baseline = Engine(options=EngineOptions(mode="sequential")).check(
        old, rules=deck
    )
    baseline_seconds = time.perf_counter() - start
    edits = [run_edit(old, baseline, deck, count) for count in EDIT_COUNTS]
    payload = {
        "benchmark": "incremental",
        "design": DESIGN,
        "scale": SCALE,
        "deck": "asap7 width+spacing+corner+enclosure",
        "baseline_seconds": baseline_seconds,
        "edits": edits,
        "speedup_target": SPEEDUP_TARGET,
        "one_edit_speedup": edits[0]["speedup"],
    }
    path = write_bench_json("incremental", payload)
    payload["path"] = path
    return payload


_payload = None


def benchmark_payload() -> dict:
    """The benchmark is expensive: run it once per process, share results."""
    global _payload
    if _payload is None:
        _payload = run_benchmark()
    return _payload


def test_spliced_reports_match_cold_checks():
    """Exactness at every edit size (asserted inside run_edit)."""
    payload = benchmark_payload()
    assert all(e["identical_to_cold"] for e in payload["edits"])
    assert all(e["violations"] >= e["edit_count"] for e in payload["edits"])


def test_one_edit_recheck_is_5x_faster():
    payload = benchmark_payload()
    assert payload["one_edit_speedup"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x re-check-over-cold on a one-wire "
        f"edit, measured {payload['one_edit_speedup']:.2f}x"
    )


def test_recheck_time_scales_with_edit_size():
    payload = benchmark_payload()
    edits = payload["edits"]
    assert [e["dirty_rects"] for e in edits] == sorted(
        e["dirty_rects"] for e in edits
    )
    assert edits[-1]["recheck_seconds"] > edits[0]["recheck_seconds"]
    for entry in edits:
        assert entry["recheck_seconds"] < entry["cold_seconds"]


def main() -> None:
    payload = benchmark_payload()
    print(f"incremental re-check ({payload['deck']})")
    print(
        f"  [{payload['design']} @ {payload['scale']}] "
        f"baseline cold check {payload['baseline_seconds'] * 1e3:7.1f} ms"
    )
    for entry in payload["edits"]:
        print(
            f"  {entry['edit_count']:3d} edit(s): "
            f"recheck {entry['recheck_seconds'] * 1e3:7.1f} ms  "
            f"cold {entry['cold_seconds'] * 1e3:7.1f} ms  "
            f"speedup {entry['speedup']:6.2f}x  "
            f"({entry['dirty_rects']} dirty rects, "
            f"dispositions {entry['dispositions']})"
        )
    print(
        f"  target {SPEEDUP_TARGET}x on 1 edit: "
        f"measured {payload['one_edit_speedup']:.2f}x"
    )
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
