"""Ablation: adaptive row partition on vs off (paper §IV-B, Fig. 4 discussion).

"The adaptive layout partition consumes only around 15% of overall runtime,
but greatly enhances the efficiency of subsequent steps." Rows matter most
on layers whose geometry forms separable bands (M3 routing tracks).
"""

import pytest

from repro.core import Engine, EngineOptions
from repro.workloads import asap7

from .common import design

DESIGNS = ("aes", "jpeg")


@pytest.mark.parametrize("design_name", DESIGNS)
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
@pytest.mark.parametrize("use_rows", [True, False], ids=["rows-on", "rows-off"])
def test_m3_spacing_partition(benchmark, design_name, mode, use_rows):
    layout = design(design_name)
    rule = asap7.spacing_rule(asap7.M3)

    def run():
        engine = Engine(options=EngineOptions(mode=mode, use_rows=use_rows))
        return engine.check(layout, rules=[rule])

    report = benchmark(run)
    assert report.passed


def test_partition_same_results_both_ways():
    layout = design("jpeg")
    rule = asap7.spacing_rule(asap7.M3)
    on = Engine(options=EngineOptions(mode="parallel", use_rows=True)).check(
        layout, rules=[rule]
    )
    off = Engine(options=EngineOptions(mode="parallel", use_rows=False)).check(
        layout, rules=[rule]
    )
    assert on.results[0].violation_set() == off.results[0].violation_set()
