"""Scaling study: checker runtime vs. design size (bonus series).

Not a paper artifact, but the natural companion figure: M1 spacing runtime
for each checker as one design grows through scale factors, showing how the
paper's Table II orderings extrapolate. Regenerates a printable series.
"""

import time

import pytest

from repro.baselines import KLayoutLikeChecker, XCheckChecker
from repro.core import Engine
from repro.layout import compute_stats
from repro.workloads import asap7, build_design

SCALES = (1, 2, 3)


def checkers_for(layout):
    return [
        ("ODRC-par", lambda: Engine(mode="parallel").check(
            layout, rules=[asap7.spacing_rule(asap7.M1)])),
        ("ODRC-seq", lambda: Engine(mode="sequential").check(
            layout, rules=[asap7.spacing_rule(asap7.M1)])),
        ("X-Check", lambda: XCheckChecker(layout).run(asap7.spacing_rule(asap7.M1))),
        ("KL-flat", lambda: KLayoutLikeChecker(layout, "flat").run(
            asap7.spacing_rule(asap7.M1))),
    ]


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_opendrc_m1_spacing_scaling(benchmark, scale, mode):
    layout = build_design("aes", scale)
    rule = asap7.spacing_rule(asap7.M1)

    def run():
        return Engine(mode=mode).check(layout, rules=[rule])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    benchmark.extra_info["flat_polygons"] = compute_stats(layout).num_flat_polygons


def test_scaling_series_print(benchmark, capsys):
    def table():
        lines = [
            "Scaling series: aes M1.S.1 runtime (ms) vs design scale",
            f"{'scale':>5} {'polys':>8} {'ODRC-par':>9} {'ODRC-seq':>9} "
            f"{'X-Check':>9} {'KL-flat':>9}",
        ]
        for scale in SCALES:
            layout = build_design("aes", scale)
            polys = compute_stats(layout).num_flat_polygons
            cells = []
            for _, run in checkers_for(layout):
                start = time.perf_counter()
                run()
                cells.append(time.perf_counter() - start)
            lines.append(
                f"{scale:>5} {polys:>8} "
                + " ".join(f"{seconds * 1e3:>9.1f}" for seconds in cells)
            )
        return "\n".join(lines)

    text = benchmark.pedantic(table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
