"""Ablation: brute-force vs parallel-sweepline GPU executor (paper §IV-E).

OpenDRC selects per task: brute force for small edge counts, the two-kernel
sweepline for large ones. Forcing each executor across all tasks shows the
crossover the adaptive threshold exploits.
"""

import pytest

from repro.core import Engine, EngineOptions
from repro.workloads import asap7

from .common import design

FORCE_BRUTE = 10 ** 9
FORCE_SWEEP = 0


@pytest.mark.parametrize("design_name", ["ibex", "jpeg"])
@pytest.mark.parametrize(
    "threshold",
    [FORCE_BRUTE, FORCE_SWEEP, 256],
    ids=["all-bruteforce", "all-sweepline", "adaptive"],
)
def test_executor_choice_m1_spacing(benchmark, design_name, threshold):
    layout = design(design_name)
    rule = asap7.spacing_rule(asap7.M1)

    def run():
        engine = Engine(
            options=EngineOptions(mode="parallel", brute_force_threshold=threshold)
        )
        return engine.check(layout, rules=[rule])

    report = benchmark(run)
    assert report.passed


def test_executors_equivalent():
    layout = design("ibex")
    rule = asap7.spacing_rule(asap7.M1)
    results = []
    for threshold in (FORCE_BRUTE, FORCE_SWEEP):
        engine = Engine(
            options=EngineOptions(mode="parallel", brute_force_threshold=threshold)
        )
        results.append(engine.check(layout, rules=[rule]).results[0].violation_set())
    assert results[0] == results[1]
