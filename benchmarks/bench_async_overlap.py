"""Heterogeneous-computing evaluation (paper §V-C / roadmap).

The paper hides copies and kernels behind CUDA streams and notes that
"runtime profiling and visualization are slightly complicated and are left
to future work". The simulated device records every host/copy/kernel
operation with stream and duration; replaying the record under the CUDA
execution model yields the asynchronous makespan, so the overlap the design
achieves can be measured — closing that future-work item for the
reproduction.
"""

import pytest

from repro.core import Engine, EngineOptions
from repro.gpu import Device
from repro.workloads import asap7

from .common import TABLE_DESIGNS, design


def run_with_streams(design_name: str, num_streams: int):
    device = Device()
    engine = Engine(
        device=device,
        options=EngineOptions(mode="parallel", num_streams=num_streams),
    )
    engine.add_rules(asap7.spacing_deck())
    engine.check(design(design_name))
    return device.timeline().summarize()


@pytest.mark.parametrize("design_name", ["aes", "jpeg"])
@pytest.mark.parametrize("num_streams", [1, 2, 4])
def test_async_makespan(benchmark, design_name, num_streams):
    summary = benchmark.pedantic(
        run_with_streams, args=(design_name, num_streams), rounds=1, iterations=1
    )
    benchmark.extra_info["serial_s"] = round(summary.serial_seconds, 5)
    benchmark.extra_info["async_s"] = round(summary.async_seconds, 5)
    benchmark.extra_info["overlap_savings"] = round(summary.overlap_savings, 3)
    assert summary.async_seconds <= summary.serial_seconds + 1e-9


def test_overlap_print(benchmark, capsys):
    def table():
        lines = ["Async overlap (parallel spacing deck), CUDA-model replay:"]
        lines.append(
            f"{'design':<8} {'streams':>7} {'serial ms':>10} {'async ms':>9} {'hidden':>7}"
        )
        for design_name in TABLE_DESIGNS:
            for streams in (1, 2, 4):
                s = run_with_streams(design_name, streams)
                lines.append(
                    f"{design_name:<8} {streams:>7} {s.serial_seconds * 1e3:>10.2f} "
                    f"{s.async_seconds * 1e3:>9.2f} {s.overlap_savings * 100:>6.1f}%"
                )
        return "\n".join(lines)

    text = benchmark.pedantic(table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
