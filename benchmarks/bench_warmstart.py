"""Warm-start benchmark: pack-store hits must erase the pack phase.

Runs a store-backed deck (spacing + corner + enclosure — every pack kind
the content-addressed store serves) twice against a fresh cache directory
and emits ``BENCH_warmstart.json``. Three properties are checked:

* **Warm pack phase is exactly zero (hard)**: every warm run reports
  ``pack_seconds == 0.0`` and nonzero cache hits — packing was served
  entirely from memmapped store entries, never rebuilt.
* **Determinism (hard)**: the CSV marker dump is byte-identical cold vs
  warm, and across ``jobs`` ∈ {1, 2, 4} with the cache both enabled and
  disabled — the store must be invisible in the report.
* **End-to-end speedup (gated)**: ≥ 2x warm over cold on the
  pack-dominated workload (the smallest design, where packing dominates
  kernel time). Larger designs are recorded but not enforced: their
  kernel phase grows with pair count while the saved pack phase does not.

Run directly (``python -m benchmarks.bench_warmstart``) or through pytest.
"""

from __future__ import annotations

import tempfile
import time

from benchmarks.common import SCALE, design, write_bench_json
from repro.core import Engine, EngineOptions
from repro.core.rules import layer
from repro.workloads import asap7

JOB_COUNTS = (1, 2, 4)

#: Generator workloads, smallest to largest flat polygon count.
DESIGNS = ("uart", "jpeg")

#: The pack-dominated workload — the speedup criterion applies here.
PACK_DOMINATED = "uart"

SPEEDUP_TARGET = 2.0


def store_backed_deck():
    """Spacing + corner + enclosure: every pack kind the store serves.

    Width/area rules are deliberately excluded — their packing is not
    store-backed, so including them would report nonzero warm
    ``pack_seconds`` for work the store never promised to save.
    """
    rules = asap7.spacing_deck() + asap7.enclosure_deck()
    rules.append(layer(asap7.M2).corner_spacing().greater_than(10).named("CS.M2"))
    return rules


def _run(layout, deck, *, cache_dir=None, use_cache=True, jobs=1):
    mode = "multiproc" if jobs > 1 else "parallel"
    engine = Engine(
        options=EngineOptions(
            mode=mode, cache_dir=cache_dir, use_cache=use_cache, jobs=jobs
        )
    )
    start = time.perf_counter()
    report = engine.check(layout, rules=deck)
    return report, time.perf_counter() - start


def run_pair(design_name: str) -> dict:
    """Cold + warm run of one design against a fresh cache directory."""
    layout = design(design_name)
    deck = store_backed_deck()
    with tempfile.TemporaryDirectory() as cache:
        cold, cold_seconds = _run(layout, deck, cache_dir=cache)
        warm, warm_seconds = _run(layout, deck, cache_dir=cache)
    cold_stats = cold.results[-1].stats
    warm_stats = warm.results[-1].stats
    if warm.to_csv() != cold.to_csv():
        raise AssertionError(f"{design_name}: warm report differs from cold")
    if warm_stats["pack_seconds"] != 0.0:
        raise AssertionError(
            f"{design_name}: warm run repacked for "
            f"{warm_stats['pack_seconds']:.4f}s"
        )
    if warm_stats["cache_hits"] == 0:
        raise AssertionError(f"{design_name}: warm run recorded no cache hits")
    return {
        "design": design_name,
        "scale": SCALE,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "cold_pack_seconds": cold_stats["pack_seconds"],
        "warm_pack_seconds": warm_stats["pack_seconds"],
        "cache_misses": cold_stats["cache_misses"],
        "cache_hits": warm_stats["cache_hits"],
        "cache_bytes_written": cold_stats["cache_bytes_written"],
        "cache_bytes_read": warm_stats["cache_bytes_read"],
        "violations": warm.total_violations,
    }


def run_jobs_matrix(design_name: str) -> dict:
    """Byte-identical reports at every (jobs, cache on/off) combination."""
    layout = design(design_name)
    deck = store_backed_deck()
    baseline = None
    cells = []
    with tempfile.TemporaryDirectory() as cache:
        for use_cache in (True, False):
            for jobs in JOB_COUNTS:
                report, seconds = _run(
                    layout, deck, cache_dir=cache, use_cache=use_cache, jobs=jobs
                )
                csv = report.to_csv()
                if baseline is None:
                    baseline = csv
                elif csv != baseline:
                    raise AssertionError(
                        f"{design_name}: report at jobs={jobs} "
                        f"cache={'on' if use_cache else 'off'} differs"
                    )
                cells.append(
                    {"jobs": jobs, "cache": use_cache, "seconds": seconds}
                )
    return {"design": design_name, "cells": cells, "reports_identical": True}


def run_benchmark() -> dict:
    pairs = [run_pair(name) for name in DESIGNS]
    dominated = next(p for p in pairs if p["design"] == PACK_DOMINATED)
    payload = {
        "benchmark": "warmstart",
        "deck": "asap7_spacing+corner+enclosure",
        "pairs": pairs,
        "jobs_matrix": run_jobs_matrix(PACK_DOMINATED),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_design": PACK_DOMINATED,
        "speedup_measured": dominated["speedup"],
    }
    path = write_bench_json("warmstart", payload)
    payload["path"] = path
    return payload


def test_warm_run_skips_the_pack_phase():
    """Warm stats: zero pack seconds, nonzero hits, identical report."""
    pair = run_pair("uart")
    assert pair["warm_pack_seconds"] == 0.0
    assert pair["cache_hits"] > 0
    assert pair["cache_bytes_read"] > 0


def test_reports_identical_across_jobs_and_cache():
    """Six-way determinism: jobs 1/2/4 with the cache on and off."""
    matrix = run_jobs_matrix("uart")
    assert matrix["reports_identical"]
    assert len(matrix["cells"]) == 2 * len(JOB_COUNTS)


def test_warmstart_speedup():
    """Emit BENCH_warmstart.json; enforce 2x on the pack-dominated pair."""
    payload = run_benchmark()
    assert payload["speedup_measured"] >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x warm-over-cold on "
        f"{payload['speedup_design']}, measured "
        f"{payload['speedup_measured']:.2f}x"
    )


def main() -> None:
    payload = run_benchmark()
    print(f"warm start ({payload['deck']})")
    for pair in payload["pairs"]:
        print(
            f"  [{pair['design']} @ {pair['scale']}] "
            f"cold {pair['cold_seconds'] * 1e3:7.1f} ms "
            f"(pack {pair['cold_pack_seconds'] * 1e3:6.1f} ms, "
            f"{pair['cache_misses']} misses)  "
            f"warm {pair['warm_seconds'] * 1e3:7.1f} ms "
            f"(pack {pair['warm_pack_seconds'] * 1e3:.1f} ms, "
            f"{pair['cache_hits']} hits)  "
            f"speedup {pair['speedup']:.2f}x"
        )
    matrix = payload["jobs_matrix"]
    combos = ", ".join(
        f"j{c['jobs']}/{'on' if c['cache'] else 'off'}" for c in matrix["cells"]
    )
    print(f"  reports byte-identical across: {combos}")
    print(
        f"  target {SPEEDUP_TARGET}x on {payload['speedup_design']}: "
        f"measured {payload['speedup_measured']:.2f}x"
    )
    print(f"  wrote {payload['path']}")


if __name__ == "__main__":
    main()
