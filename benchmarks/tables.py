"""Paper-style table generation (Tables I and II, Fig. 4).

Each generator measures every (design, rule) cell under all six checker
columns and renders the paper's layout: one row per design x rule, runtimes
in seconds ('< 0.01' under the print resolution), and the closing 'average'
row — per-column geometric means normalized against OpenDRC-parallel,
exactly as the paper computes it ("the runtime is the geometric mean of the
column, as we value all checks equally regardless of their sizes").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core import Engine
from repro.core.rules import Rule
from repro.util.report import format_table, geometric_mean
from repro.workloads import asap7

from .common import TABLE_COLUMNS, TABLE_DESIGNS, design


def _measure_table(
    rules_of: Dict[str, List[Rule]],
    *,
    designs: Sequence[str] = TABLE_DESIGNS,
) -> Tuple[List[List[object]], Dict[str, float]]:
    """Measure all cells; returns (rows, per-column normalized geomeans)."""
    rows: List[List[object]] = []
    column_samples: Dict[str, List[float]] = {name: [] for name, _ in TABLE_COLUMNS}
    for design_name in designs:
        layout = design(design_name)
        for rule in rules_of[design_name]:
            row: List[object] = [design_name, rule.name]
            for column_name, runner in TABLE_COLUMNS:
                seconds = runner(layout, rule)
                if seconds is None:
                    row.append("-")
                else:
                    row.append(seconds)
                    column_samples[column_name].append(seconds)
            rows.append(row)
    geomeans = {
        name: geometric_mean(samples) for name, samples in column_samples.items()
    }
    base = geomeans.get("ODRC-par") or 1.0
    normalized = {
        name: (value / base if base else 0.0) for name, value in geomeans.items()
    }
    return rows, normalized


def _render(title: str, rows, normalized) -> str:
    headers = ["design", "rule"] + [name for name, _ in TABLE_COLUMNS]
    average = ["average", "(geomean)"] + [
        f"{normalized[name] * 100:.1f}%" if normalized[name] else "-"
        for name, _ in TABLE_COLUMNS
    ]
    return format_table(headers, rows + [average], title=title)


def table1_intra(designs: Sequence[str] = TABLE_DESIGNS) -> str:
    """Table I: intra-polygon checks (width + area on M1/M2/M3)."""
    rules = {name: asap7.intra_deck() for name in designs}
    rows, normalized = _measure_table(rules, designs=designs)
    return _render(
        "Table I: runtime comparisons for intra-polygon design rule checks (s)",
        rows,
        normalized,
    )


def table2_spacing(designs: Sequence[str] = TABLE_DESIGNS) -> str:
    """Table II (left): spacing checks M1.S.1 / M2.S.1 / M3.S.1."""
    rules = {name: asap7.spacing_deck() for name in designs}
    rows, normalized = _measure_table(rules, designs=designs)
    return _render(
        "Table II (spacing): runtime comparisons for inter-polygon checks (s)",
        rows,
        normalized,
    )


def table2_enclosure(designs: Sequence[str] = TABLE_DESIGNS) -> str:
    """Table II (right): enclosure checks V1.M1 / V2.M2 / V2.M3."""
    rules = {name: asap7.enclosure_deck() for name in designs}
    rows, normalized = _measure_table(rules, designs=designs)
    return _render(
        "Table II (enclosure): runtime comparisons for inter-layer checks (s)",
        rows,
        normalized,
    )


def fig4_breakdown(designs: Sequence[str] = TABLE_DESIGNS) -> str:
    """Fig. 4: runtime breakdown of sequential space checks by phase."""
    sections: List[str] = [
        "Fig. 4: runtime breakdown of OpenDRC sequential space checks"
    ]
    for design_name in designs:
        layout = design(design_name)
        engine = Engine(mode="sequential")
        engine.add_rules(asap7.spacing_deck())
        engine.check(layout)
        merged = None
        for profile in engine.last_profiles.values():
            if merged is None:
                merged = profile
            else:
                merged.merge(profile)
        sections.append(f"\n[{design_name}]")
        sections.append(merged.breakdown_table())
    return "\n".join(sections)


def speedup_summary() -> Dict[str, Dict[str, float]]:
    """Headline ratios in the paper's phrasing, for EXPERIMENTS.md.

    Returns, per table, the per-column geomean normalized to OpenDRC-par
    (so 'KL-tile': 12.0 would read 'OpenDRC-par is 12.0x faster than
    KLayout tiling').
    """
    out: Dict[str, Dict[str, float]] = {}
    for label, rules in (
        ("intra", asap7.intra_deck()),
        ("spacing", asap7.spacing_deck()),
        ("enclosure", asap7.enclosure_deck()),
    ):
        _, normalized = _measure_table({name: rules for name in TABLE_DESIGNS})
        out[label] = normalized
    return out
