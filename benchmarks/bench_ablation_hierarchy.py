"""Ablation: hierarchy pruning on vs off (paper §IV-C).

'Off' means checking the flattened layout with the same core algorithms
(sweepline candidate search + edge checks, no memoisation, no per-cell
reuse) — isolating exactly what the hierarchy tree buys. The paper credits
this reuse for the ~37.6x sequential advantage over flat checking.
"""

import pytest

from repro.checks.spacing import check_spacing
from repro.checks.width import check_width
from repro.core import Engine
from repro.layout.flatten import flatten_layer
from repro.workloads import asap7

from .common import design

DESIGNS = ("ibex", "aes", "jpeg")


@pytest.mark.parametrize("design_name", DESIGNS)
def test_width_with_hierarchy(benchmark, design_name):
    layout = design(design_name)
    rule = asap7.width_rule(asap7.M1)

    def run():
        return Engine(mode="sequential").check(layout, rules=[rule])

    report = benchmark(run)
    result = report.results[0]
    benchmark.extra_info["checks_run"] = result.stats.get("checks_run")
    benchmark.extra_info["checks_reused"] = result.stats.get("checks_reused")


@pytest.mark.parametrize("design_name", DESIGNS)
def test_width_flat_no_hierarchy(benchmark, design_name):
    layout = design(design_name)
    flat = flatten_layer(layout, asap7.M1)  # flatten outside the timed region

    def run():
        return check_width(flat, asap7.M1, asap7.WIDTH_RULES[asap7.M1])

    violations = benchmark(run)
    assert violations == []


@pytest.mark.parametrize("design_name", DESIGNS)
def test_spacing_with_hierarchy(benchmark, design_name):
    layout = design(design_name)
    rule = asap7.spacing_rule(asap7.M1)

    def run():
        return Engine(mode="sequential").check(layout, rules=[rule])

    benchmark(run)


@pytest.mark.parametrize("design_name", DESIGNS)
def test_spacing_flat_no_hierarchy(benchmark, design_name):
    layout = design(design_name)
    flat = flatten_layer(layout, asap7.M1)

    def run():
        return check_spacing(flat, asap7.M1, asap7.SPACING_RULES[asap7.M1])

    violations = benchmark(run)
    assert violations == []


def test_hierarchy_reuse_counters():
    """The pruning statistics show definition-level reuse happening."""
    layout = design("jpeg")
    engine = Engine(mode="sequential")
    report = engine.check(layout, rules=[asap7.width_rule(asap7.M1)])
    stats = report.results[0].stats
    assert stats["checks_reused"] > 10 * stats["checks_run"]
