"""Ablation: sweepline + interval tree vs STR R-tree for candidate pairs.

The paper chooses a sweepline with an interval-tree status for the
sequential MBR overlap search (§IV-D) over the R-tree family it cites in
§I. This ablation measures both on the benchmark designs' flat MBR
populations — the sweepline wins on full pair enumeration (its native
operation), while the R-tree's strength is repeated windowed queries.
"""

import pytest

from repro.layout.flatten import flatten_layer
from repro.spatial import iter_overlapping_pairs
from repro.spatial.rtree import RTree
from repro.workloads import asap7

from .common import design


def m1_mbrs(design_name):
    return [p.mbr for p in flatten_layer(design(design_name), asap7.M1)]


@pytest.mark.parametrize("design_name", ["ibex", "aes"])
def test_sweepline_pairs(benchmark, design_name):
    rects = m1_mbrs(design_name)
    pairs = benchmark(lambda: list(iter_overlapping_pairs(rects)))
    benchmark.extra_info["pairs"] = len(pairs)


@pytest.mark.parametrize("design_name", ["ibex", "aes"])
def test_rtree_pairs(benchmark, design_name):
    rects = m1_mbrs(design_name)
    entries = [(rect, i) for i, rect in enumerate(rects)]

    def run():
        return RTree(entries).overlapping_pairs()

    pairs = benchmark(run)
    benchmark.extra_info["pairs"] = len(pairs)


@pytest.mark.parametrize("design_name", ["ibex", "aes"])
def test_rtree_windowed_queries(benchmark, design_name):
    rects = m1_mbrs(design_name)
    tree = RTree([(rect, i) for i, rect in enumerate(rects)])
    windows = [rect.inflated(18) for rect in rects[:500]]

    def run():
        return sum(len(tree.query(w)) for w in windows)

    hits = benchmark(run)
    benchmark.extra_info["hits"] = hits


def test_index_equivalence():
    rects = m1_mbrs("uart")
    entries = [(rect, i) for i, rect in enumerate(rects)]
    assert sorted(RTree(entries).overlapping_pairs()) == sorted(
        iter_overlapping_pairs(rects)
    )
