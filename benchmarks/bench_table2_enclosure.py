"""Table II (right half): inter-layer enclosure checks (V1.M1, V2.M2, V2.M3).

Expected shape (paper §VI): OpenDRC-par ~4.7x vs OpenDRC-seq, ~2.9x vs
X-Check, ~61.5x vs KLayout-tile.
"""

import pytest

from repro.core import Engine
from repro.workloads import asap7

from .common import TABLE_DESIGNS, design, verify_agreement
from .tables import table2_enclosure


@pytest.mark.parametrize("design_name", TABLE_DESIGNS)
@pytest.mark.parametrize("mode", ["sequential", "parallel"])
def test_opendrc_enclosure_deck(benchmark, design_name, mode):
    layout = design(design_name)
    deck = asap7.enclosure_deck()

    def run():
        engine = Engine(mode=mode)
        return engine.check(layout, rules=deck)

    report = benchmark(run)
    benchmark.extra_info["violations"] = report.total_violations
    assert report.passed


def test_enclosure_agreement():
    for design_name in ("uart", "ibex"):
        layout = design(design_name)
        for rule in asap7.enclosure_deck():
            verify_agreement(layout, rule)


def test_table2_enclosure_print(benchmark, capsys):
    table = benchmark.pedantic(table2_enclosure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
