"""Ablation: pigeonhole-array vs sort-based interval merging (paper §IV-B).

The paper argues for the Theta(k + N) pigeonhole array because in layouts
``k`` (number of cells) is much larger than ``N`` (distinct row
coordinates) and a flat array has better locality than sorting. The
benchmark reproduces that regime: many intervals drawn from few distinct
row coordinates.
"""

import random

import pytest

from repro.geometry import Interval
from repro.spatial import merge_intervals_pigeonhole, merge_intervals_sorted


def row_intervals(k: int, rows: int, seed: int = 0):
    """k cell y-extents drawn from `rows` distinct standard-cell rows."""
    rng = random.Random(seed)
    out = []
    for _ in range(k):
        row = rng.randrange(rows)
        out.append(Interval(row * 250, row * 250 + 250))
    return out


@pytest.mark.parametrize("k", [1_000, 10_000, 50_000])
def test_pigeonhole_merge(benchmark, k):
    intervals = row_intervals(k, rows=64)
    result = benchmark(merge_intervals_pigeonhole, intervals)
    benchmark.extra_info["merged"] = len(result)


@pytest.mark.parametrize("k", [1_000, 10_000, 50_000])
def test_sorted_merge(benchmark, k):
    intervals = row_intervals(k, rows=64)
    result = benchmark(merge_intervals_sorted, intervals)
    benchmark.extra_info["merged"] = len(result)


def test_backends_agree_on_benchmark_workload():
    intervals = row_intervals(20_000, rows=64)
    assert merge_intervals_pigeonhole(intervals) == merge_intervals_sorted(intervals)
