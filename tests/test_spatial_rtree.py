import random

import pytest

from repro.geometry import EMPTY_RECT, Rect
from repro.spatial.rtree import RTree


def random_entries(seed, n=200, extent=1000):
    rng = random.Random(seed)
    entries = []
    for i in range(n):
        x, y = rng.randint(0, extent), rng.randint(0, extent)
        entries.append((Rect(x, y, x + rng.randint(1, 50), y + rng.randint(1, 50)), i))
    return entries


class TestConstruction:
    def test_empty(self):
        tree = RTree([])
        assert len(tree) == 0 and tree.query(Rect(0, 0, 10, 10)) == []

    def test_single(self):
        tree = RTree([(Rect(0, 0, 10, 10), "a")])
        assert tree.query(Rect(5, 5, 6, 6)) == ["a"]

    def test_empty_rects_dropped(self):
        tree = RTree([(EMPTY_RECT, "ghost"), (Rect(0, 0, 1, 1), "real")])
        assert len(tree) == 1

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            RTree([], fanout=1)

    def test_height_grows_logarithmically(self):
        small = RTree(random_entries(0, n=10), fanout=4)
        large = RTree(random_entries(0, n=500), fanout=4)
        assert small.height < large.height <= 6


class TestQueries:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("fanout", [4, 16])
    def test_matches_linear_scan(self, seed, fanout):
        entries = random_entries(seed)
        tree = RTree(entries, fanout=fanout)
        rng = random.Random(seed + 100)
        for _ in range(25):
            x, y = rng.randint(0, 1000), rng.randint(0, 1000)
            window = Rect(x, y, x + rng.randint(0, 200), y + rng.randint(0, 200))
            expected = sorted(i for rect, i in entries if rect.overlaps(window))
            assert sorted(tree.query(window)) == expected

    def test_touching_window_counts(self):
        tree = RTree([(Rect(0, 0, 10, 10), "a")])
        assert tree.query(Rect(10, 0, 20, 10)) == ["a"]

    def test_empty_window(self):
        tree = RTree(random_entries(1))
        assert tree.query(EMPTY_RECT) == []

    def test_query_count_prunes(self):
        entries = random_entries(2, n=1000, extent=10_000)
        tree = RTree(entries)
        hits, visited = tree.query_count(Rect(0, 0, 100, 100))
        total_nodes = 1 + len(entries) // tree.fanout
        assert visited < total_nodes  # BVH pruning actually happened


class TestPairs:
    @pytest.mark.parametrize("seed", range(3))
    def test_pairs_match_sweepline(self, seed):
        from repro.spatial import iter_overlapping_pairs

        entries = random_entries(seed, n=120)
        rects = [rect for rect, _ in entries]
        tree = RTree(entries)
        assert sorted(tree.overlapping_pairs()) == sorted(iter_overlapping_pairs(rects))
