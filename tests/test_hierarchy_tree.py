from repro.geometry import EMPTY_RECT, Polygon, Rect, Transform
from repro.hierarchy import HierarchyTree, reference_mbr
from repro.layout import CellReference, Layout, Repetition


def build_layout() -> Layout:
    layout = Layout("tree-demo")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
    leaf.add_polygon(2, Polygon.from_rect_coords(20, 0, 30, 4))
    metal_only = layout.new_cell("metal_only")
    metal_only.add_polygon(2, Polygon.from_rect_coords(0, 0, 6, 6))
    mid = layout.new_cell("mid")
    mid.add_reference(CellReference("leaf", Transform(dx=100)))
    mid.add_reference(CellReference("metal_only", Transform(dx=300)))
    top = layout.new_cell("top")
    top.add_reference(CellReference("mid", Transform(dy=50)))
    top.add_polygon(1, Polygon.from_rect_coords(-50, -50, -40, -40))
    layout.set_top("top")
    return layout


class TestLayerMbrs:
    def test_leaf_mbrs_per_layer(self):
        tree = HierarchyTree(build_layout())
        assert tree.layer_mbr("leaf", 1) == Rect(0, 0, 10, 10)
        assert tree.layer_mbr("leaf", 2) == Rect(20, 0, 30, 4)

    def test_absent_layer_is_empty(self):
        tree = HierarchyTree(build_layout())
        assert tree.layer_mbr("metal_only", 1).is_empty
        assert not tree.has_layer("metal_only", 1)

    def test_mid_accumulates_children(self):
        tree = HierarchyTree(build_layout())
        assert tree.layer_mbr("mid", 1) == Rect(100, 0, 110, 10)
        assert tree.layer_mbr("mid", 2) == Rect(120, 0, 306, 6)

    def test_top_includes_local_and_subtree(self):
        tree = HierarchyTree(build_layout())
        assert tree.top_mbr(1) == Rect(-50, -50, 110, 60)

    def test_cell_layers(self):
        tree = HierarchyTree(build_layout())
        assert tree.cell_layers("mid") == [1, 2]
        assert tree.cell_layers("metal_only") == [2]


class TestReferenceMbr:
    def test_plain_reference(self):
        ref = CellReference("x", Transform(dx=5, dy=7))
        assert reference_mbr(ref, Rect(0, 0, 10, 10)) == Rect(5, 7, 15, 17)

    def test_rotated_reference(self):
        ref = CellReference("x", Transform(rotation=90))
        assert reference_mbr(ref, Rect(0, 0, 10, 4)) == Rect(-4, 0, 0, 10)

    def test_aref_folds_grid_analytically(self):
        ref = CellReference(
            "x", Transform(), Repetition(3, 2, (100, 0), (0, 50))
        )
        assert reference_mbr(ref, Rect(0, 0, 10, 10)) == Rect(0, 0, 210, 60)

    def test_aref_matches_expanded_union(self):
        rep = Repetition(4, 3, (35, 5), (-10, 60))
        ref = CellReference("x", Transform(dx=7, dy=11, rotation=90), rep)
        child = Rect(2, 3, 20, 9)
        folded = reference_mbr(ref, child)
        from repro.geometry import union_all

        expanded = union_all(p.apply_rect(child) for p in ref.placements())
        assert folded == expanded

    def test_empty_child(self):
        ref = CellReference("x", Transform(dx=5))
        assert reference_mbr(ref, EMPTY_RECT).is_empty


class TestInstances:
    def test_iter_instances_counts(self):
        tree = HierarchyTree(build_layout())
        instances = list(tree.iter_instances())
        names = [cell.name for cell, _ in instances]
        assert names.count("leaf") == 1
        assert names.count("top") == 1

    def test_iter_instances_layer_pruning(self):
        tree = HierarchyTree(build_layout())
        names = [cell.name for cell, _ in tree.iter_instances(layer=1)]
        assert "metal_only" not in names
        assert "leaf" in names

    def test_accumulated_transform(self):
        tree = HierarchyTree(build_layout())
        for cell, transform in tree.iter_instances():
            if cell.name == "leaf":
                assert (transform.dx, transform.dy) == (100, 50)

    def test_top_level_items(self):
        tree = HierarchyTree(build_layout())
        items = tree.top_level_items(2)
        assert len(items) == 1
        cell_name, placement, mbr = items[0]
        assert cell_name == "mid"
        assert mbr == Rect(120, 50, 306, 56)
