import pytest

from repro.errors import LayoutError
from repro.geometry import Polygon, Transform
from repro.layout import Cell, CellReference, Layout, Repetition


def two_level_layout() -> Layout:
    layout = Layout("demo")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
    mid = layout.new_cell("mid")
    mid.add_reference(CellReference("leaf", Transform(dx=0)))
    mid.add_reference(CellReference("leaf", Transform(dx=50)))
    top = layout.new_cell("top")
    top.add_reference(CellReference("mid", Transform(dy=100)))
    top.add_reference(CellReference("mid", Transform(dy=300)))
    top.add_reference(
        CellReference("leaf", Transform(), Repetition(3, 2, (20, 0), (0, 20)))
    )
    layout.set_top("top")
    return layout


class TestCell:
    def test_local_layers_sorted(self):
        cell = Cell("c")
        cell.add_polygon(5, Polygon.from_rect_coords(0, 0, 1, 1))
        cell.add_polygon(1, Polygon.from_rect_coords(0, 0, 1, 1))
        assert cell.local_layers() == [1, 5]

    def test_polygons_missing_layer_empty(self):
        assert Cell("c").polygons(9) == []

    def test_is_leaf(self):
        cell = Cell("c")
        assert cell.is_leaf
        cell.add_reference(CellReference("other"))
        assert not cell.is_leaf

    def test_all_polygons(self):
        cell = Cell("c")
        cell.add_polygon(2, Polygon.from_rect_coords(0, 0, 1, 1))
        cell.add_polygon(1, Polygon.from_rect_coords(0, 0, 2, 2))
        assert [layer for layer, _ in cell.all_polygons()] == [1, 2]


class TestRepetition:
    def test_placement_count(self):
        ref = CellReference("x", repetition=Repetition(3, 4, (10, 0), (0, 10)))
        assert ref.placement_count == 12

    def test_placements_expand_offsets(self):
        ref = CellReference(
            "x", Transform(dx=5, dy=5), Repetition(2, 2, (10, 0), (0, 20))
        )
        origins = [(t.dx, t.dy) for t in ref.placements()]
        assert origins == [(5, 5), (15, 5), (5, 25), (15, 25)]

    def test_single_placement_without_repetition(self):
        ref = CellReference("x", Transform(dx=1, dy=2))
        assert list(ref.placements()) == [Transform(dx=1, dy=2)]

    def test_offsets_preserve_rotation(self):
        ref = CellReference(
            "x", Transform(rotation=90), Repetition(2, 1, (10, 0), (0, 0))
        )
        placements = list(ref.placements())
        assert all(p.rotation == 90 for p in placements)


class TestLayout:
    def test_duplicate_cell_rejected(self):
        layout = Layout()
        layout.new_cell("a")
        with pytest.raises(LayoutError):
            layout.new_cell("a")

    def test_unknown_cell_lookup(self):
        with pytest.raises(LayoutError):
            Layout().cell("ghost")

    def test_top_cell_inferred_unique_root(self):
        layout = two_level_layout()
        layout._top_name = None
        assert layout.top_cell().name == "top"

    def test_set_top_unknown_rejected(self):
        with pytest.raises(LayoutError):
            two_level_layout().set_top("ghost")

    def test_layers(self):
        assert two_level_layout().layers() == [1]

    def test_validate_missing_reference(self):
        layout = Layout()
        top = layout.new_cell("top")
        top.add_reference(CellReference("ghost"))
        with pytest.raises(LayoutError):
            layout.validate()

    def test_validate_cycle(self):
        layout = Layout()
        a = layout.new_cell("a")
        b = layout.new_cell("b")
        a.add_reference(CellReference("b"))
        b.add_reference(CellReference("a"))
        with pytest.raises(LayoutError):
            layout.validate()

    def test_topological_order_children_first(self):
        order = [c.name for c in two_level_layout().topological_order()]
        assert order.index("leaf") < order.index("mid") < order.index("top")

    def test_instance_counts(self):
        counts = two_level_layout().instance_counts()
        # top once; mid twice; leaf = 2 mids * 2 + 6 from the AREF.
        assert counts["top"] == 1
        assert counts["mid"] == 2
        assert counts["leaf"] == 2 * 2 + 6

    def test_root_cells(self):
        layout = two_level_layout()
        extra = layout.new_cell("orphan")
        roots = {c.name for c in layout.root_cells()}
        assert roots == {"top", "orphan"}
