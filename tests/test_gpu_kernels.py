import random

import numpy as np
import pytest

from repro.checks import check_spacing, check_width
from repro.geometry import Polygon, Rect
from repro.gpu import (
    kernel_area,
    kernel_enclosure_margins,
    kernel_pairs_bruteforce,
    kernel_pairs_sweep,
    kernel_sweep_ranges,
    pack_edges,
    pack_vertices,
    reduce_enclosure_best,
)


def random_rects(seed, n=60, extent=400):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.randint(0, extent), rng.randint(0, extent)
        out.append(
            Polygon.from_rect_coords(x, y, x + rng.randint(2, 30), y + rng.randint(2, 30))
        )
    return out


def hits_to_set(hits_list):
    out = set()
    for hits in hits_list:
        for k in range(len(hits)):
            out.add(
                (
                    Rect(int(hits.xlo[k]), int(hits.ylo[k]), int(hits.xhi[k]), int(hits.yhi[k])),
                    int(hits.measured[k]),
                )
            )
    return out


class TestPackEdges:
    def test_rectangle_split_by_orientation(self):
        bufs = pack_edges([Polygon.from_rect_coords(0, 0, 10, 4)])
        assert len(bufs["v"]) == 2 and len(bufs["h"]) == 2

    def test_interior_signs(self):
        bufs = pack_edges([Polygon.from_rect_coords(0, 0, 10, 4)])
        v = bufs["v"]
        by_x = dict(zip(v.fixed.tolist(), v.interior.tolist()))
        assert by_x == {0: 1, 10: -1}  # left edge interior east, right west
        h = bufs["h"]
        by_y = dict(zip(h.fixed.tolist(), h.interior.tolist()))
        assert by_y == {0: 1, 4: -1}

    def test_poly_ids_default_to_index(self):
        bufs = pack_edges(random_rects(0, n=5))
        assert set(bufs["v"].poly.tolist()) == set(range(5))

    def test_explicit_poly_ids(self):
        bufs = pack_edges(random_rects(0, n=3), poly_ids=[7, 8, 9])
        assert set(bufs["v"].poly.tolist()) == {7, 8, 9}

    def test_empty(self):
        bufs = pack_edges([])
        assert len(bufs["v"]) == 0 and len(bufs["h"]) == 0


class TestPairKernelsAgainstHost:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("threshold", [5, 12, 25])
    def test_spacing_bruteforce_matches_host(self, seed, threshold):
        polys = random_rects(seed)
        host = {(v.region, v.measured) for v in check_spacing(polys, 1, threshold)}
        bufs = pack_edges(polys)
        hits = [
            kernel_pairs_bruteforce(bufs["v"], threshold, want_width=False),
            kernel_pairs_bruteforce(bufs["h"], threshold, want_width=False),
        ]
        assert hits_to_set(hits) == host

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("threshold", [5, 12, 25])
    def test_sweep_matches_bruteforce(self, seed, threshold):
        polys = random_rects(seed + 50, n=120)
        bufs = pack_edges(polys)
        for key in ("v", "h"):
            brute = hits_to_set([kernel_pairs_bruteforce(bufs[key], threshold, want_width=False)])
            sweep = hits_to_set([kernel_pairs_sweep(bufs[key], threshold, want_width=False)])
            assert brute == sweep

    @pytest.mark.parametrize("seed", range(3))
    def test_width_matches_host(self, seed):
        rng = random.Random(seed)
        polys = []
        for i in range(30):
            x = i * 100
            polys.append(
                Polygon.from_rect_coords(x, 0, x + rng.randint(2, 20), rng.randint(30, 90))
            )
        threshold = 12
        host = {(v.region, v.measured) for v in check_width(polys, 1, threshold)}
        bufs = pack_edges(polys)
        hits = [
            kernel_pairs_bruteforce(bufs["v"], threshold, want_width=True),
            kernel_pairs_bruteforce(bufs["h"], threshold, want_width=True),
        ]
        assert hits_to_set(hits) == host

    def test_width_requires_same_polygon(self):
        # Two narrow rects close together: interior-facing pairs exist only
        # within each polygon, not across.
        polys = [
            Polygon.from_rect_coords(0, 0, 5, 100),
            Polygon.from_rect_coords(8, 0, 13, 100),
        ]
        bufs = pack_edges(polys)
        hits = kernel_pairs_bruteforce(bufs["v"], 50, want_width=True)
        assert sorted(hits.measured.tolist()) == [5, 5]

    def test_chunking_does_not_change_results(self):
        polys = random_rects(9, n=80)
        bufs = pack_edges(polys)
        a = hits_to_set([kernel_pairs_bruteforce(bufs["v"], 15, want_width=False, chunk=7)])
        b = hits_to_set([kernel_pairs_bruteforce(bufs["v"], 15, want_width=False, chunk=4096)])
        assert a == b

    def test_empty_buffer(self):
        bufs = pack_edges([])
        assert len(kernel_pairs_bruteforce(bufs["v"], 10, want_width=False)) == 0
        assert len(kernel_pairs_sweep(bufs["v"], 10, want_width=False)) == 0


class TestSweepRanges:
    def test_ranges_cover_rule_window(self):
        polys = random_rects(3, n=40)
        buf = pack_edges(polys)["v"].sorted_by_fixed()
        begin, end = kernel_sweep_ranges(buf, 10)
        fixed = buf.fixed
        for i in range(len(buf)):
            for j in range(len(buf)):
                gap = fixed[j] - fixed[i]
                if 1 <= gap <= 9:
                    assert begin[i] <= j < end[i]
                if gap <= 0:
                    assert not (begin[i] <= j < end[i])


class TestAreaKernel:
    def test_matches_shoelace(self):
        polys = random_rects(4, n=30)
        polys.append(Polygon([(0, 500), (0, 530), (10, 530), (10, 510), (25, 510), (25, 500)]))
        buf = pack_vertices(polys)
        areas = kernel_area(buf)
        assert [int(a) for a in areas] == [p.area for p in polys]

    def test_empty(self):
        assert len(kernel_area(pack_vertices([]))) == 0


class TestEnclosureKernel:
    def test_margins(self):
        vias = np.asarray([[10, 10, 14, 14]], dtype=np.int64)
        metals = np.asarray([[5, 5, 19, 19], [9, 12, 15, 16]], dtype=np.int64)
        pair_via = np.asarray([0, 0], dtype=np.int64)
        pair_metal = np.asarray([0, 1], dtype=np.int64)
        margins = kernel_enclosure_margins(vias, metals, pair_via, pair_metal)
        # Second metal does not contain the via: its margin is negative.
        assert margins.tolist() == [5, -2]

    def test_reduce_best(self):
        pair_via = np.asarray([0, 0, 1], dtype=np.int64)
        margins = np.asarray([2, 5, -3], dtype=np.int64)
        best = reduce_enclosure_best(3, pair_via, margins)
        assert best.tolist() == [5, -1, -1]

    def test_empty_pairs(self):
        margins = kernel_enclosure_margins(
            np.zeros((2, 4), dtype=np.int64),
            np.zeros((0, 4), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert len(margins) == 0


class TestTriangularEnumeration:
    """The brute-force kernel's upper-triangular pair enumeration must be
    hit-for-hit identical to the reference full chunk×n product + mask."""

    @staticmethod
    def _reference_full_product(buf, threshold, *, want_width, chunk=1024):
        from repro.gpu.kernels import PairHits, _evaluate_pairs

        n = len(buf)
        if n < 2:
            return PairHits.empty()
        batches = []
        all_idx = np.arange(n, dtype=np.int64)
        for start in range(0, n, chunk):
            rows = all_idx[start : start + chunk]
            a = np.repeat(rows, n)
            b = np.tile(all_idx, len(rows))
            keep = buf.fixed[a] < buf.fixed[b]
            batches.append(
                _evaluate_pairs(buf, a[keep], b[keep], threshold, want_width=want_width)
            )
        return PairHits.concatenate(batches)

    @staticmethod
    def _canonical(hits):
        return sorted(
            zip(
                hits.xlo.tolist(), hits.ylo.tolist(),
                hits.xhi.tolist(), hits.yhi.tolist(),
                hits.measured.tolist(),
                hits.poly_a.tolist(), hits.poly_b.tolist(),
            )
        )

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("threshold", [5, 12, 25])
    def test_spacing_identical_to_full_product(self, seed, threshold):
        bufs = pack_edges(random_rects(seed, n=70))
        for buf in (bufs["v"], bufs["h"]):
            got = kernel_pairs_bruteforce(buf, threshold, want_width=False)
            want = self._reference_full_product(buf, threshold, want_width=False)
            assert self._canonical(got) == self._canonical(want)

    @pytest.mark.parametrize("seed", range(3))
    def test_width_identical_to_full_product(self, seed):
        bufs = pack_edges(random_rects(seed, n=50))
        for buf in (bufs["v"], bufs["h"]):
            got = kernel_pairs_bruteforce(buf, 40, want_width=True)
            want = self._reference_full_product(buf, 40, want_width=True)
            assert self._canonical(got) == self._canonical(want)

    def test_small_chunks_identical(self):
        buf = pack_edges(random_rects(11, n=40))["v"]
        want = self._reference_full_product(buf, 15, want_width=False)
        for chunk in (1, 3, 7, 64):
            got = kernel_pairs_bruteforce(buf, 15, want_width=False, chunk=chunk)
            assert self._canonical(got) == self._canonical(want)

    def test_materializes_half_the_pairs(self):
        # n=40 edges: the triangular enumeration builds n(n-1)/2 = 780 pairs
        # per full pass instead of the reference's chunk-bounded n*n = 1600.
        buf = pack_edges(random_rects(12, n=10))["v"]
        n = len(buf)
        calls = []
        from repro.gpu import kernels as K

        original = K._evaluate_pairs

        def spy(buf_, idx_a, idx_b, threshold, *, want_width):
            calls.append(len(idx_a))
            return original(buf_, idx_a, idx_b, threshold, want_width=want_width)

        K._evaluate_pairs = spy
        try:
            kernel_pairs_bruteforce(buf, 15, want_width=False, chunk=4096)
        finally:
            K._evaluate_pairs = original
        assert sum(calls) == n * (n - 1) // 2
