import pytest

from repro.core import Engine, EngineOptions
from repro.core.rules import layer, polygons
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout
from repro.util.profile import PHASE_EDGE_CHECKS


def simple_layout() -> Layout:
    """Two narrow wires 5 apart, reused twice through a child cell."""
    layout = Layout("simple")
    pair = layout.new_cell("pair")
    pair.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
    pair.add_polygon(1, Polygon.from_rect_coords(15, 0, 25, 100))
    top = layout.new_cell("top")
    top.add_reference(CellReference("pair", Transform()))
    top.add_reference(CellReference("pair", Transform(dx=1000)))
    layout.set_top("top")
    return layout


class TestEngineBasics:
    def test_requires_rules(self):
        with pytest.raises(ValueError):
            Engine().check(simple_layout())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Engine(mode="quantum")

    def test_add_rules_chainable_and_validated(self):
        engine = Engine().add_rules([layer(1).width().greater_than(5)])
        assert len(engine.rules) == 1
        from repro.errors import RuleError

        with pytest.raises(RuleError):
            engine.add_rules([layer(1).width().greater_than(5)])  # duplicate name

    def test_clear_rules(self):
        engine = Engine().add_rules([layer(1).width().greater_than(5)])
        engine.clear_rules()
        assert engine.rules == []


class TestSequentialResults:
    def test_spacing_found_in_each_instance(self):
        engine = Engine(mode="sequential")
        report = engine.check(simple_layout(), rules=[layer(1).spacing().greater_than(8)])
        result = report.results[0]
        assert result.num_violations == 2
        regions = sorted(v.region.xlo for v in result.violations)
        assert regions == [10, 1010]

    def test_spacing_satisfied(self):
        engine = Engine(mode="sequential")
        report = engine.check(simple_layout(), rules=[layer(1).spacing().greater_than(5)])
        assert report.passed

    def test_width_memoised_across_instances(self):
        engine = Engine(mode="sequential")
        report = engine.check(simple_layout(), rules=[layer(1).width().greater_than(12)])
        result = report.results[0]
        assert result.num_violations == 4  # 2 wires x 2 instances
        assert result.stats["checks_run"] == 1
        assert result.stats["checks_reused"] == 1

    def test_area_rule(self):
        engine = Engine(mode="sequential")
        report = engine.check(simple_layout(), rules=[layer(1).area().greater_than(1001)])
        assert report.results[0].num_violations == 4

    def test_rectilinear_and_ensures(self):
        engine = Engine(mode="sequential")
        report = engine.check(
            simple_layout(),
            rules=[
                polygons().is_rectilinear(),
                layer(1).polygons().ensures(lambda p: p.area > 0),
            ],
        )
        assert report.passed

    def test_enclosure_cross_cell(self):
        layout = Layout("enc")
        metal = layout.new_cell("metal")
        metal.add_polygon(1, Polygon.from_rect_coords(0, 0, 30, 30))
        top = layout.new_cell("top")
        top.add_reference(CellReference("metal", Transform()))
        top.add_polygon(2, Polygon.from_rect_coords(10, 10, 14, 14))  # via at top
        layout.set_top("top")
        engine = Engine(mode="sequential")
        ok = engine.check(layout, rules=[layer(2).enclosure(layer(1)).greater_than(10)])
        assert ok.passed
        bad = engine.check(layout, rules=[layer(2).enclosure(layer(1)).greater_than(11)])
        assert bad.results[0].num_violations == 1
        assert bad.results[0].violations[0].measured == 10

    def test_profile_phases_recorded(self):
        engine = Engine(mode="sequential")
        engine.add_rules([layer(1).spacing().greater_than(8)])
        engine.check(simple_layout())
        profile = engine.last_profiles["L1.S.8"]
        assert profile.total > 0
        assert profile.seconds(PHASE_EDGE_CHECKS) > 0

    def test_rows_disabled_same_results(self):
        rule = layer(1).spacing().greater_than(8)
        with_rows = Engine(mode="sequential").check(simple_layout(), rules=[rule])
        without = Engine(
            options=EngineOptions(mode="sequential", use_rows=False)
        ).check(simple_layout(), rules=[rule])
        assert (
            with_rows.results[0].violation_set() == without.results[0].violation_set()
        )


class TestMagnifiedInstances:
    def test_magnified_spacing_rechecked(self):
        layout = Layout("mag")
        pair = layout.new_cell("pair")
        pair.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 100))
        pair.add_polygon(1, Polygon.from_rect_coords(16, 0, 26, 100))  # gap 6
        top = layout.new_cell("top")
        top.add_reference(CellReference("pair", Transform()))
        top.add_reference(CellReference("pair", Transform(dx=5000, magnification=2)))
        layout.set_top("top")
        engine = Engine(mode="sequential")
        # Rule 8: unit instance violates (6 < 8); magnified gap 12 passes.
        report = engine.check(layout, rules=[layer(1).spacing().greater_than(8)])
        assert report.results[0].num_violations == 1
        # Rule 13: unit gap 6 and magnified gap 12 both violate.
        report = engine.check(layout, rules=[layer(1).spacing().greater_than(13)])
        assert report.results[0].num_violations == 2


class TestReport:
    def test_summary_and_csv(self):
        engine = Engine(mode="sequential")
        report = engine.check(simple_layout(), rules=[layer(1).spacing().greater_than(8)])
        assert "simple" in report.summary()
        csv = report.to_csv()
        assert csv.splitlines()[0].startswith("rule,kind")
        # The two markers are translation-identical, so the default CSV
        # collapses them to one exemplar row with instances=2 ...
        assert len(csv.splitlines()) == 1 + 1
        assert csv.splitlines()[1].endswith(",2")
        # ... and --expand-instances emits each as its own row.
        expanded = report.to_csv(expand_instances=True)
        assert len(expanded.splitlines()) == 1 + 2
        assert all(line.endswith(",1") for line in expanded.splitlines()[1:])

    def test_result_lookup(self):
        engine = Engine(mode="sequential")
        rule = layer(1).spacing().greater_than(8).named("SP")
        report = engine.check(simple_layout(), rules=[rule])
        assert report.result("SP").rule is rule
        with pytest.raises(KeyError):
            report.result("missing")
