"""Property-based tests (hypothesis) on the core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.geometry import Interval, Point, Polygon, Rect, Transform, coalesce
from repro.geometry.booleans import union_rects
from repro.spatial import (
    IntervalTree,
    brute_force_pairs,
    iter_overlapping_pairs,
    merge_intervals_pigeonhole,
)
from repro.partition import partition_rects

coords = st.integers(min_value=-1000, max_value=1000)
sizes = st.integers(min_value=0, max_value=80)
positive_sizes = st.integers(min_value=1, max_value=80)


@st.composite
def rects(draw):
    x = draw(coords)
    y = draw(coords)
    return Rect(x, y, x + draw(sizes), y + draw(sizes))


@st.composite
def solid_rects(draw):
    x = draw(coords)
    y = draw(coords)
    return Rect(x, y, x + draw(positive_sizes), y + draw(positive_sizes))


@st.composite
def intervals(draw):
    lo = draw(coords)
    return Interval(lo, lo + draw(sizes))


@st.composite
def transforms(draw):
    return Transform(
        dx=draw(coords),
        dy=draw(coords),
        rotation=draw(st.sampled_from([0, 90, 180, 270])),
        mirror_x=draw(st.booleans()),
    )


class TestRectProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), st.integers(min_value=0, max_value=50))
    def test_inflate_monotone(self, r, margin):
        if not r.is_empty:
            assert r.inflated(margin).contains_rect(r)

    @given(rects(), rects())
    def test_gap_zero_iff_overlap(self, a, b):
        if not a.is_empty and not b.is_empty:
            assert (a.gap_to(b) == 0) == a.overlaps(b)


class TestIntervalMergeProperties:
    @given(st.lists(intervals(), max_size=60))
    def test_pigeonhole_equals_sorted(self, ivs):
        assert merge_intervals_pigeonhole(ivs) == coalesce(ivs)

    @given(st.lists(intervals(), min_size=1, max_size=60))
    def test_cover_and_disjointness(self, ivs):
        merged = merge_intervals_pigeonhole(ivs)
        for a, b in zip(merged, merged[1:]):
            assert a.hi < b.lo
        for iv in ivs:
            assert any(m.lo <= iv.lo and iv.hi <= m.hi for m in merged)

    @given(st.lists(intervals(), min_size=1, max_size=60))
    def test_total_length_preserved(self, ivs):
        merged = merge_intervals_pigeonhole(ivs)
        covered = set()
        for iv in ivs:
            covered.update(range(iv.lo, iv.hi + 1))
        merged_points = set()
        for m in merged:
            merged_points.update(range(m.lo, m.hi + 1))
        assert covered == merged_points


class TestSweeplineProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(rects(), max_size=40))
    def test_matches_brute_force(self, population):
        assert sorted(iter_overlapping_pairs(population)) == sorted(
            brute_force_pairs(population)
        )


class TestIntervalTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(intervals(), min_size=1, max_size=40),
        st.lists(intervals(), min_size=1, max_size=10),
    )
    def test_queries_match_linear_scan(self, stored, queries):
        tree = IntervalTree([iv.lo for iv in stored])
        for index, iv in enumerate(stored):
            tree.insert(iv.lo, iv.hi, index)
        for q in queries:
            expected = sorted(
                i for i, iv in enumerate(stored) if iv.lo <= q.hi and q.lo <= iv.hi
            )
            assert sorted(tree.query(q.lo, q.hi)) == expected


class TestPartitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(solid_rects(), min_size=1, max_size=50),
           st.integers(min_value=1, max_value=40))
    def test_rows_partition_and_separate(self, population, rule):
        part = partition_rects(population, rule)
        members = sorted(m for row in part.rows for m in row.members)
        assert members == list(range(len(population)))
        owner = part.row_of()
        for i, a in enumerate(population):
            for j in range(i + 1, len(population)):
                if owner[i] != owner[j]:
                    gap = max(population[j].ylo - a.yhi, a.ylo - population[j].yhi)
                    assert gap >= rule


class TestUnionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(solid_rects(), max_size=20))
    def test_area_bounds(self, population):
        u = union_rects(population)
        total = sum(r.area for r in population)
        biggest = max((r.area for r in population), default=0)
        assert biggest <= u.area <= total

    @settings(max_examples=30, deadline=None)
    @given(st.lists(solid_rects(), min_size=1, max_size=12))
    def test_sample_points_agree(self, population):
        u = union_rects(population)
        for r in population:
            cx, cy = r.center
            assert u.contains_point(cx, cy)


class TestTransformProperties:
    @given(transforms(), st.lists(st.tuples(coords, coords), min_size=2, max_size=6))
    def test_rigid_transform_preserves_distances(self, t, points):
        ps = [Point(x, y) for x, y in points]
        moved = [t.apply(p) for p in ps]
        for a, b, ma, mb in zip(ps, ps[1:], moved, moved[1:]):
            assert a.euclidean_distance_squared(b) == ma.euclidean_distance_squared(mb)

    @given(transforms(), transforms(), st.tuples(coords, coords))
    def test_compose_associative_on_points(self, outer, inner, xy):
        p = Point(*xy)
        assert outer.compose(inner).apply(p) == outer.apply(inner.apply(p))

    @given(transforms())
    def test_invert_roundtrip(self, t):
        from repro.hierarchy import invert

        inverse = invert(t)
        for p in (Point(0, 0), Point(17, -3)):
            assert inverse.apply(t.apply(p)) == p


class TestPolygonProperties:
    @given(
        st.integers(min_value=-500, max_value=500),
        st.integers(min_value=-500, max_value=500),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
        transforms(),
    )
    def test_rect_polygon_area_invariant(self, x, y, w, h, t):
        poly = Polygon.from_rect_coords(x, y, x + w, y + h)
        assert poly.transformed(t).area == poly.area

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
    )
    def test_rect_area_formula(self, w, h):
        assert Polygon.from_rect_coords(0, 0, w, h).area == w * h
