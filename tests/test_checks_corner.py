import math
import random

import pytest

from repro.checks.base import ViolationKind
from repro.checks.corner import (
    check_corner_spacing,
    convex_corners,
    corner_pair_violations,
)
from repro.core import Engine
from repro.core.rules import layer
from repro.geometry import Polygon, Rect, Transform
from repro.layout import CellReference, Layout


def rect(x1, y1, x2, y2):
    return Polygon.from_rect_coords(x1, y1, x2, y2)


class TestConvexCorners:
    def test_rectangle_has_four(self):
        corners = convex_corners(rect(0, 0, 10, 10))
        assert len(corners) == 4
        quadrants = {(c.x, c.y): (c.qx, c.qy) for c in corners}
        assert quadrants[(0, 0)] == (-1, -1)
        assert quadrants[(10, 10)] == (1, 1)
        assert quadrants[(0, 10)] == (-1, 1)
        assert quadrants[(10, 0)] == (1, -1)

    def test_l_shape_has_five_convex(self):
        l_shape = Polygon([(0, 0), (0, 30), (10, 30), (10, 10), (25, 10), (25, 0)])
        corners = convex_corners(l_shape)
        assert len(corners) == 5  # one reflex corner excluded
        assert (10, 10) not in {(c.x, c.y) for c in corners}


class TestPairViolations:
    def test_diagonal_close_pair(self):
        a = convex_corners(rect(0, 0, 10, 10))
        b = convex_corners(rect(13, 13, 23, 23))
        violations = corner_pair_violations(a, b, 1, 10)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.CORNER
        assert v.measured == math.isqrt(9 + 9)
        assert v.region == Rect(10, 10, 13, 13)

    def test_far_pair_passes(self):
        a = convex_corners(rect(0, 0, 10, 10))
        b = convex_corners(rect(30, 30, 40, 40))
        assert corner_pair_violations(a, b, 1, 10) == []

    def test_exact_distance_passes(self):
        # Corners (10,10) and (13,14): distance 5 exactly.
        a = convex_corners(rect(0, 0, 10, 10))
        b = convex_corners(rect(13, 14, 23, 24))
        assert corner_pair_violations(a, b, 1, 5) == []
        assert len(corner_pair_violations(a, b, 1, 6)) == 1

    def test_axis_aligned_not_corner_rule(self):
        # Side-by-side rects: edge spacing's job, not the corner rule's.
        a = convex_corners(rect(0, 0, 10, 10))
        b = convex_corners(rect(13, 0, 23, 10))
        assert corner_pair_violations(a, b, 1, 50) == []

    def test_non_facing_corners_ignored(self):
        # Diagonal overlap region: corners exist within threshold but their
        # exterior quadrants point away from each other.
        a = convex_corners(rect(0, 0, 10, 10))
        b = convex_corners(rect(8, 8, 18, 18))  # overlapping shapes
        assert corner_pair_violations(a, b, 1, 6) == []


class TestFlatCheck:
    def test_mixed_population(self):
        polys = [rect(0, 0, 10, 10), rect(14, 14, 24, 24), rect(100, 100, 110, 110)]
        violations = check_corner_spacing(polys, 1, 10)
        assert len(violations) == 1

    def test_dedup_not_needed_for_distinct_regions(self):
        polys = [rect(0, 0, 10, 10), rect(13, 13, 23, 23), rect(-13, -13, -3, -3)]
        violations = check_corner_spacing(polys, 1, 10)
        assert len(violations) == 2


class TestEngineIntegration:
    def build(self):
        layout = Layout("corner")
        cellule = layout.new_cell("cellule")
        cellule.add_polygon(1, rect(0, 0, 10, 10))
        cellule.add_polygon(1, rect(14, 14, 24, 24))  # diagonal gap ~5.6
        top = layout.new_cell("top")
        top.add_reference(CellReference("cellule", Transform()))
        top.add_reference(CellReference("cellule", Transform(dx=500, rotation=90)))
        top.add_reference(CellReference("cellule", Transform(dx=1000, mirror_x=True)))
        layout.set_top("top")
        return layout

    def test_rule_dsl(self):
        rule = layer(1).corner_spacing().greater_than(8)
        assert rule.name == "L1.CS.8"
        assert rule.is_inter

    @pytest.mark.parametrize("mode", ["sequential", "parallel"])
    def test_found_in_every_instance(self, mode):
        layout = self.build()
        rule = layer(1).corner_spacing().greater_than(8)
        report = Engine(mode=mode).check(layout, rules=[rule])
        assert report.results[0].num_violations == 3  # one per instance

    def test_modes_agree(self):
        layout = self.build()
        rule = layer(1).corner_spacing().greater_than(8)
        rs = Engine(mode="sequential").check(layout, rules=[rule])
        rp = Engine(mode="parallel").check(layout, rules=[rule])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()

    @pytest.mark.parametrize("seed", range(3))
    def test_modes_agree_random(self, seed):
        rng = random.Random(seed)
        layout = Layout("rand")
        top = layout.new_cell("top")
        for _ in range(60):
            x, y = rng.randint(0, 600), rng.randint(0, 600)
            top.add_polygon(
                1, rect(x, y, x + rng.randint(3, 40), y + rng.randint(3, 40))
            )
        layout.set_top("top")
        rule = layer(1).corner_spacing().greater_than(12)
        rs = Engine(mode="sequential").check(layout, rules=[rule])
        rp = Engine(mode="parallel").check(layout, rules=[rule])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()

    def test_kernel_matches_flat_check(self):
        rng = random.Random(9)
        polys = []
        for _ in range(80):
            x, y = rng.randint(0, 800), rng.randint(0, 800)
            polys.append(rect(x, y, x + rng.randint(3, 50), y + rng.randint(3, 50)))
        host = {(v.region, v.measured) for v in check_corner_spacing(polys, 1, 15)}
        from repro.gpu.kernels import kernel_corner_pairs, pack_corners

        hits = kernel_corner_pairs(pack_corners(polys), 15)
        gpu = set()
        for k in range(len(hits)):
            ax, ay, bx, by = (int(hits.ax[k]), int(hits.ay[k]),
                              int(hits.bx[k]), int(hits.by[k]))
            gpu.add(
                (Rect(min(ax, bx), min(ay, by), max(ax, bx), max(ay, by)),
                 int(hits.measured[k]))
            )
        assert gpu == host
