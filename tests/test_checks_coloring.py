from repro.checks.base import ViolationKind
from repro.checks.coloring import check_two_colorable, conflict_edges, two_color
from repro.core import Engine
from repro.core.rules import layer
from repro.geometry import Polygon, Transform
from repro.layout import CellReference, Layout


def rect(x1, y1, x2, y2):
    return Polygon.from_rect_coords(x1, y1, x2, y2)


def chain(n, gap=5, width=10):
    """n wires in a row, each ``gap`` from the next (a path graph)."""
    polys = []
    x = 0
    for _ in range(n):
        polys.append(rect(x, 0, x + width, 100))
        x += width + gap
    return polys


class TestConflictGraph:
    def test_chain_edges(self):
        polys = chain(4, gap=5)
        edges = conflict_edges(polys, 8)
        assert sorted((i, j) for i, j, _, _ in edges) == [(0, 1), (1, 2), (2, 3)]

    def test_distant_shapes_no_edges(self):
        polys = chain(3, gap=50)
        assert conflict_edges(polys, 8) == []

    def test_edge_carries_min_distance(self):
        polys = [rect(0, 0, 10, 100), rect(15, 0, 25, 100)]
        edges = conflict_edges(polys, 8)
        assert edges[0][3] == 5


class TestTwoColoring:
    def test_chain_is_bipartite(self):
        polys = chain(6, gap=5)
        colors, conflicts = two_color(polys, 8)
        assert conflicts == []
        assert colors == [0, 1, 0, 1, 0, 1]

    def test_triangle_is_not(self):
        # Three wires mutually within the color spacing: vertical pair plus
        # a horizontal wire close to both.
        polys = [
            rect(0, 0, 10, 100),
            rect(15, 0, 25, 100),
            rect(0, 105, 25, 115),
        ]
        _, conflicts = two_color(polys, 8)
        assert len(conflicts) == 1  # one odd-cycle-closing edge

    def test_isolated_shapes_colored(self):
        polys = [rect(0, 0, 10, 10), rect(1000, 0, 1010, 10)]
        colors, conflicts = two_color(polys, 8)
        assert conflicts == [] and colors == [0, 0]

    def test_empty(self):
        colors, conflicts = two_color([], 8)
        assert colors == [] and conflicts == []


class TestCheck:
    def test_violation_kind_and_values(self):
        polys = [
            rect(0, 0, 10, 100),
            rect(15, 0, 25, 100),
            rect(0, 105, 25, 115),
        ]
        violations = check_two_colorable(polys, 7, 8)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.COLOR
        assert v.required == 8 and v.measured == 5

    def test_bipartite_layer_passes(self):
        assert check_two_colorable(chain(10, gap=5), 7, 8) == []


class TestEngineIntegration:
    def build(self, odd: bool) -> Layout:
        layout = Layout("mp")
        cellule = layout.new_cell("cellule")
        cellule.add_polygon(1, rect(0, 0, 10, 100))
        cellule.add_polygon(1, rect(15, 0, 25, 100))
        if odd:
            cellule.add_polygon(1, rect(0, 105, 25, 115))
        top = layout.new_cell("top")
        top.add_reference(CellReference("cellule", Transform()))
        top.add_reference(CellReference("cellule", Transform(dx=2000)))
        layout.set_top("top")
        return layout

    def test_dsl_and_detection(self):
        rule = layer(1).same_mask_spacing().greater_than(8)
        report = Engine(mode="sequential").check(self.build(odd=True), rules=[rule])
        assert report.results[0].num_violations == 2  # one per instance

    def test_bipartite_design_passes(self):
        rule = layer(1).same_mask_spacing().greater_than(8)
        report = Engine(mode="sequential").check(self.build(odd=False), rules=[rule])
        assert report.passed

    def test_modes_agree(self):
        rule = layer(1).same_mask_spacing().greater_than(8)
        layout = self.build(odd=True)
        rs = Engine(mode="sequential").check(layout, rules=[rule])
        rp = Engine(mode="parallel").check(layout, rules=[rule])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()

    def test_cross_instance_conflict_chain(self):
        # Two instances placed so close their conflict graphs join into one
        # odd cycle across the instance boundary.
        layout = Layout("cross")
        cellule = layout.new_cell("cellule")
        cellule.add_polygon(1, rect(0, 0, 10, 100))
        top = layout.new_cell("top")
        top.add_reference(CellReference("cellule", Transform()))
        top.add_reference(CellReference("cellule", Transform(dx=15)))
        top.add_polygon(1, rect(0, 105, 25, 115))  # closes the triangle
        layout.set_top("top")
        rule = layer(1).same_mask_spacing().greater_than(8)
        report = Engine(mode="sequential").check(layout, rules=[rule])
        assert report.results[0].num_violations == 1

    def test_designs_m3_is_decomposable(self, uart_layout):
        from repro.workloads import asap7

        # Clean designs keep >= spacing everywhere, so the conflict graph is
        # empty and trivially 2-colorable at the spacing value.
        rule = layer(asap7.M3).same_mask_spacing().greater_than(
            asap7.SPACING_RULES[asap7.M3]
        )
        assert Engine(mode="sequential").check(uart_layout, rules=[rule]).passed
