from repro.checks.base import ViolationKind
from repro.checks.overlap import check_min_overlap, overlap_area
from repro.core import Engine
from repro.core.incremental import check_window
from repro.core.rules import layer
from repro.geometry import Polygon, Rect, Transform
from repro.layout import CellReference, Layout


def rect(x1, y1, x2, y2):
    return Polygon.from_rect_coords(x1, y1, x2, y2)


class TestOverlapArea:
    def test_full_containment(self):
        via = rect(10, 10, 14, 14)
        assert overlap_area(via, [rect(0, 0, 30, 30)]) == 16

    def test_partial(self):
        via = rect(0, 0, 10, 10)
        assert overlap_area(via, [rect(5, 0, 20, 10)]) == 50

    def test_two_bases_counted_once(self):
        via = rect(0, 0, 10, 10)
        # Two overlapping base shapes covering the same half.
        assert overlap_area(via, [rect(5, 0, 20, 10), rect(5, 0, 30, 10)]) == 50

    def test_disjoint_bases_accumulate(self):
        via = rect(0, 0, 10, 10)
        assert overlap_area(via, [rect(0, 0, 3, 10), rect(7, 0, 10, 10)]) == 60

    def test_no_base(self):
        assert overlap_area(rect(0, 0, 4, 4), []) == 0


class TestCheckMinOverlap:
    def test_flags_insufficient_overlap(self):
        vias = [rect(0, 0, 10, 10), rect(100, 0, 110, 10)]
        bases = [rect(8, 0, 40, 10), rect(95, 0, 140, 10)]
        violations = check_min_overlap(vias, bases, 2, 1, 50)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind is ViolationKind.OVERLAP
        assert v.measured == 20 and v.required == 50
        assert v.region == Rect(0, 0, 10, 10)

    def test_exact_overlap_passes(self):
        vias = [rect(0, 0, 10, 10)]
        bases = [rect(5, 0, 20, 10)]
        assert check_min_overlap(vias, bases, 2, 1, 50) == []

    def test_no_base_measured_zero(self):
        violations = check_min_overlap([rect(0, 0, 4, 4)], [], 2, 1, 10)
        assert violations[0].measured == 0


class TestEngineIntegration:
    def build(self, shift: int) -> Layout:
        layout = Layout("ov")
        cellule = layout.new_cell("cellule")
        cellule.add_polygon(2, rect(0, 0, 10, 10))  # the via
        cellule.add_polygon(1, rect(shift, 0, shift + 40, 10))  # the metal
        top = layout.new_cell("top")
        top.add_reference(CellReference("cellule", Transform()))
        top.add_reference(CellReference("cellule", Transform(dx=1000, rotation=180)))
        layout.set_top("top")
        return layout

    def test_rule_dsl(self):
        rule = layer(2).overlap(layer(1)).greater_than(50)
        assert rule.name == "L2.on.L1.OV.50"
        assert rule.is_inter_layer

    def test_violations_per_instance(self):
        layout = self.build(shift=5)  # overlap area = 50
        rule = layer(2).overlap(layer(1)).greater_than(60)
        report = Engine(mode="sequential").check(layout, rules=[rule])
        assert report.results[0].num_violations == 2
        assert all(v.measured == 50 for v in report.results[0].violations)

    def test_satisfied(self):
        layout = self.build(shift=0)  # fully covered: overlap 100
        rule = layer(2).overlap(layer(1)).greater_than(100)
        assert Engine(mode="sequential").check(layout, rules=[rule]).passed

    def test_parallel_mode_delegates(self):
        layout = self.build(shift=5)
        rule = layer(2).overlap(layer(1)).greater_than(60)
        rs = Engine(mode="sequential").check(layout, rules=[rule])
        rp = Engine(mode="parallel").check(layout, rules=[rule])
        assert rs.results[0].violation_set() == rp.results[0].violation_set()

    def test_cross_cell_base_counts(self):
        # Via in one cell, metal provided by a sibling: pending resolution
        # must find it at the parent level.
        layout = Layout("sib")
        via_cell = layout.new_cell("via_cell")
        via_cell.add_polygon(2, rect(0, 0, 10, 10))
        metal_cell = layout.new_cell("metal_cell")
        metal_cell.add_polygon(1, rect(0, 0, 10, 10))
        top = layout.new_cell("top")
        top.add_reference(CellReference("via_cell", Transform()))
        top.add_reference(CellReference("metal_cell", Transform()))
        layout.set_top("top")
        rule = layer(2).overlap(layer(1)).greater_than(100)
        assert Engine(mode="sequential").check(layout, rules=[rule]).passed

    def test_windowed_check(self):
        layout = self.build(shift=5)
        rule = layer(2).overlap(layer(1)).greater_than(60)
        report = check_window(layout, Rect(-50, -50, 50, 50), rules=[rule])
        assert report.total_violations == 1  # only the instance in the window
