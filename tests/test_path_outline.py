import pytest

from repro.errors import GdsiiError
from repro.gdsii import GdsPath, read_bytes, write_bytes, GdsLibrary, GdsStructure
from repro.geometry import Point, Rect
from repro.layout import layout_from_gdsii
from repro.layout.builder import path_outline


class TestStraightPaths:
    def test_horizontal(self):
        poly = path_outline([(0, 0), (30, 0)], 4)
        assert poly.mbr == Rect(0, -2, 30, 2)
        assert poly.area == 30 * 4

    def test_vertical_reversed(self):
        poly = path_outline([(5, 40), (5, 0)], 6)
        assert poly.mbr == Rect(2, 0, 8, 40)

    def test_duplicate_points_tolerated(self):
        poly = path_outline([(0, 0), (0, 0), (30, 0)], 4)
        assert poly.area == 120

    def test_collinear_waypoints_merged(self):
        poly = path_outline([(0, 0), (10, 0), (30, 0)], 4)
        assert poly.area == 120


class TestBentPaths:
    def test_l_path_area(self):
        # East 30 then north 20, width 4, square miter: the horizontal strip
        # reaches the outer corner at x=32, the vertical arm adds (20-2)*4.
        poly = path_outline([(0, 0), (30, 0), (30, 20)], 4)
        assert poly.is_rectilinear
        assert poly.area == 32 * 4 + (20 - 2) * 4
        assert poly.mbr == Rect(0, -2, 32, 20)

    def test_l_path_contains_both_arms(self):
        poly = path_outline([(0, 0), (30, 0), (30, 20)], 4)
        assert poly.contains_point(Point(15, 0))
        assert poly.contains_point(Point(30, 10))
        assert not poly.contains_point(Point(15, 10))

    def test_z_path(self):
        poly = path_outline([(0, 0), (20, 0), (20, 20), (40, 20)], 4)
        assert poly.is_rectilinear
        for probe in (Point(10, 0), Point(20, 10), Point(30, 20)):
            assert poly.contains_point(probe)

    def test_u_path(self):
        poly = path_outline([(0, 20), (0, 0), (30, 0), (30, 20)], 6)
        for probe in (Point(0, 10), Point(15, 0), Point(30, 10)):
            assert poly.contains_point(probe)

    def test_all_four_turn_orientations(self):
        for waypoints in (
            [(0, 0), (20, 0), (20, 20)],
            [(0, 0), (20, 0), (20, -20)],
            [(0, 0), (-20, 0), (-20, 20)],
            [(0, 0), (0, 20), (20, 20)],
        ):
            poly = path_outline(waypoints, 4)
            assert poly.is_rectilinear and poly.area > 0


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(0, 0), (10, 0)], 0)

    def test_odd_width_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(0, 0), (10, 0)], 5)

    def test_diagonal_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(0, 0), (10, 10)], 4)

    def test_doubling_back_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(0, 0), (20, 0), (10, 0), (10, 20)], 4)

    def test_too_short_segment_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(0, 0), (20, 0), (20, 2), (40, 2)], 4)

    def test_single_point_rejected(self):
        with pytest.raises(GdsiiError):
            path_outline([(5, 5)], 4)


class TestGdsiiIntegration:
    def test_multi_segment_path_through_stream(self):
        lib = GdsLibrary(
            structures=[
                GdsStructure(
                    "top",
                    [GdsPath(1, 0, width=4, xy=[(0, 0), (20, 0), (20, 20)])],
                )
            ]
        )
        layout = layout_from_gdsii(read_bytes(write_bytes(lib)))
        polys = layout.cell("top").polygons(1)
        assert len(polys) == 1
        assert polys[0].area == path_outline([(0, 0), (20, 0), (20, 20)], 4).area
