"""Layout diffing: dirty layers, dirty rects, and per-rule regions."""

import pytest

from repro.core.diff import FULL_RECHECK, diff_layouts
from repro.core.plan import interaction_distance
from repro.core.rules import layer, polygons
from repro.geometry import Polygon, Rect, Transform
from repro.layout import Layout
from repro.layout.cell import CellReference, Repetition
from repro.spatial.regions import RegionSet
from repro.workloads import build_design


def small_layout():
    layout = Layout("diffme")
    child = layout.new_cell("child")
    child.add_polygon(1, Polygon.from_rect_coords(0, 0, 40, 10))
    top = layout.new_cell("top")
    top.add_polygon(1, Polygon.from_rect_coords(0, 50, 100, 60))
    top.add_polygon(2, Polygon.from_rect_coords(0, 80, 100, 90))
    top.add_reference(CellReference("child", Transform(dx=200, dy=0)))
    top.add_reference(CellReference("child", Transform(dx=400, dy=0)))
    layout.set_top("top")
    return layout


class TestDiffLayouts:
    def test_identical_builds_are_clean(self):
        diff = diff_layouts(build_design("uart"), build_design("uart"))
        assert diff.is_clean
        assert diff.old_digests == diff.new_digests

    def test_small_identical_clean(self):
        assert diff_layouts(small_layout(), small_layout()).is_clean

    def test_added_top_polygon(self):
        old, new = small_layout(), small_layout()
        new.top_cell().add_polygon(1, Polygon.from_rect_coords(10, 100, 30, 120))
        diff = diff_layouts(old, new)
        assert diff.dirty_layers() == [1]
        assert diff.dirty[1].rects == (Rect(10, 100, 30, 120),)

    def test_removed_top_polygon(self):
        old, new = small_layout(), small_layout()
        removed = new.top_cell().polygons(2).pop()
        diff = diff_layouts(old, new)
        assert diff.dirty_layers() == [2]
        assert diff.dirty[2].overlaps(removed.mbr)

    def test_child_edit_dirties_every_instance(self):
        old, new = small_layout(), small_layout()
        new.cells["child"].add_polygon(1, Polygon.from_rect_coords(0, 20, 10, 30))
        diff = diff_layouts(old, new)
        assert diff.dirty_layers() == [1]
        # Local dirt at (0,20,10,30) appears under both placements.
        assert diff.dirty[1].overlaps(Rect(200, 20, 210, 30))
        assert diff.dirty[1].overlaps(Rect(400, 20, 410, 30))
        # ...and nowhere else: the untouched top wire stays clean.
        assert not diff.dirty[1].overlaps(Rect(0, 50, 100, 60))

    def test_moved_instance_dirties_both_placements(self):
        old, new = small_layout(), small_layout()
        cell = new.cells["top"]
        moved = CellReference("child", Transform(dx=600, dy=0))
        cell.references[:] = [cell.references[0], moved]
        diff = diff_layouts(old, new)
        assert diff.dirty_layers() == [1]
        assert diff.dirty[1].overlaps(Rect(400, 0, 440, 10))  # old placement
        assert diff.dirty[1].overlaps(Rect(600, 0, 640, 10))  # new placement
        assert not diff.dirty[1].overlaps(Rect(200, 0, 240, 10))  # untouched

    def test_added_aref_dirties_grid_mbr(self):
        old, new = small_layout(), small_layout()
        new.cells["top"].add_reference(
            CellReference(
                "child",
                Transform(dx=0, dy=200),
                repetition=Repetition(
                    columns=3, rows=1, column_step=(100, 0), row_step=(0, 0)
                ),
            )
        )
        diff = diff_layouts(old, new)
        assert diff.dirty[1].overlaps(Rect(0, 200, 240, 210))

    def test_different_top_cells_degrade_to_full(self):
        old, new = small_layout(), small_layout()
        other = new.new_cell("other_top")
        other.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
        new.set_top("other_top")
        diff = diff_layouts(old, new)
        assert diff.full
        spacing = layer(1).spacing().greater_than(5)
        assert diff.regions_for(spacing) is FULL_RECHECK


class TestRegionsForRule:
    def edited(self):
        old, new = small_layout(), small_layout()
        new.top_cell().add_polygon(1, Polygon.from_rect_coords(10, 100, 30, 120))
        return diff_layouts(old, new)

    def test_clean_layer_rule_reuses_cached(self):
        diff = self.edited()
        assert diff.regions_for(layer(2).width().greater_than(5)) is None

    def test_spacing_halo_is_rule_value(self):
        diff = self.edited()
        regions = diff.regions_for(layer(1).spacing().greater_than(7))
        assert isinstance(regions, RegionSet)
        assert regions.rects == (Rect(3, 93, 37, 127),)

    def test_width_halo_is_zero(self):
        diff = self.edited()
        regions = diff.regions_for(layer(1).width().greater_than(7))
        assert regions.rects == (Rect(10, 100, 30, 120),)

    def test_coloring_rule_full_recheck(self):
        diff = self.edited()
        rule = layer(1).same_mask_spacing().greater_than(5)
        assert diff.regions_for(rule) is FULL_RECHECK

    def test_all_layer_rule_sees_every_dirty_layer(self):
        diff = self.edited()
        rule = polygons().is_rectilinear()
        regions = diff.regions_for(rule)
        assert regions.rects == (Rect(10, 100, 30, 120),)

    def test_enclosure_involves_both_layers(self):
        old, new = small_layout(), small_layout()
        new.top_cell().add_polygon(2, Polygon.from_rect_coords(10, 100, 30, 120))
        diff = diff_layouts(old, new)
        rule = layer(1).enclosure(layer(2)).greater_than(3)
        regions = diff.regions_for(rule)
        assert regions is not None and regions is not FULL_RECHECK
        assert regions.rects == (Rect(7, 97, 33, 123),)
        # Rule on two clean layers stays cached.
        assert diff.regions_for(layer(3).enclosure(layer(4)).greater_than(3)) is None


class TestInteractionDistance:
    @pytest.mark.parametrize(
        "rule, expected",
        [
            (layer(1).width().greater_than(9), 0),
            (layer(1).area().greater_than(9), 0),
            (polygons().is_rectilinear(), 0),
            (polygons().ensures(len), 0),
            (layer(1).overlap(layer(2)).greater_than(9), 0),
            (layer(1).spacing().greater_than(9), 9),
            (layer(1).corner_spacing().greater_than(9), 9),
            (layer(1).enclosure(layer(2)).greater_than(9), 9),
            (layer(1).same_mask_spacing().greater_than(9), None),
        ],
    )
    def test_per_kind_halo(self, rule, expected):
        assert interaction_distance(rule) == expected

    def test_every_kind_declares_one(self):
        from repro.core.plan import KIND_SPECS

        for kind, spec in KIND_SPECS.items():
            assert callable(spec.interaction), kind
