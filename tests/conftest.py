"""Shared fixtures: small designs are expensive enough to cache per session."""

import pytest

from repro.workloads import build_design


@pytest.fixture(scope="session")
def uart_layout():
    return build_design("uart")


@pytest.fixture(scope="session")
def ibex_layout():
    return build_design("ibex")
