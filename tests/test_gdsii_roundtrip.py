import pytest

from repro.errors import GdsiiError
from repro.gdsii import (
    GdsAref,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSref,
    GdsStrans,
    GdsStructure,
    aref_origins,
    read_bytes,
    write_bytes,
)


def sample_library() -> GdsLibrary:
    leaf = GdsStructure(
        name="LEAF",
        elements=[
            GdsBoundary(1, 0, [(0, 0), (0, 10), (10, 10), (10, 0)], properties={1: "pad"}),
            GdsPath(2, 0, width=4, xy=[(0, 0), (30, 0)]),
        ],
    )
    top = GdsStructure(
        name="TOP",
        elements=[
            GdsSref("LEAF", (100, 200), GdsStrans(mirror_x=True, angle=90.0)),
            GdsAref(
                "LEAF",
                columns=3,
                rows=2,
                xy=[(0, 0), (150, 0), (0, 80)],
                strans=GdsStrans(),
            ),
        ],
    )
    return GdsLibrary(name="RT", structures=[leaf, top])


class TestRoundTrip:
    def test_structure_names_survive(self):
        lib = read_bytes(write_bytes(sample_library()))
        assert lib.structure_names() == ["LEAF", "TOP"]

    def test_units_survive(self):
        source = sample_library()
        source.user_unit = 0.001
        source.meters_per_unit = 1e-9
        lib = read_bytes(write_bytes(source))
        assert lib.user_unit == pytest.approx(0.001)
        assert lib.meters_per_unit == pytest.approx(1e-9)

    def test_boundary_geometry_and_properties(self):
        lib = read_bytes(write_bytes(sample_library()))
        boundary = lib.structure("LEAF").elements[0]
        assert isinstance(boundary, GdsBoundary)
        assert boundary.layer == 1
        assert boundary.xy == [(0, 0), (0, 10), (10, 10), (10, 0)]
        assert boundary.properties == {1: "pad"}

    def test_path_survives(self):
        lib = read_bytes(write_bytes(sample_library()))
        path = lib.structure("LEAF").elements[1]
        assert isinstance(path, GdsPath)
        assert path.width == 4 and path.xy == [(0, 0), (30, 0)]

    def test_sref_strans(self):
        lib = read_bytes(write_bytes(sample_library()))
        sref = lib.structure("TOP").elements[0]
        assert isinstance(sref, GdsSref)
        assert sref.origin == (100, 200)
        assert sref.strans.mirror_x and sref.strans.angle == 90.0

    def test_aref_geometry(self):
        lib = read_bytes(write_bytes(sample_library()))
        aref = lib.structure("TOP").elements[1]
        assert isinstance(aref, GdsAref)
        assert (aref.columns, aref.rows) == (3, 2)
        assert aref.column_step == (50, 0)
        assert aref.row_step == (0, 40)

    def test_double_round_trip_stable(self):
        once = write_bytes(sample_library())
        twice = write_bytes(read_bytes(once))
        assert once == twice


class TestArefExpansion:
    def test_origins_grid(self):
        aref = GdsAref("X", columns=2, rows=2, xy=[(10, 20), (30, 20), (10, 50)])
        assert aref_origins(aref) == [(10, 20), (20, 20), (10, 35), (20, 35)]


class TestValidation:
    def test_undefined_reference_rejected_on_write(self):
        lib = GdsLibrary(
            structures=[GdsStructure("TOP", [GdsSref("MISSING", (0, 0))])]
        )
        with pytest.raises(GdsiiError):
            write_bytes(lib)

    def test_undefined_reference_rejected_on_read(self):
        lib = sample_library()
        lib.structures[1].elements.append(GdsSref("NOPE", (0, 0)))
        data = None
        with pytest.raises(GdsiiError):
            data = write_bytes(lib)

    def test_empty_stream_rejected(self):
        with pytest.raises(GdsiiError):
            read_bytes(b"")

    def test_top_structures(self):
        lib = sample_library()
        tops = lib.top_structures()
        assert [s.name for s in tops] == ["TOP"]


class TestFileIO:
    def test_read_write_file(self, tmp_path):
        from repro.gdsii import read, write

        path = tmp_path / "sample.gds"
        write(sample_library(), path)
        lib = read(path)
        assert lib.structure_names() == ["LEAF", "TOP"]
