import time

import pytest

from repro.util import (
    PHASE_EDGE_CHECKS,
    PHASE_PARTITION,
    PHASE_SWEEPLINE,
    PhaseProfile,
    Timer,
    format_seconds,
    format_table,
    geometric_mean,
    get_logger,
    normalized_row,
    time_call,
)


class TestTimer:
    def test_accumulates_across_cycles(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        first = timer.elapsed
        with timer:
            time.sleep(0.002)
        assert timer.elapsed > first

    def test_double_start_rejected(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0 and not timer.running

    def test_time_call(self):
        result, seconds = time_call(lambda a, b: a + b, 2, 3)
        assert result == 5 and seconds >= 0


class TestPhaseProfile:
    def test_phases_accumulate(self):
        profile = PhaseProfile()
        with profile.phase(PHASE_PARTITION):
            time.sleep(0.001)
        with profile.phase(PHASE_PARTITION):
            time.sleep(0.001)
        profile.add(PHASE_EDGE_CHECKS, 0.01)
        assert profile.seconds(PHASE_PARTITION) >= 0.002
        assert profile.total >= 0.012

    def test_fractions_ordered_and_sum_to_one(self):
        profile = PhaseProfile()
        profile.add(PHASE_EDGE_CHECKS, 0.05)
        profile.add(PHASE_PARTITION, 0.015)
        profile.add(PHASE_SWEEPLINE, 0.035)
        fractions = profile.fractions()
        assert [name for name, _ in fractions] == [
            PHASE_PARTITION,
            PHASE_SWEEPLINE,
            PHASE_EDGE_CHECKS,
        ]
        assert sum(f for _, f in fractions) == pytest.approx(1.0)

    def test_merge(self):
        a = PhaseProfile()
        a.add(PHASE_PARTITION, 0.01)
        b = PhaseProfile()
        b.add(PHASE_PARTITION, 0.02)
        a.merge(b)
        assert a.seconds(PHASE_PARTITION) == pytest.approx(0.03)

    def test_breakdown_table_renders(self):
        profile = PhaseProfile()
        profile.add(PHASE_PARTITION, 0.15)
        profile.add(PHASE_SWEEPLINE, 0.35)
        profile.add(PHASE_EDGE_CHECKS, 0.50)
        text = profile.breakdown_table()
        assert "partition" in text and "#" in text and "total" in text

    def test_empty_profile(self):
        assert PhaseProfile().fractions() == []


class TestReportHelpers:
    def test_format_seconds_paper_style(self):
        assert format_seconds(0.004) == "< 0.01"
        assert format_seconds(0.12) == "0.12"

    def test_format_table_alignment(self):
        text = format_table(
            ["design", "runtime"], [["uart", 0.12], ["jpeg", 3.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "design" in lines[1] and "uart" in lines[3]

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped

    def test_normalized_row(self):
        row = normalized_row([2.0, 1.0, 4.0], baseline_index=1)
        assert row == ["200.0%", "100.0%", "400.0%"]

    def test_logger(self):
        assert get_logger("bench").name == "repro.bench"
