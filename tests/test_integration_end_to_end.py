"""End-to-end integration: GDSII file -> engine -> markers, across modes."""

from repro.core import Engine
from repro.core.rules import layer
from repro.gdsii import read_layout, write
from repro.layout import gdsii_from_layout
from repro.workloads import InjectionPlan, asap7, build_design, inject_violations


class TestFileToReport:
    def test_design_through_disk_matches_memory(self, tmp_path):
        memory_layout = build_design("uart")
        path = tmp_path / "uart.gds"
        write(gdsii_from_layout(memory_layout), path)
        disk_layout = read_layout(path)
        disk_layout.set_top("top")

        deck = asap7.full_deck()
        from_memory = Engine(mode="sequential").check(memory_layout, rules=deck)
        from_disk = Engine(mode="sequential").check(disk_layout, rules=deck)
        for a, b in zip(from_memory.results, from_disk.results):
            assert a.violation_set() == b.violation_set(), a.rule.name

    def test_dirty_design_through_disk(self, tmp_path):
        layout = build_design("uart")
        expected = inject_violations(
            layout, InjectionPlan(spacing=3), layer=asap7.M2, seed=6
        )
        path = tmp_path / "dirty.gds"
        write(gdsii_from_layout(layout), path)
        reloaded = read_layout(path)
        reloaded.set_top("top")
        report = Engine(mode="parallel").check(
            reloaded, rules=[asap7.spacing_rule(asap7.M2)]
        )
        assert report.results[0].violation_set() == frozenset(expected)


class TestOverlapRuleOnDesigns:
    def test_vias_fully_land_on_metal(self, uart_layout):
        deck = [
            layer(asap7.V1).overlap(layer(asap7.M1)).greater_than(
                asap7.V1_SIZE ** 2
            ).named("V1.M1.OV"),
            layer(asap7.V2).overlap(layer(asap7.M2)).greater_than(
                asap7.V2_SIZE ** 2
            ).named("V2.M2.OV"),
        ]
        report = Engine(mode="sequential").check(uart_layout, rules=deck)
        assert report.passed, report.summary()

    def test_stricter_threshold_flags_every_via(self, uart_layout):
        rule = layer(asap7.V1).overlap(layer(asap7.M1)).greater_than(
            asap7.V1_SIZE ** 2 + 1
        )
        report = Engine(mode="sequential").check(uart_layout, rules=[rule])
        from repro.layout import count_flat_polygons

        via_count = count_flat_polygons(uart_layout)[asap7.V1]
        assert report.results[0].num_violations == via_count


class TestMixedDeckModes:
    def test_extended_deck_modes_agree(self, ibex_layout):
        deck = asap7.full_deck() + [
            layer(asap7.M3).corner_spacing().greater_than(20).named("M3.CS.1"),
            layer(asap7.V2).overlap(layer(asap7.M3)).greater_than(100).named("V2.M3.OV"),
        ]
        seq = Engine(mode="sequential").check(ibex_layout, rules=deck)
        par = Engine(mode="parallel").check(ibex_layout, rules=deck)
        for a, b in zip(seq.results, par.results):
            assert a.violation_set() == b.violation_set(), a.rule.name


class TestCompressionOnDesigns:
    def test_design_buffers_compress_losslessly(self, ibex_layout):
        import numpy as np

        from repro.gpu.compression import compress_edge_buffer
        from repro.hierarchy.edgepack import HierarchicalEdgePacker
        from repro.hierarchy.tree import HierarchyTree

        tree = HierarchyTree(ibex_layout)
        pair = HierarchicalEdgePacker(tree, asap7.M1).buffer_of("top")
        for buf in (pair.vertical, pair.horizontal):
            compressed = compress_edge_buffer(buf)
            assert compressed.nbytes < buf.nbytes
            restored = compressed.decompress()
            reference = buf.sorted_by_fixed()
            assert np.array_equal(restored.fixed, reference.fixed)
            assert np.array_equal(restored.poly, reference.poly)
