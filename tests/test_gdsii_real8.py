import math

import pytest

from repro.gdsii.real8 import decode_real8, encode_real8


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [0.0, 1.0, -1.0, 0.001, 1e-9, 1e-3, 2.0, 0.5, 123456.0, -0.25, 1e12, 7e-11],
    )
    def test_round_trip_exact_enough(self, value):
        decoded = decode_real8(encode_real8(value))
        if value == 0:
            assert decoded == 0
        else:
            assert math.isclose(decoded, value, rel_tol=1e-14)

    def test_zero_encodes_as_zero_bytes(self):
        assert encode_real8(0.0) == b"\x00" * 8

    def test_sign_bit(self):
        assert encode_real8(-1.0)[0] & 0x80
        assert not encode_real8(1.0)[0] & 0x80


class TestKnownValues:
    def test_one(self):
        # 1.0 = 0x4110000000000000 in excess-64 base-16.
        assert encode_real8(1.0) == bytes.fromhex("4110000000000000")
        assert decode_real8(bytes.fromhex("4110000000000000")) == 1.0

    def test_micron_user_unit(self):
        # 0.001 is the classic GDSII user unit; decode(encode(x)) stable.
        data = encode_real8(0.001)
        assert math.isclose(decode_real8(data), 0.001, rel_tol=1e-15)

    def test_nanometer_db_unit(self):
        data = encode_real8(1e-9)
        assert math.isclose(decode_real8(data), 1e-9, rel_tol=1e-15)


class TestErrors:
    def test_decode_wrong_length(self):
        with pytest.raises(ValueError):
            decode_real8(b"\x00" * 7)

    def test_overflow(self):
        with pytest.raises(OverflowError):
            encode_real8(16.0 ** 70)

    def test_underflow_flushes_to_zero(self):
        assert decode_real8(encode_real8(16.0 ** -70)) == 0.0
