from repro.geometry import Polygon, Rect, Transform
from repro.layout import (
    CellReference,
    Layout,
    Repetition,
    compute_stats,
    count_flat_polygons,
    flatten,
    flatten_layer,
    gdsii_from_layout,
    layout_from_gdsii,
)


def sample_layout() -> Layout:
    layout = Layout("flat-demo")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 10, 10))
    leaf.add_polygon(2, Polygon.from_rect_coords(0, 0, 4, 4))
    top = layout.new_cell("top")
    top.add_polygon(1, Polygon.from_rect_coords(500, 500, 520, 520))
    top.add_reference(CellReference("leaf", Transform(dx=100)))
    top.add_reference(CellReference("leaf", Transform(dx=200, rotation=90)))
    top.add_reference(
        CellReference("leaf", Transform(dy=400), Repetition(2, 1, (50, 0), (0, 0)))
    )
    layout.set_top("top")
    return layout


class TestFlatten:
    def test_counts(self):
        flat = flatten(sample_layout())
        assert len(flat[1]) == 1 + 4  # top local + 4 leaf instances
        assert len(flat[2]) == 4

    def test_transforms_applied(self):
        polys = flatten_layer(sample_layout(), 1)
        mbrs = {p.mbr for p in polys}
        assert Rect(100, 0, 110, 10) in mbrs
        assert Rect(190, 0, 200, 10) in mbrs  # rotated 90: x in [-10,0] + 200
        assert Rect(0, 400, 10, 410) in mbrs
        assert Rect(50, 400, 60, 410) in mbrs
        assert Rect(500, 500, 520, 520) in mbrs

    def test_layer_filter_prunes(self):
        flat = flatten(sample_layout(), layers=[2])
        assert set(flat) == {2}

    def test_missing_layer_empty(self):
        assert flatten_layer(sample_layout(), 99) == []

    def test_count_without_materializing(self):
        layout = sample_layout()
        counts = count_flat_polygons(layout)
        flat = flatten(layout)
        assert counts == {layer: len(polys) for layer, polys in flat.items()}


class TestStats:
    def test_stats_fields(self):
        stats = compute_stats(sample_layout())
        assert stats.num_cells == 2
        assert stats.num_instances == 1 + 4
        assert stats.hierarchy_depth == 2
        assert stats.num_flat_polygons == 9
        assert stats.reuse_factor > 1.0

    def test_summary_mentions_name(self):
        assert "flat-demo" in compute_stats(sample_layout()).summary()


class TestGdsiiConversion:
    def test_layout_gdsii_round_trip_flat_equivalence(self):
        layout = sample_layout()
        rebuilt = layout_from_gdsii(gdsii_from_layout(layout))
        for layer in layout.layers():
            original = {p.mbr for p in flatten_layer(layout, layer)}
            recovered = {p.mbr for p in flatten_layer(rebuilt, layer)}
            assert original == recovered

    def test_polygon_names_survive(self):
        layout = Layout("names")
        top = layout.new_cell("top")
        top.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 5, name="special"))
        layout.set_top("top")
        rebuilt = layout_from_gdsii(gdsii_from_layout(layout))
        assert rebuilt.cell("top").polygons(1)[0].name == "special"

    def test_aref_survives_compactly(self):
        layout = sample_layout()
        rebuilt = layout_from_gdsii(gdsii_from_layout(layout))
        reps = [
            ref.repetition
            for ref in rebuilt.cell("top").references
            if ref.repetition is not None
        ]
        assert len(reps) == 1 and reps[0].columns == 2
