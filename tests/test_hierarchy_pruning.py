from repro.checks import check_polygon_width
from repro.geometry import Polygon, Rect, Transform
from repro.hierarchy import (
    HierarchyTree,
    IntraCheckScheduler,
    SubtreeWindow,
    area_invariant,
    distance_invariant,
    level_items,
)
from repro.layout import CellReference, Layout, Repetition


def many_instances_layout(n=20) -> Layout:
    layout = Layout("memo")
    leaf = layout.new_cell("leaf")
    leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 100))  # 5 wide: violates 10
    top = layout.new_cell("top")
    for i in range(n):
        top.add_reference(CellReference("leaf", Transform(dx=i * 500)))
    layout.set_top("top")
    return layout


class TestIntraScheduler:
    def test_check_runs_once_per_definition(self):
        tree = HierarchyTree(many_instances_layout(20))
        scheduler = IntraCheckScheduler(tree)
        calls = []

        def check(cell):
            calls.append(cell.name)
            return check_polygon_width(cell.polygons(1)[0], 1, 10)

        violations = scheduler.run(1, check)
        assert calls == ["leaf"]
        assert len(violations) == 20  # one per instance
        assert scheduler.stats.checks_run == 1
        assert scheduler.stats.checks_reused == 19

    def test_violations_transformed_per_instance(self):
        tree = HierarchyTree(many_instances_layout(3))
        scheduler = IntraCheckScheduler(tree)
        violations = scheduler.run(
            1, lambda cell: check_polygon_width(cell.polygons(1)[0], 1, 10)
        )
        regions = sorted(v.region for v in violations)
        assert regions[0] == Rect(0, 0, 5, 100)
        assert regions[1] == Rect(500, 0, 505, 100)

    def test_magnified_instance_rechecked(self):
        layout = Layout("mag")
        leaf = layout.new_cell("leaf")
        leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 100))
        top = layout.new_cell("top")
        top.add_reference(CellReference("leaf", Transform()))
        top.add_reference(CellReference("leaf", Transform(dx=1000, magnification=3)))
        layout.set_top("top")
        scheduler = IntraCheckScheduler(HierarchyTree(layout))
        violations = scheduler.run(
            1,
            lambda cell: check_polygon_width(cell.polygons(1)[0], 1, 10),
            invariance=distance_invariant,
        )
        # magnified copy is 15 wide: passes; only the unit instance violates
        assert len(violations) == 1
        assert scheduler.stats.checks_refreshed == 1

    def test_invariance_predicates(self):
        assert distance_invariant(Transform(rotation=90, mirror_x=True))
        assert not distance_invariant(Transform(magnification=2))
        assert area_invariant(Transform(rotation=270))
        assert not area_invariant(Transform(magnification=2))


class TestLevelItems:
    def test_items_cover_local_and_children(self):
        layout = many_instances_layout(4)
        layout.cell("top").add_polygon(1, Polygon.from_rect_coords(-100, 0, -90, 10))
        tree = HierarchyTree(layout)
        items = level_items(tree, tree.top, 1)
        polygons = [it for it in items if it.is_polygon]
        children = [it for it in items if not it.is_polygon]
        assert len(polygons) == 1 and len(children) == 4

    def test_aref_expanded_to_placements(self):
        layout = Layout("aref")
        leaf = layout.new_cell("leaf")
        leaf.add_polygon(1, Polygon.from_rect_coords(0, 0, 5, 5))
        top = layout.new_cell("top")
        top.add_reference(
            CellReference("leaf", Transform(), Repetition(3, 2, (10, 0), (0, 10)))
        )
        layout.set_top("top")
        tree = HierarchyTree(layout)
        assert len(level_items(tree, tree.top, 1)) == 6

    def test_layerless_children_skipped(self):
        layout = Layout("skip")
        empty = layout.new_cell("empty")
        top = layout.new_cell("top")
        top.add_reference(CellReference("empty"))
        layout.set_top("top")
        tree = HierarchyTree(layout)
        assert level_items(tree, tree.top, 1) == []


class TestSubtreeWindow:
    def test_windowed_gather(self):
        layout = many_instances_layout(5)
        tree = HierarchyTree(layout)
        subtree = SubtreeWindow(tree)
        found = subtree.polygons_in_window(
            "top", Transform(), 1, Rect(400, 0, 600, 100)
        )
        assert len(found) == 1
        assert found[0].mbr == Rect(500, 0, 505, 100)

    def test_gather_respects_placement_frame(self):
        layout = many_instances_layout(2)
        tree = HierarchyTree(layout)
        subtree = SubtreeWindow(tree)
        shifted = Transform(dx=10000)
        found = subtree.polygons_in_window(
            "top", shifted, 1, Rect(10400, 0, 10600, 100)
        )
        assert len(found) == 1
        assert found[0].mbr == Rect(10500, 0, 10505, 100)

    def test_disjoint_window_empty(self):
        tree = HierarchyTree(many_instances_layout(3))
        subtree = SubtreeWindow(tree)
        assert subtree.polygons_in_window("top", Transform(), 1, Rect(-999, -999, -900, -900)) == []
